//! Minimal hexadecimal encoding used for displaying digests and keys.

/// Encodes bytes as lowercase hexadecimal.
///
/// # Example
///
/// ```
/// assert_eq!(oasis_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        out.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble < 16"));
    }
    out
}

/// Decodes lowercase or uppercase hexadecimal into bytes.
///
/// Returns `None` for odd-length input or non-hex characters.
///
/// # Example
///
/// ```
/// assert_eq!(oasis_crypto::hex::decode("DEad"), Some(vec![0xde, 0xad]));
/// assert_eq!(oasis_crypto::hex::decode("xyz"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        digits
            .chunks_exact(2)
            .map(|pair| u8::try_from(pair[0] * 16 + pair[1]).expect("byte fits"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_vector() {
        assert_eq!(encode(&[0x00, 0x0f, 0xf0, 0xff]), "000ff0ff");
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn decode_rejects_bad_chars() {
        assert_eq!(decode("zz"), None);
    }

    #[test]
    fn round_trip_all_bytes() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&bytes)), Some(bytes));
    }

    #[test]
    fn empty_round_trip() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode(""), Some(vec![]));
    }
}
