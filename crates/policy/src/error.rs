//! Policy-language errors with source positions.

use thiserror::Error;

/// A position in the policy source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised while parsing, checking, or applying a policy.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum PolicyError {
    /// The lexer met a character it cannot start a token with.
    #[error("{pos}: unexpected character `{found}`")]
    UnexpectedChar {
        /// Where.
        pos: Pos,
        /// The offending character.
        found: char,
    },

    /// A string literal ran to end of input.
    #[error("{pos}: unterminated string literal")]
    UnterminatedString {
        /// Where the literal started.
        pos: Pos,
    },

    /// A number or time literal did not fit its type.
    #[error("{pos}: malformed literal `{text}`")]
    BadLiteral {
        /// Where.
        pos: Pos,
        /// The offending text.
        text: String,
    },

    /// The parser expected something else.
    #[error("{pos}: expected {expected}, found `{found}`")]
    Unexpected {
        /// Where.
        pos: Pos,
        /// What would have been valid.
        expected: String,
        /// What was actually there.
        found: String,
    },

    /// A rule or condition referenced an undefined role.
    #[error("{pos}: unknown role `{role}` in service `{service}`")]
    UnknownRole {
        /// Where.
        pos: Pos,
        /// The service block.
        service: String,
        /// The missing role.
        role: String,
    },

    /// A condition referenced an undefined appointment kind.
    #[error("{pos}: unknown appointment `{name}` in service `{service}`")]
    UnknownAppointment {
        /// Where.
        pos: Pos,
        /// The service block.
        service: String,
        /// The missing appointment.
        name: String,
    },

    /// Arity mismatch against a declared role or appointment.
    #[error("{pos}: `{name}` takes {expected} arguments, got {actual}")]
    Arity {
        /// Where.
        pos: Pos,
        /// The role/appointment.
        name: String,
        /// Declared arity.
        expected: usize,
        /// Written arity.
        actual: usize,
    },

    /// A constant argument's type contradicts the declared schema.
    #[error("{pos}: `{name}` argument {index} expects {expected}, got a {actual}")]
    ArgType {
        /// Where.
        pos: Pos,
        /// The role/appointment.
        name: String,
        /// Zero-based argument position.
        index: usize,
        /// Declared type.
        expected: String,
        /// Written literal's type.
        actual: String,
    },

    /// A name was declared twice in one service block.
    #[error("{pos}: `{name}` is declared twice in service `{service}`")]
    Duplicate {
        /// Where the second declaration is.
        pos: Pos,
        /// The service block.
        service: String,
        /// The duplicated name.
        name: String,
    },

    /// A membership index is out of range for its rule.
    #[error("{pos}: membership index {index} out of range (rule has {conditions} conditions)")]
    MembershipRange {
        /// Where.
        pos: Pos,
        /// The offending index.
        index: usize,
        /// Number of conditions in the rule.
        conditions: usize,
    },

    /// A negated condition uses a variable no earlier positive condition
    /// or head parameter binds (unsafe negation-as-failure).
    #[error("{pos}: unsafe negation: variable `{var}` is not bound by the head or an earlier positive condition")]
    UnsafeNegation {
        /// Where.
        pos: Pos,
        /// The unbound variable.
        var: String,
    },

    /// No sequence of rule applications can ever activate this role
    /// (every rule depends, directly or transitively, on the role itself
    /// or on another ungroundable local role).
    #[error("role `{role}` in service `{service}` can never be activated (circular prerequisites)")]
    UngroundableRole {
        /// The service block.
        service: String,
        /// The dead role.
        role: String,
    },

    /// `apply_to` was called with a service whose id matches no block.
    #[error("policy has no service block named `{0}`")]
    NoSuchService(String),

    /// An error surfaced from the core while installing the policy.
    #[error("installing policy: {0}")]
    Core(String),
}

impl From<oasis_core::OasisError> for PolicyError {
    fn from(e: oasis_core::OasisError) -> Self {
        PolicyError::Core(e.to_string())
    }
}
