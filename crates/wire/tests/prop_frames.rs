//! Robustness properties for the wire framing: arbitrary bytes must never
//! panic the reader, and every encodable message round-trips.

use proptest::prelude::*;

use oasis_wire::frame::{read_frame, write_frame};
use oasis_wire::proto::{Request, Response};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup: the reader returns Ok(None), Ok(Some), or a
    /// structured error — never a panic, never unbounded allocation (the
    /// length guard bounds it).
    #[test]
    fn reader_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut reader = bytes.as_slice();
        // Drain until EOF or error; must terminate.
        for _ in 0..10 {
            match read_frame::<_, oasis_json::Json>(&mut reader) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Requests written by the writer are read back identically, even
    /// when several share the stream.
    #[test]
    fn frames_round_trip(
        principals in proptest::collection::vec("[a-z]{1,8}", 1..5),
        now in any::<u64>(),
    ) {
        let requests: Vec<Request> = principals
            .iter()
            .map(|p| Request::Activate {
                principal: oasis_core::PrincipalId::new(p.clone()),
                role: "r".into(),
                args: vec![oasis_core::Value::id(p.clone()), oasis_core::Value::Time(now)],
                credentials: vec![],
                now,
            })
            .collect();
        let mut buf = Vec::new();
        for request in &requests {
            write_frame(&mut buf, request).unwrap();
        }
        let mut reader = buf.as_slice();
        let mut read_back = Vec::new();
        while let Some(request) = read_frame::<_, Request>(&mut reader).unwrap() {
            read_back.push(request);
        }
        assert_eq!(read_back, requests);
    }

    /// Responses round-trip too.
    #[test]
    fn responses_round_trip(was_active in any::<bool>(), message in "[ -~]{0,40}") {
        let responses = vec![
            Response::Pong,
            Response::Revoked { was_active },
            Response::Error { message: message.clone() },
        ];
        let mut buf = Vec::new();
        for response in &responses {
            write_frame(&mut buf, response).unwrap();
        }
        let mut reader = buf.as_slice();
        let mut read_back = Vec::new();
        while let Some(r) = read_frame::<_, Response>(&mut reader).unwrap() {
            read_back.push(r);
        }
        assert_eq!(read_back, responses);
    }
}
