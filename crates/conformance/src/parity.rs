//! Replay parity: a second run of the same scenario under the same seed
//! must reproduce a byte-identical canonical trace.
//!
//! The comparison is deliberately dumb — line-by-line byte equality —
//! because the recorder ([`oasis_sim::Trace`]) already canonicalises
//! (sorted keys, escaped strings, no wall-clock, no hash-order
//! iteration). Anything cleverer would hide exactly the
//! nondeterminism this check exists to catch.

use std::fmt;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based line index of the first disagreement.
    pub line: usize,
    /// That line in the first trace (`None` if it ended early).
    pub first: Option<String>,
    /// That line in the second trace (`None` if it ended early).
    pub second: Option<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traces diverge at line {}:", self.line)?;
        writeln!(
            f,
            "  first : {}",
            self.first.as_deref().unwrap_or("<end of trace>")
        )?;
        write!(
            f,
            "  second: {}",
            self.second.as_deref().unwrap_or("<end of trace>")
        )
    }
}

/// Compares two traces line by line; `None` means byte-identical.
pub fn compare_traces(first: &[String], second: &[String]) -> Option<Divergence> {
    let lines = first.len().max(second.len());
    for i in 0..lines {
        let a = first.get(i);
        let b = second.get(i);
        if a != b {
            return Some(Divergence {
                line: i,
                first: a.cloned(),
                second: b.cloned(),
            });
        }
    }
    None
}

/// A deliberate one-tick perturbation of a scenario run, used by the
/// harness's meta-test: a perturbed replay MUST diverge, proving the
/// parity check is alive (a comparator that never fires is
/// indistinguishable from a correct system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Delay the first revocation arrival by one virtual-clock tick.
    DelayFirstRevocation,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = lines(&["{\"a\":1}", "{\"a\":2}"]);
        assert_eq!(compare_traces(&t, &t), None);
    }

    #[test]
    fn first_differing_line_is_reported() {
        let a = lines(&["{\"t\":1}", "{\"t\":2}", "{\"t\":3}"]);
        let b = lines(&["{\"t\":1}", "{\"t\":9}", "{\"t\":3}"]);
        let d = compare_traces(&a, &b).expect("must diverge");
        assert_eq!(d.line, 1);
        assert_eq!(d.first.as_deref(), Some("{\"t\":2}"));
        assert_eq!(d.second.as_deref(), Some("{\"t\":9}"));
    }

    #[test]
    fn length_mismatch_diverges_at_the_shorter_end() {
        let a = lines(&["{\"t\":1}"]);
        let b = lines(&["{\"t\":1}", "{\"t\":2}"]);
        let d = compare_traces(&a, &b).expect("must diverge");
        assert_eq!(d.line, 1);
        assert_eq!(d.first, None);
        assert_eq!(d.second.as_deref(), Some("{\"t\":2}"));
        let shown = d.to_string();
        assert!(shown.contains("<end of trace>"), "{shown}");
    }

    #[test]
    fn empty_traces_are_identical() {
        assert_eq!(compare_traces(&[], &[]), None);
    }
}
