//! The error type for the OASIS core.

use crate::cert::Crr;
use crate::ids::{PrincipalId, RoleName, ServiceId};
use crate::rule::RuleId;
use crate::value::ValueType;

/// Errors reported by the OASIS core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OasisError {
    /// A role definition repeated a parameter name.
    DuplicateParam {
        /// The role being defined.
        role: RoleName,
        /// The repeated parameter.
        param: String,
    },

    /// A role was defined twice at one service.
    DuplicateRole(RoleName),

    /// A role name was not defined at the service.
    UnknownRole(RoleName),

    /// Wrong number of arguments for a role.
    ArityMismatch {
        /// The role.
        role: RoleName,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },

    /// An argument had the wrong type.
    TypeMismatch {
        /// The role.
        role: RoleName,
        /// The offending parameter.
        param: String,
        /// Declared type.
        expected: ValueType,
        /// Supplied type.
        actual: ValueType,
    },

    /// A membership index pointed outside the rule's condition list.
    BadMembershipIndex {
        /// The rule.
        rule: RuleId,
        /// The offending index.
        index: usize,
        /// How many conditions the rule has.
        conditions: usize,
    },

    /// No activation rule for the role was satisfied by the presented
    /// credentials and environment.
    ActivationDenied {
        /// The requested role.
        role: RoleName,
        /// The requesting principal.
        principal: PrincipalId,
    },

    /// No invocation rule authorised the method call.
    InvocationDenied {
        /// The method.
        method: String,
        /// The requesting principal.
        principal: PrincipalId,
    },

    /// A certificate failed validation.
    InvalidCredential {
        /// The credential's record reference.
        crr: Crr,
        /// Why it was rejected.
        reason: String,
    },

    /// A certificate's issuer-side record was not found.
    UnknownCertificate(Crr),

    /// A credential was presented to a service that did not issue it and
    /// that has no validator configured for the issuer.
    NoValidator(ServiceId),

    /// A validation callback to a foreign issuer timed out. Transient:
    /// the issuer may answer a retry, so this does not prove the
    /// credential bad — only that its validity could not be confirmed.
    IssuerTimeout(ServiceId),

    /// The per-issuer circuit breaker is open: recent callbacks to this
    /// issuer all failed, so the call fast-failed without touching the
    /// network. Transient — the breaker will probe the issuer again
    /// after its cooldown.
    CircuitOpen(ServiceId),

    /// The service shed the request before doing any work because its
    /// admission queues were full. Transient in the strongest sense: the
    /// service is *alive* (it answered), just saturated — retry after the
    /// hinted delay rather than after a generic backoff, and do not charge
    /// the shed against the issuer's circuit breaker.
    Overloaded {
        /// The overloaded service.
        service: ServiceId,
        /// Server-estimated queue-drain time; retry no sooner than this.
        retry_after_ms: u64,
    },

    /// The principal holds no role privileged to issue this appointment.
    NotAppointer {
        /// The would-be appointer.
        principal: PrincipalId,
        /// The appointment kind.
        appointment: String,
    },

    /// An underlying fact-store operation failed (usually an undefined
    /// relation referenced from a rule).
    Facts(oasis_facts::FactError),

    /// The durability journal rejected a write. State changes are
    /// journalled *before* they are acknowledged, so a failed append
    /// aborts the operation rather than risking an unrecoverable
    /// acknowledgement.
    Journal(String),
}

impl std::fmt::Display for OasisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateParam { role, param } => {
                write!(f, "role `{role}` declares parameter `{param}` twice")
            }
            Self::DuplicateRole(x0) => write!(f, "role `{x0}` is already defined at this service"),
            Self::UnknownRole(x0) => write!(f, "unknown role `{x0}`"),
            Self::ArityMismatch {
                role,
                expected,
                actual,
            } => write!(f, "role `{role}` takes {expected} parameters, got {actual}"),
            Self::TypeMismatch {
                role,
                param,
                expected,
                actual,
            } => write!(
                f,
                "role `{role}` parameter `{param}` expects {expected}, got {actual}"
            ),
            Self::BadMembershipIndex {
                rule,
                index,
                conditions,
            } => write!(
                f,
                "rule {rule}: membership index {index} out of range ({conditions} conditions)"
            ),
            Self::ActivationDenied { role, principal } => write!(
                f,
                "activation of `{role}` denied for {principal}: no rule satisfied"
            ),
            Self::InvocationDenied { method, principal } => {
                write!(f, "invocation of `{method}` denied for {principal}")
            }
            Self::InvalidCredential { crr, reason } => {
                write!(f, "credential {crr} invalid: {reason}")
            }
            Self::UnknownCertificate(x0) => write!(f, "no credential record for {x0}"),
            Self::NoValidator(x0) => write!(f, "no validator reaches issuer `{x0}`"),
            Self::IssuerTimeout(x0) => write!(f, "validation callback to issuer `{x0}` timed out"),
            Self::CircuitOpen(x0) => write!(
                f,
                "circuit breaker open for issuer `{x0}`: recent callbacks failed"
            ),
            Self::Overloaded {
                service,
                retry_after_ms,
            } => write!(
                f,
                "service `{service}` is overloaded: retry after {retry_after_ms}ms"
            ),
            Self::NotAppointer {
                principal,
                appointment,
            } => write!(
                f,
                "{principal} holds no role entitled to issue appointment `{appointment}`"
            ),
            Self::Facts(x0) => write!(f, "fact store: {x0}"),
            Self::Journal(x0) => write!(f, "durability journal: {x0}"),
        }
    }
}

impl std::error::Error for OasisError {}

impl From<oasis_facts::FactError> for OasisError {
    fn from(e: oasis_facts::FactError) -> Self {
        Self::Facts(e)
    }
}
