//! Abstract syntax of the policy language.
//!
//! The AST stays close to the text; positions are kept on the nodes the
//! semantic checker reports on. Terms and comparison operators reuse the
//! core types directly ([`Term`], [`CmpOp`], [`ValueType`]).

use oasis_core::{CmpOp, Term, ValueType};

use crate::error::Pos;

/// A whole policy document: one block per service.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyAst {
    /// Service blocks in document order.
    pub services: Vec<ServiceBlock>,
}

/// `service name { … }`
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBlock {
    /// The service name (matches `OasisService::id`). May contain dots.
    pub name: String,
    /// Where the block starts.
    pub pos: Pos,
    /// `role` / `initial role` declarations.
    pub roles: Vec<RoleDecl>,
    /// `appointment` declarations.
    pub appointments: Vec<AppointmentDecl>,
    /// `appointer R may issue A;` grants.
    pub appointers: Vec<AppointerDecl>,
    /// Role activation rules.
    pub rules: Vec<RuleDecl>,
    /// Service-use (invocation) rules.
    pub invocations: Vec<InvokeDecl>,
}

/// `role name(param: type, …);` optionally prefixed `initial`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleDecl {
    /// Role name.
    pub name: String,
    /// Typed parameters.
    pub params: Vec<(String, ValueType)>,
    /// Whether activating it may start a session.
    pub initial: bool,
    /// Source position.
    pub pos: Pos,
}

/// `appointment name(param: type, …);`
#[derive(Debug, Clone, PartialEq)]
pub struct AppointmentDecl {
    /// Appointment kind name.
    pub name: String,
    /// Typed parameters.
    pub params: Vec<(String, ValueType)>,
    /// Source position.
    pub pos: Pos,
}

/// `appointer role may issue appointment;`
#[derive(Debug, Clone, PartialEq)]
pub struct AppointerDecl {
    /// The privileged role.
    pub role: String,
    /// The appointment kind it may issue.
    pub appointment: String,
    /// Source position.
    pub pos: Pos,
}

/// One body condition together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// The condition itself.
    pub kind: ConditionKind,
    /// Source position.
    pub pos: Pos,
}

/// The condition forms of the language.
#[derive(Debug, Clone, PartialEq)]
pub enum ConditionKind {
    /// `prereq [svc::]role(args)`
    Prereq {
        /// Foreign issuing service, if qualified.
        service: Option<String>,
        /// Role name.
        role: String,
        /// Arguments.
        args: Vec<Term>,
    },
    /// `appointment [svc::]name(args)`
    Appointment {
        /// Foreign issuing service, if qualified.
        service: Option<String>,
        /// Appointment kind.
        name: String,
        /// Arguments.
        args: Vec<Term>,
    },
    /// `env [not] relation(args)`
    Fact {
        /// Relation name.
        relation: String,
        /// Arguments.
        args: Vec<Term>,
        /// Whether negated.
        negated: bool,
    },
    /// `env term op term`
    Compare {
        /// Left operand.
        left: Term,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Term,
    },
    /// `env ?predicate(args)`
    Predicate {
        /// Predicate name.
        name: String,
        /// Arguments.
        args: Vec<Term>,
    },
}

/// `rule role(args) <- conditions [membership [i, …]];`
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDecl {
    /// Target role.
    pub role: String,
    /// Head argument terms.
    pub head_args: Vec<Term>,
    /// Body conditions.
    pub conditions: Vec<Condition>,
    /// Retained condition indices; `None` means "retain all".
    pub membership: Option<Vec<usize>>,
    /// Source position.
    pub pos: Pos,
}

/// `invoke method(args) <- conditions;`
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeDecl {
    /// Method name.
    pub method: String,
    /// Head argument terms.
    pub head_args: Vec<Term>,
    /// Body conditions.
    pub conditions: Vec<Condition>,
    /// Source position.
    pub pos: Pos,
}

impl RuleDecl {
    /// The effective membership indices: explicit list, or all conditions.
    pub fn effective_membership(&self) -> Vec<usize> {
        match &self.membership {
            Some(list) => list.clone(),
            None => (0..self.conditions.len()).collect(),
        }
    }
}

impl PolicyAst {
    /// A copy with every source position zeroed — use when comparing ASTs
    /// for structural equality (e.g. print/parse round-trips, where
    /// positions necessarily differ).
    pub fn normalized(&self) -> PolicyAst {
        let zero = Pos::default();
        let mut ast = self.clone();
        for s in &mut ast.services {
            s.pos = zero;
            for r in &mut s.roles {
                r.pos = zero;
            }
            for a in &mut s.appointments {
                a.pos = zero;
            }
            for g in &mut s.appointers {
                g.pos = zero;
            }
            for rule in &mut s.rules {
                rule.pos = zero;
                for c in &mut rule.conditions {
                    c.pos = zero;
                }
            }
            for inv in &mut s.invocations {
                inv.pos = zero;
                for c in &mut inv.conditions {
                    c.pos = zero;
                }
            }
        }
        ast
    }
}
