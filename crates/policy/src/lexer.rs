//! Tokeniser for the policy language.

use crate::error::{PolicyError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// Lower-case identifier (also used for keywords; the parser decides).
    Ident(String),
    /// Capitalised or `$`-prefixed variable name.
    Variable(String),
    /// Integer literal.
    Int(i64),
    /// Time literal `@123`.
    Time(u64),
    /// String literal.
    Str(String),
    /// `_`
    Underscore,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `.`
    Dot,
    /// `?`
    Question,
    /// `<-`
    Arrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Variable(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Time(t) => write!(f, "@{t}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Underscore => f.write_str("_"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Colon => f.write_str(":"),
            Tok::ColonColon => f.write_str("::"),
            Tok::Dot => f.write_str("."),
            Tok::Question => f.write_str("?"),
            Tok::Arrow => f.write_str("<-"),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

pub(crate) fn lex(source: &str) -> Result<Vec<Spanned>, PolicyError> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let start = pos!();
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '#' => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '{' => {
                out.push(Spanned {
                    tok: Tok::LBrace,
                    pos: start,
                });
                bump!();
            }
            '}' => {
                out.push(Spanned {
                    tok: Tok::RBrace,
                    pos: start,
                });
                bump!();
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos: start,
                });
                bump!();
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos: start,
                });
                bump!();
            }
            '[' => {
                out.push(Spanned {
                    tok: Tok::LBracket,
                    pos: start,
                });
                bump!();
            }
            ']' => {
                out.push(Spanned {
                    tok: Tok::RBracket,
                    pos: start,
                });
                bump!();
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos: start,
                });
                bump!();
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    pos: start,
                });
                bump!();
            }
            '.' => {
                out.push(Spanned {
                    tok: Tok::Dot,
                    pos: start,
                });
                bump!();
            }
            '?' => {
                out.push(Spanned {
                    tok: Tok::Question,
                    pos: start,
                });
                bump!();
            }
            ':' => {
                bump!();
                if i < chars.len() && chars[i] == ':' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::ColonColon,
                        pos: start,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Colon,
                        pos: start,
                    });
                }
            }
            '<' => {
                bump!();
                if i < chars.len() && chars[i] == '-' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        pos: start,
                    });
                } else if i < chars.len() && chars[i] == '=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Le,
                        pos: start,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Lt,
                        pos: start,
                    });
                }
            }
            '>' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Ge,
                        pos: start,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Gt,
                        pos: start,
                    });
                }
            }
            '=' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        pos: start,
                    });
                } else {
                    return Err(PolicyError::UnexpectedChar {
                        pos: start,
                        found: '=',
                    });
                }
            }
            '!' => {
                bump!();
                if i < chars.len() && chars[i] == '=' {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::NotEq,
                        pos: start,
                    });
                } else {
                    return Err(PolicyError::UnexpectedChar {
                        pos: start,
                        found: '!',
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(PolicyError::UnterminatedString { pos: start });
                    }
                    match chars[i] {
                        '"' => {
                            bump!();
                            break;
                        }
                        '\\' => {
                            bump!();
                            if i >= chars.len() {
                                return Err(PolicyError::UnterminatedString { pos: start });
                            }
                            let esc = chars[i];
                            bump!();
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => other,
                            });
                        }
                        other => {
                            s.push(other);
                            bump!();
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            '@' => {
                bump!();
                let mut text = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    text.push(chars[i]);
                    bump!();
                }
                let value = text.parse::<u64>().map_err(|_| PolicyError::BadLiteral {
                    pos: start,
                    text: format!("@{text}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Time(value),
                    pos: start,
                });
            }
            '-' | '0'..='9' => {
                let mut text = String::new();
                if c == '-' {
                    text.push('-');
                    bump!();
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    text.push(chars[i]);
                    bump!();
                }
                if text == "-" || text.is_empty() {
                    return Err(PolicyError::UnexpectedChar {
                        pos: start,
                        found: c,
                    });
                }
                let value = text.parse::<i64>().map_err(|_| PolicyError::BadLiteral {
                    pos: start,
                    text: text.clone(),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(value),
                    pos: start,
                });
            }
            '_' => {
                // Bare underscore is the wildcard; `_foo` is a variable.
                let mut text = String::from('_');
                bump!();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                if text == "_" {
                    out.push(Spanned {
                        tok: Tok::Underscore,
                        pos: start,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Variable(text),
                        pos: start,
                    });
                }
            }
            '$' => {
                let mut text = String::from('$');
                bump!();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Variable(text),
                    pos: start,
                });
            }
            c if c.is_ascii_uppercase() => {
                let mut text = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Variable(text),
                    pos: start,
                });
            }
            c if c.is_ascii_lowercase() => {
                let mut text = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    // Allow dashes inside identifiers (patient ids like
                    // `p-1`), but not as the final character before
                    // whitespace followed by a digit… keep it simple:
                    // dash only when followed by alphanumeric.
                    if chars[i] == '-' && !(i + 1 < chars.len() && chars[i + 1].is_alphanumeric()) {
                        break;
                    }
                    text.push(chars[i]);
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    pos: start,
                });
            }
            other => {
                return Err(PolicyError::UnexpectedChar {
                    pos: start,
                    found: other,
                })
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_symbols_and_keywords() {
        assert_eq!(
            toks("service s { } ;"),
            vec![
                Tok::Ident("service".into()),
                Tok::Ident("s".into()),
                Tok::LBrace,
                Tok::RBrace,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_comparisons() {
        assert_eq!(
            toks("<- <= >= == != < >"),
            vec![
                Tok::Arrow,
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_variables_and_idents() {
        assert_eq!(
            toks("Doctor doctor $now _ _tail"),
            vec![
                Tok::Variable("Doctor".into()),
                Tok::Ident("doctor".into()),
                Tok::Variable("$now".into()),
                Tok::Underscore,
                Tok::Variable("_tail".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            toks("42 -7 @100 \"hi\\n\" true"),
            vec![
                Tok::Int(42),
                Tok::Int(-7),
                Tok::Time(100),
                Tok::Str("hi\n".into()),
                Tok::Ident("true".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn dashed_identifiers() {
        assert_eq!(
            toks("p-1 ward-3-a"),
            vec![
                Tok::Ident("p-1".into()),
                Tok::Ident("ward-3-a".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a # comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn double_colon() {
        assert_eq!(
            toks("login::logged_in a:b"),
            vec![
                Tok::Ident("login".into()),
                Tok::ColonColon,
                Tok::Ident("logged_in".into()),
                Tok::Ident("a".into()),
                Tok::Colon,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(matches!(
            lex("a & b"),
            Err(PolicyError::UnexpectedChar { found: '&', .. })
        ));
        assert!(matches!(
            lex("\"unterminated"),
            Err(PolicyError::UnterminatedString { .. })
        ));
        assert!(matches!(
            lex("= x"),
            Err(PolicyError::UnexpectedChar { .. })
        ));
    }
}
