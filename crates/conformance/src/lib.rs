//! Scenario-matrix conformance harness with deterministic replay parity.
//!
//! The chaos suites each exercise one failure regime in isolation; real
//! deployments compose them. This crate runs the full
//! workload × fault × topology matrix ([`full_matrix`]) — an issuer
//! outage *during* a validation flood, a leader kill *during* a
//! revocation storm, clock skew while fail-safe degradation is
//! mid-flight, a Byzantine CIV under load — and holds every cell to the
//! same invariant set ([`invariant`]):
//!
//! 1. no post-deadline execution,
//! 2. no stale-certificate acceptance past the revocation watermark,
//! 3. gap-free recovery after every fault window,
//! 4. no acknowledged event lost,
//! 5. degradation/breaker state machines end consistent,
//! 6. Byzantine evidence rejected,
//!
//! plus a backpressure check on flooding cells. Each run is
//! seed-deterministic under a virtual clock and records a canonical
//! JSONL trace; replaying the same seed must reproduce the trace
//! byte-for-byte ([`compare_traces`]), so any nondeterminism in the
//! stack is itself a conformance failure. The harness's meta-test
//! perturbs one virtual-clock tick ([`Perturbation`]) and requires the
//! comparator to catch the divergence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod invariant;
pub mod matrix;
pub mod parity;
mod replicated;
pub mod scenario;
pub mod shrink;

pub use engine::ScenarioRun;
pub use invariant::{InvariantCheck, InvariantReport, INVARIANT_NAMES};
pub use matrix::{cells_in, coverage, full_matrix, Coverage};
pub use parity::{compare_traces, Divergence, Perturbation};
pub use scenario::{Category, FaultRegime, Scenario, Topology, Workload};
pub use shrink::{ddmin, shrink_cell, ShrinkReport};

/// Extra per-cell check on top of [`INVARIANT_NAMES`]: flooding
/// workloads must shed (and still answer), non-flooding ones must not.
pub const OVERLOAD_BACKPRESSURE: &str = "overload-backpressure-engaged";

/// Extra per-cell check on the replicated topology: an isolated node
/// must not inflate its term while cut off, and its rejoin must not
/// depose a stable leader (pre-vote absorbs the storm).
pub const NO_TERM_STORM: &str = "no-term-storm";

/// Extra per-cell check on the replicated topology: a leader that has
/// lost its commit quorum past the lease window must fence itself —
/// refuse writes — rather than serve from a stale log.
pub const NO_STALE_LEADER_READ: &str = "no-stale-leader-read";

/// Extra per-cell check on `Steady`-workload cells (both topologies):
/// the run carries a live `oasis-obs` registry with span recording on,
/// and its end-of-run snapshot renders byte-identically twice in a row.
/// The snapshot and the emitted spans are also embedded in the trace,
/// so the double-run replay parity check extends byte-determinism
/// across whole runs — any wall-clock leak into an instrumented hot
/// path becomes a conformance failure.
pub const METRICS_DETERMINISTIC: &str = "metrics-deterministic";

/// Runs one matrix cell under `base_seed`. The effective seed is
/// derived from the scenario *name* (`oasis_sim::scenario_seed`), so
/// every cell gets an independent deterministic stream and adding a
/// cell never reshuffles the others.
pub fn run_cell(scenario: Scenario, base_seed: u64) -> ScenarioRun {
    run_cell_perturbed(scenario, base_seed, None)
}

/// [`run_cell`] with an optional one-tick perturbation — the parity
/// meta-test's entry point. A perturbed run MUST produce a divergent
/// trace; anything else means the comparator (or the trace) is dead.
pub fn run_cell_perturbed(
    scenario: Scenario,
    base_seed: u64,
    perturb: Option<Perturbation>,
) -> ScenarioRun {
    let seed = oasis_sim::scenario_seed(base_seed, &scenario.name());
    match scenario.topology {
        Topology::TwoDomain => engine::run_two_domain(scenario, seed, perturb),
        Topology::ReplicatedCiv3 => replicated::run_replicated(scenario, seed, perturb),
    }
}
