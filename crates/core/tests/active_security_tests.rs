//! Further active-security and concurrency behaviour: predicate-retained
//! memberships, ambient-environment gating, and thread-safety of the
//! service under concurrent sessions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oasis_core::{
    Atom, CmpOp, Credential, EnvContext, OasisService, PrincipalId, RoleName, ServiceConfig, Term,
    Value, ValueType,
};
use oasis_facts::FactStore;

fn service() -> Arc<OasisService> {
    OasisService::new(ServiceConfig::new("svc"), Arc::new(FactStore::new()))
}

#[test]
fn predicate_membership_revoked_on_recheck() {
    let svc = service();
    svc.define_role("networked", &[], true).unwrap();
    svc.add_activation_rule(
        "networked",
        vec![],
        vec![Atom::predicate("link_up", vec![])],
        vec![0],
    )
    .unwrap();

    let link_up = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&link_up);
    let ctx =
        EnvContext::new(0).with_predicate("link_up", move |_, _| flag.load(Ordering::Relaxed));

    let alice = PrincipalId::new("alice");
    let rmc = svc
        .activate_role(&alice, &RoleName::new("networked"), &[], &[], &ctx)
        .unwrap();

    // Sweep while the predicate holds: nothing happens.
    assert!(svc.recheck_memberships(&ctx.at(10)).is_empty());
    assert!(svc.record(rmc.crr.cert_id).unwrap().status.is_active());

    // The link drops; the next sweep deactivates the role.
    link_up.store(false, Ordering::Relaxed);
    let revoked = svc.recheck_memberships(&ctx.at(20));
    assert_eq!(revoked, vec![rmc.crr.clone()]);
}

#[test]
fn ambient_values_gate_activation_and_invocation() {
    // "the location or name of a computer" as an environmental constraint.
    let svc = service();
    svc.define_role("console_operator", &[], true).unwrap();
    svc.add_activation_rule(
        "console_operator",
        vec![],
        vec![Atom::compare(
            Term::var("$host"),
            CmpOp::Eq,
            Term::val(Value::id("control-room")),
        )],
        vec![],
    )
    .unwrap();
    svc.add_invocation_rule(
        "open_valve",
        vec![],
        vec![
            Atom::prereq("console_operator", vec![]),
            Atom::compare(
                Term::var("$host"),
                CmpOp::Eq,
                Term::val(Value::id("control-room")),
            ),
        ],
    );

    let alice = PrincipalId::new("alice");
    let at_console = EnvContext::new(0).with_ambient("host", Value::id("control-room"));
    let at_home = EnvContext::new(0).with_ambient("host", Value::id("laptop"));

    assert!(svc
        .activate_role(
            &alice,
            &RoleName::new("console_operator"),
            &[],
            &[],
            &at_home
        )
        .is_err());
    let rmc = svc
        .activate_role(
            &alice,
            &RoleName::new("console_operator"),
            &[],
            &[],
            &at_console,
        )
        .unwrap();

    // Even holding the RMC, the invocation itself is host-gated.
    assert!(svc
        .invoke(
            &alice,
            "open_valve",
            &[],
            &[Credential::Rmc(rmc.clone())],
            &at_console
        )
        .is_ok());
    assert!(svc
        .invoke(&alice, "open_valve", &[], &[Credential::Rmc(rmc)], &at_home)
        .is_err());
}

#[test]
fn concurrent_sessions_issue_distinct_certificates() {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    let svc = OasisService::new(ServiceConfig::new("svc"), Arc::clone(&facts));
    svc.define_role("logged_in", &[("u", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();
    for i in 0..8 {
        facts
            .insert("password_ok", vec![Value::id(format!("user-{i}"))])
            .unwrap();
    }

    let mut handles = Vec::new();
    for i in 0..8 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let user = PrincipalId::new(format!("user-{i}"));
            let ctx = EnvContext::new(i);
            (0..50)
                .map(|_| {
                    svc.activate_role(
                        &user,
                        &RoleName::new("logged_in"),
                        &[Value::id(format!("user-{i}"))],
                        &[],
                        &ctx,
                    )
                    .unwrap()
                    .crr
                    .cert_id
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut all_ids = std::collections::HashSet::new();
    for handle in handles {
        for id in handle.join().unwrap() {
            assert!(all_ids.insert(id), "duplicate certificate id {id}");
        }
    }
    assert_eq!(all_ids.len(), 400);
    assert_eq!(svc.record_stats().0, 400);
}

#[test]
fn concurrent_revocation_and_activation_do_not_deadlock() {
    let facts = Arc::new(FactStore::new());
    let svc = OasisService::new(ServiceConfig::new("svc"), Arc::clone(&facts));
    svc.define_role("root", &[], true).unwrap();
    svc.add_activation_rule("root", vec![], vec![], vec![])
        .unwrap();
    svc.define_role("leaf", &[("n", ValueType::Int)], false)
        .unwrap();
    svc.add_activation_rule(
        "leaf",
        vec![Term::var("N")],
        vec![Atom::prereq("root", vec![])],
        vec![0],
    )
    .unwrap();

    let alice = PrincipalId::new("alice");
    let ctx = EnvContext::new(0);
    let root = svc
        .activate_role(&alice, &RoleName::new("root"), &[], &[], &ctx)
        .unwrap();

    // One thread hammers activations, another revokes roots repeatedly.
    let activator = {
        let svc = Arc::clone(&svc);
        let root = root.clone();
        let alice = alice.clone();
        std::thread::spawn(move || {
            let ctx = EnvContext::new(1);
            let mut ok = 0;
            for n in 0..200 {
                if svc
                    .activate_role(
                        &alice,
                        &RoleName::new("leaf"),
                        &[Value::Int(n)],
                        std::slice::from_ref(&Credential::Rmc(root.clone())),
                        &ctx,
                    )
                    .is_ok()
                {
                    ok += 1;
                }
            }
            ok
        })
    };
    let revoker = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            // Revoke the root partway through the activator's run.
            std::thread::yield_now();
            svc.revoke_certificate(root.crr.cert_id, "race", 2)
        })
    };

    let activated = activator.join().unwrap();
    revoker.join().unwrap();
    // Whatever interleaving happened, the invariant stands: no active
    // leaf retains the revoked root.
    let (active, _revoked, _) = svc.record_stats();
    for record in svc.active_records() {
        for dep in svc.dependencies(record.crr.cert_id).unwrap() {
            assert!(
                svc.record(dep.cert_id).unwrap().status.is_active(),
                "active cert retains revoked dependency"
            );
        }
    }
    // Sanity: numbers add up (root + leaves in some split).
    assert!(active <= activated + 1);
}

#[test]
fn end_session_revokes_rmcs_but_not_appointments() {
    let facts = Arc::new(FactStore::new());
    let svc = OasisService::new(ServiceConfig::new("svc"), Arc::clone(&facts));
    svc.define_role("login", &[], true).unwrap();
    svc.add_activation_rule("login", vec![], vec![], vec![])
        .unwrap();
    svc.define_role("inner", &[], false).unwrap();
    svc.add_activation_rule(
        "inner",
        vec![],
        vec![Atom::prereq("login", vec![])],
        vec![0],
    )
    .unwrap();
    svc.grant_appointer("login", "badge").unwrap();

    let alice = PrincipalId::new("alice");
    let bob = PrincipalId::new("bob");
    let ctx = EnvContext::new(0);

    let alice_login = svc
        .activate_role(&alice, &RoleName::new("login"), &[], &[], &ctx)
        .unwrap();
    let alice_inner = svc
        .activate_role(
            &alice,
            &RoleName::new("inner"),
            &[],
            std::slice::from_ref(&Credential::Rmc(alice_login.clone())),
            &ctx,
        )
        .unwrap();
    let bob_login = svc
        .activate_role(&bob, &RoleName::new("login"), &[], &[], &ctx)
        .unwrap();
    // Alice appoints Bob before logging out.
    let badge = svc
        .issue_appointment(
            &alice,
            &[Credential::Rmc(alice_login.clone())],
            "badge",
            vec![],
            &bob,
            None,
            None,
            &ctx,
        )
        .unwrap();

    let revoked = svc.end_session(&alice, "logout", 10);
    // The root was revoked directly; the inner role may fall either to
    // the direct sweep or to the cascade — both end revoked.
    assert!(revoked >= 1);
    assert!(svc
        .validate_own(&Credential::Rmc(alice_login), &alice, 11)
        .is_err());
    assert!(svc
        .validate_own(&Credential::Rmc(alice_inner), &alice, 11)
        .is_err());
    // Bob's session and the appointment both survive.
    assert!(svc
        .validate_own(&Credential::Rmc(bob_login), &bob, 11)
        .is_ok());
    assert!(svc
        .validate_own(&Credential::Appointment(badge), &bob, 11)
        .is_ok());
    // Idempotent.
    assert_eq!(svc.end_session(&alice, "logout", 12), 0);
}

#[test]
fn compare_membership_with_fact_bound_expiry() {
    // A retained comparison whose right operand was bound from a fact at
    // activation time: `$now < Expiry` keeps re-evaluating with fresh
    // `$now` but frozen `Expiry`.
    let facts = Arc::new(FactStore::new());
    facts.define("contract_until", 2).unwrap();
    facts
        .insert("contract_until", vec![Value::id("alice"), Value::Time(100)])
        .unwrap();
    let svc = OasisService::new(ServiceConfig::new("svc"), Arc::clone(&facts));
    svc.define_role("contractor", &[("u", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "contractor",
        vec![Term::var("U")],
        vec![
            Atom::env_fact("contract_until", vec![Term::var("U"), Term::var("End")]),
            Atom::compare(Term::var("$now"), CmpOp::Lt, Term::var("End")),
        ],
        vec![1],
    )
    .unwrap();

    let alice = PrincipalId::new("alice");
    let rmc = svc
        .activate_role(
            &alice,
            &RoleName::new("contractor"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(10),
        )
        .unwrap();

    assert!(svc.recheck_memberships(&EnvContext::new(99)).is_empty());
    let revoked = svc.recheck_memberships(&EnvContext::new(100));
    assert_eq!(revoked, vec![rmc.crr]);
}
