//! The error type for the OASIS core.

use thiserror::Error;

use crate::cert::Crr;
use crate::ids::{PrincipalId, RoleName, ServiceId};
use crate::rule::RuleId;
use crate::value::ValueType;

/// Errors reported by the OASIS core.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum OasisError {
    /// A role definition repeated a parameter name.
    #[error("role `{role}` declares parameter `{param}` twice")]
    DuplicateParam {
        /// The role being defined.
        role: RoleName,
        /// The repeated parameter.
        param: String,
    },

    /// A role was defined twice at one service.
    #[error("role `{0}` is already defined at this service")]
    DuplicateRole(RoleName),

    /// A role name was not defined at the service.
    #[error("unknown role `{0}`")]
    UnknownRole(RoleName),

    /// Wrong number of arguments for a role.
    #[error("role `{role}` takes {expected} parameters, got {actual}")]
    ArityMismatch {
        /// The role.
        role: RoleName,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },

    /// An argument had the wrong type.
    #[error("role `{role}` parameter `{param}` expects {expected}, got {actual}")]
    TypeMismatch {
        /// The role.
        role: RoleName,
        /// The offending parameter.
        param: String,
        /// Declared type.
        expected: ValueType,
        /// Supplied type.
        actual: ValueType,
    },

    /// A membership index pointed outside the rule's condition list.
    #[error("rule {rule}: membership index {index} out of range ({conditions} conditions)")]
    BadMembershipIndex {
        /// The rule.
        rule: RuleId,
        /// The offending index.
        index: usize,
        /// How many conditions the rule has.
        conditions: usize,
    },

    /// No activation rule for the role was satisfied by the presented
    /// credentials and environment.
    #[error("activation of `{role}` denied for {principal}: no rule satisfied")]
    ActivationDenied {
        /// The requested role.
        role: RoleName,
        /// The requesting principal.
        principal: PrincipalId,
    },

    /// No invocation rule authorised the method call.
    #[error("invocation of `{method}` denied for {principal}")]
    InvocationDenied {
        /// The method.
        method: String,
        /// The requesting principal.
        principal: PrincipalId,
    },

    /// A certificate failed validation.
    #[error("credential {crr} invalid: {reason}")]
    InvalidCredential {
        /// The credential's record reference.
        crr: Crr,
        /// Why it was rejected.
        reason: String,
    },

    /// A certificate's issuer-side record was not found.
    #[error("no credential record for {0}")]
    UnknownCertificate(Crr),

    /// A credential was presented to a service that did not issue it and
    /// that has no validator configured for the issuer.
    #[error("no validator reaches issuer `{0}`")]
    NoValidator(ServiceId),

    /// The principal holds no role privileged to issue this appointment.
    #[error("{principal} holds no role entitled to issue appointment `{appointment}`")]
    NotAppointer {
        /// The would-be appointer.
        principal: PrincipalId,
        /// The appointment kind.
        appointment: String,
    },

    /// An underlying fact-store operation failed (usually an undefined
    /// relation referenced from a rule).
    #[error("fact store: {0}")]
    Facts(#[from] oasis_facts::FactError),
}
