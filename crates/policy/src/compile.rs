//! Compilation of a checked AST onto a live `OasisService`.

use std::sync::Arc;

use oasis_core::{Atom, OasisService, ServiceId, Term};

use crate::ast::*;
use crate::check::referenced_relations;
use crate::error::PolicyError;

pub(crate) fn apply(ast: &PolicyAst, service: &Arc<OasisService>) -> Result<(), PolicyError> {
    let block = ast
        .services
        .iter()
        .find(|s| s.name == service.id().as_str())
        .ok_or_else(|| PolicyError::NoSuchService(service.id().to_string()))?;

    // Declare referenced env relations so rules never hit an undefined
    // relation at evaluation time.
    for (relation, arity) in referenced_relations(block) {
        service
            .facts()
            .define_if_absent(relation, arity)
            .map_err(|e| PolicyError::Core(e.to_string()))?;
    }

    for role in &block.roles {
        let params: Vec<(&str, oasis_core::ValueType)> =
            role.params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        service.define_role(role.name.as_str(), &params, role.initial)?;
    }

    for grant in &block.appointers {
        service.grant_appointer(grant.role.as_str(), grant.appointment.as_str())?;
    }

    for rule in &block.rules {
        let compiled: Vec<Atom> = rule.conditions.iter().map(compile_condition).collect();
        let (conditions, membership) = fold_conditions(compiled, rule.effective_membership());
        service.add_activation_rule(
            rule.role.as_str(),
            rule.head_args.clone(),
            conditions,
            membership,
        )?;
    }

    for inv in &block.invocations {
        let compiled: Vec<Atom> = inv.conditions.iter().map(compile_condition).collect();
        let (conditions, _) = fold_conditions(compiled, Vec::new());
        service.add_invocation_rule(inv.method.as_str(), inv.head_args.clone(), conditions);
    }

    Ok(())
}

/// Drops tautological constant comparisons (`env 1 < 2`) from a lowered
/// rule body, remapping the membership indices across the removals; a
/// membership entry naming a dropped condition is itself dropped (a
/// tautology needs no retention). *False* constant comparisons are kept
/// — the core engine proves the rule unsatisfiable at plan-compile time,
/// and the reference solver fails on the atom, so behaviour is
/// identical either way.
fn fold_conditions(atoms: Vec<Atom>, membership: Vec<usize>) -> (Vec<Atom>, Vec<usize>) {
    let tautology = |atom: &Atom| {
        matches!(
            atom,
            Atom::EnvCompare {
                left: Term::Const(l),
                op,
                right: Term::Const(r),
            } if op.eval(l, r)
        )
    };
    if !atoms.iter().any(tautology) {
        return (atoms, membership);
    }
    // remap[i] = new index of old condition i, or None if dropped.
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(atoms.len());
    let mut kept: Vec<Atom> = Vec::with_capacity(atoms.len());
    for atom in atoms {
        if tautology(&atom) {
            remap.push(None);
        } else {
            remap.push(Some(kept.len()));
            kept.push(atom);
        }
    }
    let membership = membership
        .into_iter()
        .filter_map(|i| match remap.get(i) {
            Some(mapped) => *mapped,
            // Out of range: keep as-is so rule validation still reports
            // the bad index (it cannot alias a kept condition, since the
            // kept list is no longer than the original).
            None => Some(i),
        })
        .collect();
    (kept, membership)
}

fn compile_condition(cond: &Condition) -> Atom {
    match &cond.kind {
        ConditionKind::Prereq {
            service,
            role,
            args,
        } => Atom::Prereq {
            service: service.as_ref().map(|s| ServiceId::new(s.clone())),
            role: role.as_str().into(),
            args: args.clone(),
        },
        ConditionKind::Appointment {
            service,
            name,
            args,
        } => Atom::Appointment {
            issuer: service.as_ref().map(|s| ServiceId::new(s.clone())),
            name: name.clone(),
            args: args.clone(),
        },
        ConditionKind::Fact {
            relation,
            args,
            negated,
        } => Atom::EnvFact {
            relation: relation.clone(),
            args: args.clone(),
            negated: *negated,
        },
        ConditionKind::Compare { left, op, right } => Atom::EnvCompare {
            left: left.clone(),
            op: *op,
            right: right.clone(),
        },
        ConditionKind::Predicate { name, args } => Atom::EnvPredicate {
            name: name.clone(),
            args: args.clone(),
        },
    }
}
