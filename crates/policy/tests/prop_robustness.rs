//! Robustness properties: the policy front end must never panic, whatever
//! bytes it is fed — it either parses or returns a positioned error.

use proptest::prelude::*;

use oasis_policy::Policy;

proptest! {
    /// Arbitrary printable garbage.
    #[test]
    fn parser_never_panics_on_arbitrary_text(input in "[ -~\\n\\t]{0,300}") {
        let _ = Policy::parse(&input);
    }

    /// Arbitrary unicode.
    #[test]
    fn parser_never_panics_on_unicode(input in "\\PC{0,120}") {
        let _ = Policy::parse(&input);
    }

    /// Structured-ish garbage: valid tokens in random order. This reaches
    /// deep into the parser where naive index arithmetic would slip.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("service".to_string()),
                Just("role".to_string()),
                Just("initial".to_string()),
                Just("rule".to_string()),
                Just("invoke".to_string()),
                Just("appointment".to_string()),
                Just("appointer".to_string()),
                Just("membership".to_string()),
                Just("prereq".to_string()),
                Just("env".to_string()),
                Just("not".to_string()),
                Just("<-".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just("::".to_string()),
                Just(":".to_string()),
                Just("id".to_string()),
                Just("x".to_string()),
                Just("X".to_string()),
                Just("_".to_string()),
                Just("42".to_string()),
                Just("@7".to_string()),
                Just("\"s\"".to_string()),
            ],
            0..40,
        )
    ) {
        let input = tokens.join(" ");
        let _ = Policy::parse(&input);
    }

    /// Every successfully parsed document pretty-prints and re-parses.
    #[test]
    fn accepted_documents_round_trip(input in "[ -~\\n]{0,200}") {
        if let Ok(policy) = Policy::parse(&input) {
            let printed = policy.to_text();
            let reparsed = Policy::parse(&printed)
                .expect("canonical output of an accepted document must parse");
            prop_assert_eq!(policy.ast().normalized(), reparsed.ast().normalized());
        }
    }
}
