//! The shared invariant set every matrix cell asserts.
//!
//! A scenario run does not `assert!` inline — it *records* each
//! invariant's verdict with enough detail to debug a failure from the
//! CI artifact alone, and the test harness fails on any recorded
//! violation. This keeps one run's full report visible (an inline
//! assert would hide every invariant after the first broken one) and
//! lets vacuous cells (e.g. `Quiet` workloads with no revocations)
//! state *why* a check holds.

use std::fmt;

/// The canonical invariant names, in report order. Every scenario's
/// report contains exactly these checks.
pub const INVARIANT_NAMES: [&str; 6] = [
    NO_POST_DEADLINE_EXECUTION,
    NO_STALE_CERT_ACCEPTANCE,
    GAP_FREE_RECOVERY,
    NO_ACKED_EVENT_LOST,
    DEGRADATION_CONSISTENT,
    BYZANTINE_EVIDENCE_REJECTED,
];

/// No admitted request starts executing after its propagated deadline.
pub const NO_POST_DEADLINE_EXECUTION: &str = "no-post-deadline-execution";
/// No validation answers `Ok` for a certificate whose revocation the
/// relying service had already applied, and every revoked certificate
/// is refused once catch-up completes.
pub const NO_STALE_CERT_ACCEPTANCE: &str = "no-stale-cert-acceptance";
/// After every fault window closes, catch-up over the retained ring is
/// complete — contiguous sequence numbers, no gap, no reuse.
pub const GAP_FREE_RECOVERY: &str = "gap-free-recovery";
/// Every acknowledged revocation survives crashes, failovers and lost
/// deliveries: it is present at the relying side after final catch-up
/// and its dependent certificates are collapsed.
pub const NO_ACKED_EVENT_LOST: &str = "no-acked-event-lost";
/// The degradation and breaker state machines end consistent: nothing
/// stale was ever served, the breaker is closed, queues are drained,
/// and degradation engaged exactly when the regime warranted it.
pub const DEGRADATION_CONSISTENT: &str = "degradation-consistent";
/// Evidence from a Byzantine CIV never earns unsecured trust: forged
/// certificates fail validation and fabricated histories are held
/// below the `Proceed` threshold.
pub const BYZANTINE_EVIDENCE_REJECTED: &str = "byzantine-evidence-rejected";

/// One invariant's verdict for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Which invariant (one of [`INVARIANT_NAMES`]).
    pub name: &'static str,
    /// Whether it held.
    pub holds: bool,
    /// Supporting detail — the observed numbers on success, the
    /// counter-example on failure.
    pub detail: String,
}

impl fmt::Display for InvariantCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            if self.holds { "ok" } else { "VIOLATED" },
            self.name,
            self.detail
        )
    }
}

/// The full invariant report of one scenario run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Checks in [`INVARIANT_NAMES`] order.
    pub checks: Vec<InvariantCheck>,
}

impl InvariantReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one check.
    pub fn record(&mut self, name: &'static str, holds: bool, detail: impl Into<String>) {
        self.checks.push(InvariantCheck {
            name,
            holds,
            detail: detail.into(),
        });
    }

    /// Whether every recorded check held.
    pub fn all_hold(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }

    /// The violated checks, in report order.
    pub fn violations(&self) -> Vec<&InvariantCheck> {
        self.checks.iter().filter(|c| !c.holds).collect()
    }

    /// Panics with every violation if any check failed — the harness's
    /// one assertion point per scenario.
    pub fn assert_all(&self, scenario: &str) {
        if self.all_hold() {
            return;
        }
        let mut msg = format!("scenario {scenario}: invariant violations:\n");
        for v in self.violations() {
            msg.push_str(&format!("  {v}\n"));
        }
        panic!("{msg}");
    }

    /// Whether the report covers the full canonical invariant set.
    pub fn is_complete(&self) -> bool {
        INVARIANT_NAMES
            .iter()
            .all(|name| self.checks.iter().any(|c| c.name == *name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_violations_and_completeness() {
        let mut report = InvariantReport::new();
        for name in INVARIANT_NAMES {
            report.record(name, true, "ok");
        }
        assert!(report.all_hold());
        assert!(report.is_complete());
        assert!(report.violations().is_empty());
        report.assert_all("demo"); // must not panic

        report.record(NO_ACKED_EVENT_LOST, false, "revocation 3 missing");
        assert!(!report.all_hold());
        assert_eq!(report.violations().len(), 1);
    }

    #[test]
    fn incomplete_report_is_detected() {
        let mut report = InvariantReport::new();
        report.record(NO_POST_DEADLINE_EXECUTION, true, "0 late starts");
        assert!(!report.is_complete());
    }

    #[test]
    #[should_panic(expected = "revocation 3 missing")]
    fn assert_all_panics_with_the_counter_example() {
        let mut report = InvariantReport::new();
        report.record(NO_ACKED_EVENT_LOST, false, "revocation 3 missing");
        report.assert_all("demo");
    }

    #[test]
    fn display_marks_verdicts() {
        let ok = InvariantCheck {
            name: GAP_FREE_RECOVERY,
            holds: true,
            detail: "seqs 1..=14".into(),
        };
        assert_eq!(ok.to_string(), "[ok] gap-free-recovery: seqs 1..=14");
        let bad = InvariantCheck {
            name: GAP_FREE_RECOVERY,
            holds: false,
            detail: "gap at 7".into(),
        };
        assert!(bad.to_string().starts_with("[VIOLATED]"));
    }
}
