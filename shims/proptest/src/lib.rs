//! Minimal, dependency-free replacement for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`/`boxed`, strategies for
//! integer ranges, `any::<T>()`, tuples, arrays, [`Just`], a character-class
//! regex subset for `&str` patterns (`"[a-z]{1,8}"`, `"\\PC{0,120}"`, ...),
//! `collection::{vec, btree_set}`, `bool::ANY`, `prop_oneof!`,
//! `prop_compose!`, and the `proptest!` test macro with
//! `#![proptest_config(...)]` support.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! generated inputs via normal assertion messages), and generation is
//! seeded deterministically per test name + case index so failures
//! reproduce across runs.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Per-test deterministic generator (xoshiro256++ seeded from the test name
/// and case index).
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let mut seed = hash ^ base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut state = [0u64; 4];
        for word in &mut state {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        Self { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform length in the given inclusive range.
    fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo + 1)
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            predicate: f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter exhausted attempts: {}", self.reason);
    }
}

/// Type-erased strategy; the building block of `prop_oneof!`/`prop_compose!`.
pub struct BoxedStrategy<V> {
    generator: Arc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            generator: Arc::clone(&self.generator),
        }
    }
}

impl<V> BoxedStrategy<V> {
    pub fn from_fn(f: impl Fn(&mut TestRng) -> V + 'static) -> Self {
        Self {
            generator: Arc::new(f),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generator)(rng)
    }
}

/// Uniform choice between alternatives (the `prop_oneof!` expansion).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias 1-in-8 draws toward boundary values; property tests
                // lean on extremes far more than a uniform draw would hit.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MIN];
                    EDGES[rng.below(4)]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        std::array::from_fn(|_| rng.next_u64() as u8)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples and arrays of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

// ---------------------------------------------------------------------------
// String patterns (character-class regex subset)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PatternItem {
    /// Inclusive character ranges, e.g. `[a-z0-9_]`.
    Class(Vec<(char, char)>),
    /// `\PC` — any non-control character.
    NotControl,
}

#[derive(Clone, Debug)]
struct Pattern {
    items: Vec<(PatternItem, u32, u32)>,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().unwrap();
                let hi = chars.next().expect("dangling range in class");
                assert!(lo <= hi, "inverted range in class");
                ranges.push((lo, hi));
            }
            '\\' => {
                if let Some(prev) = pending.take() {
                    ranges.push((prev, prev));
                }
                let esc = chars.next().expect("dangling escape in class");
                let lit = match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                pending = Some(lit);
            }
            other => {
                if let Some(prev) = pending.take() {
                    ranges.push((prev, prev));
                }
                pending = Some(other);
            }
        }
    }
    if let Some(prev) = pending {
        ranges.push((prev, prev));
    }
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    loop {
        match chars.next().expect("unterminated repetition") {
            '}' => break,
            c => spec.push(c),
        }
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad repetition bound"),
            hi.trim().parse().expect("bad repetition bound"),
        ),
        None => {
            let n = spec.trim().parse().expect("bad repetition count");
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Pattern {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => PatternItem::Class(parse_class(&mut chars)),
            '\\' => match chars.next().expect("dangling escape") {
                'P' => {
                    let category = chars.next().expect("missing \\P category");
                    assert_eq!(category, 'C', "only \\PC is supported");
                    PatternItem::NotControl
                }
                'n' => PatternItem::Class(vec![('\n', '\n')]),
                't' => PatternItem::Class(vec![('\t', '\t')]),
                'r' => PatternItem::Class(vec![('\r', '\r')]),
                other => PatternItem::Class(vec![(other, other)]),
            },
            other => PatternItem::Class(vec![(other, other)]),
        };
        let (lo, hi) = parse_repeat(&mut chars);
        items.push((item, lo, hi));
    }
    Pattern { items }
}

fn generate_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
        .sum();
    let mut pick = rng.below(total as usize) as u32;
    for (lo, hi) in ranges {
        let size = *hi as u32 - *lo as u32 + 1;
        if pick < size {
            return char::from_u32(*lo as u32 + pick).expect("valid class char");
        }
        pick -= size;
    }
    unreachable!("class pick out of bounds")
}

fn generate_not_control(rng: &mut TestRng) -> char {
    // Mostly printable ASCII; occasionally printable non-ASCII.
    loop {
        let c = if rng.below(8) == 0 {
            const POOLS: [(u32, u32); 3] = [(0x00A1, 0x024F), (0x0391, 0x03C9), (0x4E00, 0x4EFF)];
            let (lo, hi) = POOLS[rng.below(POOLS.len())];
            char::from_u32(lo + rng.below((hi - lo + 1) as usize) as u32)
        } else {
            char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32)
        };
        match c {
            Some(c) if !c.is_control() => return c,
            _ => continue,
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (item, lo, hi) in &pattern.items {
            let count = rng.len_in(*lo as usize, *hi as usize);
            for _ in 0..count {
                out.push(match item {
                    PatternItem::Class(ranges) => generate_from_class(ranges, rng),
                    PatternItem::NotControl => generate_not_control(rng),
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        /// Inclusive upper bound.
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.len_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.len_in(self.size.lo, self.size.hi);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($binding:ident in $strategy:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config = $config;
            for __pt_case in 0..__pt_config.cases {
                let mut __pt_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pt_case,
                );
                $(
                    let $binding = $crate::Strategy::generate(&($strategy), &mut __pt_rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($binding:ident in $strategy:expr),* $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> $crate::BoxedStrategy<$ret> {
            $crate::BoxedStrategy::from_fn(move |__pt_rng: &mut $crate::TestRng| {
                $(
                    let $binding = $crate::Strategy::generate(&($strategy), __pt_rng);
                )*
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::for_case("string_patterns", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = Strategy::generate(&"[A-Z][a-zA-Z0-9_]{0,5}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!(t.chars().count() <= 6);

            let u = Strategy::generate(&"[ -~\\n\\t]{0,300}", &mut rng);
            assert!(u.chars().count() <= 300);
            assert!(u
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));

            let v = Strategy::generate(&"\\PC{0,120}", &mut rng);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|n| n.to_string()),
            Just("fixed".to_string()),
        ];
        let mut rng = TestRng::for_case("oneof", 0);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == "fixed" || v.parse::<u64>().unwrap() < 10);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case("collections", 0);
        for _ in 0..50 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::generate(&crate::collection::btree_set(0u8..4, 0..3), &mut rng);
            assert!(s.len() < 3);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a: u64 = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("x", 3));
        let b: u64 = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself must compile with config, docs, and trailing commas.
        #[test]
        fn macro_smoke(x in 0u8..5, label in "[a-c]{1,2}",) {
            prop_assert!(x < 5);
            prop_assert_ne!(label.len(), 0);
            prop_assert_eq!(label.len(), label.chars().count());
        }
    }
}
