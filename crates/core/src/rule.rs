//! Activation and invocation rules in Horn-clause form, with the
//! resolution engine that evaluates them.
//!
//! "Activation of any role in OASIS is explicitly controlled by a role
//! activation rule. A role activation rule specifies, in Horn clause
//! logic, the conditions that a user must meet in order to activate the
//! role. The conditions may include prerequisite roles, appointment
//! credentials and environmental constraints." (Sect. 2)
//!
//! A rule's **membership rule** is the subset of its conditions that must
//! *remain* true while the role is active; it is expressed here as the
//! indices of the retained conditions.
//!
//! Evaluation ([`solve`]) is a left-to-right backtracking search: credential
//! atoms choose among the presented (already validated) certificates, fact
//! atoms enumerate matching tuples from the service's fact store (binding
//! free variables), and comparisons/predicates test fully-resolved values.
//! The reserved variable `$now` is pre-bound to the evaluation time, and
//! each ambient value `k` of the [`EnvContext`] is pre-bound as `$k`.

use std::fmt;

use oasis_facts::FactStore;

use crate::cert::{Credential, CredentialKind, Crr};
use crate::env::{CmpOp, EnvContext};
use crate::error::OasisError;
use crate::ids::{RoleName, ServiceId};
use crate::pattern::{Bindings, Term, VarName};
use crate::value::Value;

/// Identifies a rule within one service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule-{}", self.0)
    }
}

/// One condition of a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// The principal must hold an RMC for `role` issued by `service`
    /// (`None` = the service defining the rule).
    Prereq {
        /// Issuing service, or `None` for the defining service.
        service: Option<ServiceId>,
        /// Required role name.
        role: RoleName,
        /// Argument terms unified against the RMC's parameters.
        args: Vec<Term>,
    },
    /// The principal must hold an appointment certificate `name` issued by
    /// `issuer` (`None` = the defining service).
    Appointment {
        /// Issuing service, or `None` for the defining service.
        issuer: Option<ServiceId>,
        /// Appointment kind, e.g. `employed_as_doctor`.
        name: String,
        /// Argument terms unified against the certificate's parameters.
        args: Vec<Term>,
    },
    /// `relation(args)` must hold (or must not, when `negated`) in the
    /// service's fact store. Positive atoms may bind free variables;
    /// negated atoms must be fully bound when reached.
    EnvFact {
        /// Fact-store relation name.
        relation: String,
        /// Argument terms.
        args: Vec<Term>,
        /// Negation-as-failure.
        negated: bool,
    },
    /// A comparison between two resolved terms.
    EnvCompare {
        /// Left operand.
        left: Term,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Term,
    },
    /// A named custom predicate registered on the [`EnvContext`].
    EnvPredicate {
        /// Predicate name.
        name: String,
        /// Argument terms (must be fully bound when reached).
        args: Vec<Term>,
    },
}

impl Atom {
    /// Prerequisite role at the defining service.
    pub fn prereq(role: impl Into<RoleName>, args: Vec<Term>) -> Self {
        Atom::Prereq {
            service: None,
            role: role.into(),
            args,
        }
    }

    /// Prerequisite role at another service.
    pub fn prereq_at(
        service: impl Into<ServiceId>,
        role: impl Into<RoleName>,
        args: Vec<Term>,
    ) -> Self {
        Atom::Prereq {
            service: Some(service.into()),
            role: role.into(),
            args,
        }
    }

    /// Appointment certificate issued by the defining service.
    pub fn appointment(name: impl Into<String>, args: Vec<Term>) -> Self {
        Atom::Appointment {
            issuer: None,
            name: name.into(),
            args,
        }
    }

    /// Appointment certificate issued by another service.
    pub fn appointment_from(
        issuer: impl Into<ServiceId>,
        name: impl Into<String>,
        args: Vec<Term>,
    ) -> Self {
        Atom::Appointment {
            issuer: Some(issuer.into()),
            name: name.into(),
            args,
        }
    }

    /// Positive fact lookup.
    pub fn env_fact(relation: impl Into<String>, args: Vec<Term>) -> Self {
        Atom::EnvFact {
            relation: relation.into(),
            args,
            negated: false,
        }
    }

    /// Negated fact lookup (the tuple must be absent).
    pub fn env_not_fact(relation: impl Into<String>, args: Vec<Term>) -> Self {
        Atom::EnvFact {
            relation: relation.into(),
            args,
            negated: true,
        }
    }

    /// Comparison condition.
    pub fn compare(left: Term, op: CmpOp, right: Term) -> Self {
        Atom::EnvCompare { left, op, right }
    }

    /// Custom predicate condition.
    pub fn predicate(name: impl Into<String>, args: Vec<Term>) -> Self {
        Atom::EnvPredicate {
            name: name.into(),
            args,
        }
    }

    /// Whether this atom consumes a credential (prerequisite role or
    /// appointment certificate).
    pub fn is_credential(&self) -> bool {
        matches!(self, Atom::Prereq { .. } | Atom::Appointment { .. })
    }

    /// Whether this atom is specifically a *prerequisite role* condition
    /// (the kind whose absence makes a role *initial*, Sect. 2 — an
    /// appointment certificate is not a prerequisite role).
    pub fn is_credential_prereq(&self) -> bool {
        matches!(self, Atom::Prereq { .. })
    }

    /// Variables appearing in this atom.
    pub fn variables(&self) -> Vec<&VarName> {
        let terms: Vec<&Term> = match self {
            Atom::Prereq { args, .. }
            | Atom::Appointment { args, .. }
            | Atom::EnvFact { args, .. }
            | Atom::EnvPredicate { args, .. } => args.iter().collect(),
            Atom::EnvCompare { left, right, .. } => vec![left, right],
        };
        terms.into_iter().filter_map(Term::as_var).collect()
    }
}

fn fmt_args(f: &mut fmt::Formatter<'_>, args: &[Term]) -> fmt::Result {
    write!(f, "(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, ")")
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Prereq {
                service,
                role,
                args,
            } => {
                write!(f, "prereq ")?;
                if let Some(s) = service {
                    write!(f, "{s}.")?;
                }
                write!(f, "{role}")?;
                fmt_args(f, args)
            }
            Atom::Appointment { issuer, name, args } => {
                write!(f, "appointment ")?;
                if let Some(s) = issuer {
                    write!(f, "{s}.")?;
                }
                write!(f, "{name}")?;
                fmt_args(f, args)
            }
            Atom::EnvFact {
                relation,
                args,
                negated,
            } => {
                write!(f, "env ")?;
                if *negated {
                    write!(f, "not ")?;
                }
                write!(f, "{relation}")?;
                fmt_args(f, args)
            }
            Atom::EnvCompare { left, op, right } => write!(f, "env {left} {op} {right}"),
            Atom::EnvPredicate { name, args } => {
                write!(f, "env ?{name}")?;
                fmt_args(f, args)
            }
        }
    }
}

/// A role activation rule: `role(head_args) ← conditions`, with the
/// membership rule given as the indices of the retained conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationRule {
    /// Rule identifier, unique within the defining service.
    pub id: RuleId,
    /// The role this rule activates.
    pub role: RoleName,
    /// Head argument terms, unified with the requested parameters.
    pub head_args: Vec<Term>,
    /// Horn-clause body.
    pub conditions: Vec<Atom>,
    /// Indices into `conditions` that must remain true while the role is
    /// active (the membership rule of Sect. 2).
    pub membership: Vec<usize>,
}

impl ActivationRule {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`OasisError::BadMembershipIndex`] if a membership index is out of
    /// range.
    pub fn validate(&self) -> Result<(), OasisError> {
        for &idx in &self.membership {
            if idx >= self.conditions.len() {
                return Err(OasisError::BadMembershipIndex {
                    rule: self.id,
                    index: idx,
                    conditions: self.conditions.len(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for ActivationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.role)?;
        fmt_args(f, &self.head_args)?;
        write!(f, " <- ")?;
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A service-use rule: the conditions for invoking `method(head_args)`
/// (paths 3–4 of Fig 2). Invocations are instantaneous, so there is no
/// membership component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationRule {
    /// Rule identifier, unique within the defining service.
    pub id: RuleId,
    /// Method name this rule authorises.
    pub method: String,
    /// Head argument terms, unified with the invocation arguments.
    pub head_args: Vec<Term>,
    /// Horn-clause body.
    pub conditions: Vec<Atom>,
}

impl fmt::Display for InvocationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invoke {}", self.method)?;
        fmt_args(f, &self.head_args)?;
        write!(f, " <- ")?;
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A successful rule evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The final substitution.
    pub bindings: Bindings,
    /// Which presented credential satisfied each credential condition:
    /// `(condition index, credential CRR)`.
    pub used: Vec<(usize, Crr)>,
}

/// Evaluates a rule body against presented credentials, the fact store,
/// and the environment. Returns the first solution found, or `None`.
///
/// `self_service` resolves the implicit issuer of local atoms. The
/// credentials in `creds` must already have been *validated* (signature
/// checked against the presenting principal, issuer callback performed) —
/// [`solve`] is pure logic and does no cryptography.
pub fn solve(
    self_service: &ServiceId,
    conditions: &[Atom],
    seed: Bindings,
    creds: &[Credential],
    facts: &FactStore<Value>,
    ctx: &EnvContext,
) -> Option<Solution> {
    let mut seeded = seed;
    // Reserved ambient bindings: $now plus $k for each ambient value, so
    // they resolve in every atom kind (credential args, facts, compares,
    // predicates alike).
    if !seeded.bind(VarName::new("$now"), Value::Time(ctx.now())) {
        return None;
    }
    for (key, value) in ctx.ambient_iter() {
        if !seeded.bind(VarName::new(format!("${key}")), value.clone()) {
            return None;
        }
    }
    let mut step = SolveState {
        self_service,
        conditions,
        creds,
        facts,
        ctx,
    };
    // Ambient values; sorted for determinism.
    let mut used = Vec::new();
    step.solve_from(0, &mut seeded, &mut used)
        .then_some(Solution {
            bindings: seeded,
            used,
        })
}

struct SolveState<'a> {
    self_service: &'a ServiceId,
    conditions: &'a [Atom],
    creds: &'a [Credential],
    facts: &'a FactStore<Value>,
    ctx: &'a EnvContext,
}

impl SolveState<'_> {
    /// Attempts to satisfy conditions `idx..`, extending `bindings` and
    /// `used` in place. On failure both are restored to their state at
    /// entry.
    fn solve_from(
        &mut self,
        idx: usize,
        bindings: &mut Bindings,
        used: &mut Vec<(usize, Crr)>,
    ) -> bool {
        let Some(atom) = self.conditions.get(idx) else {
            return true; // all conditions satisfied
        };
        match atom {
            Atom::Prereq {
                service,
                role,
                args,
            } => self.solve_credential(
                idx,
                bindings,
                used,
                |cred| {
                    cred.kind() == CredentialKind::Rmc
                        && cred.name() == role.as_str()
                        && cred.issuer() == service.as_ref().unwrap_or(self.self_service)
                },
                args,
            ),
            Atom::Appointment { issuer, name, args } => self.solve_credential(
                idx,
                bindings,
                used,
                |cred| {
                    cred.kind() == CredentialKind::Appointment
                        && cred.name() == name
                        && cred.issuer() == issuer.as_ref().unwrap_or(self.self_service)
                },
                args,
            ),
            Atom::EnvFact {
                relation,
                args,
                negated,
            } => {
                if *negated {
                    // Negation as failure over fully bound tuples only.
                    let Some(tuple) = bindings.resolve_all(args) else {
                        return false;
                    };
                    match self.facts.contains(relation, &tuple) {
                        Ok(false) => self.solve_from(idx + 1, bindings, used),
                        _ => false,
                    }
                } else {
                    let pattern = bindings.resolve_pattern(args);
                    let Ok(rows) = self.facts.query(relation, &pattern) else {
                        return false;
                    };
                    for row in rows {
                        let snapshot = bindings.clone();
                        if bindings.unify_all(args, &row)
                            && self.solve_from(idx + 1, bindings, used)
                        {
                            return true;
                        }
                        *bindings = snapshot;
                    }
                    false
                }
            }
            Atom::EnvCompare { left, op, right } => {
                let (Some(l), Some(r)) = (bindings.resolve(left), bindings.resolve(right)) else {
                    return false;
                };
                op.eval(&l, &r) && self.solve_from(idx + 1, bindings, used)
            }
            Atom::EnvPredicate { name, args } => {
                let Some(values) = bindings.resolve_all(args) else {
                    return false;
                };
                self.ctx.eval_predicate(name, &values) && self.solve_from(idx + 1, bindings, used)
            }
        }
    }

    fn solve_credential(
        &mut self,
        idx: usize,
        bindings: &mut Bindings,
        used: &mut Vec<(usize, Crr)>,
        filter: impl Fn(&Credential) -> bool,
        args: &[Term],
    ) -> bool {
        for cred in self.creds.iter().filter(|c| filter(c)) {
            let snapshot = bindings.clone();
            if bindings.unify_all(args, cred.args()) {
                used.push((idx, cred.crr().clone()));
                if self.solve_from(idx + 1, bindings, used) {
                    return true;
                }
                used.pop();
            }
            *bindings = snapshot;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::Rmc;
    use crate::ids::{CertId, PrincipalId};
    use oasis_crypto::{IssuerSecret, SecretEpoch};

    fn svc() -> ServiceId {
        ServiceId::new("svc")
    }

    fn rmc(issuer: &str, id: u64, role: &str, args: Vec<Value>) -> Credential {
        let secret = IssuerSecret::random();
        Credential::Rmc(Rmc::issue(
            &secret.current(),
            SecretEpoch(0),
            &PrincipalId::new("p"),
            Crr::new(ServiceId::new(issuer), CertId(id)),
            RoleName::new(role),
            args,
            0,
            None,
        ))
    }

    fn appt(issuer: &str, id: u64, name: &str, args: Vec<Value>) -> Credential {
        let secret = IssuerSecret::random();
        Credential::Appointment(crate::cert::AppointmentCertificate::issue(
            &secret.current(),
            SecretEpoch(0),
            &PrincipalId::new("p"),
            Crr::new(ServiceId::new(issuer), CertId(id)),
            name.to_string(),
            args,
            0,
            None,
            None,
        ))
    }

    fn facts() -> FactStore<Value> {
        let f = FactStore::new();
        f.define("registered", 2).unwrap();
        f.define("excluded", 2).unwrap();
        f
    }

    #[test]
    fn empty_body_always_succeeds() {
        let sol = solve(
            &svc(),
            &[],
            Bindings::new(),
            &[],
            &facts(),
            &EnvContext::new(0),
        )
        .unwrap();
        assert!(sol.used.is_empty());
    }

    #[test]
    fn prereq_matches_local_rmc() {
        let cred = rmc("svc", 1, "doctor", vec![Value::id("d1")]);
        let sol = solve(
            &svc(),
            &[Atom::prereq("doctor", vec![Term::var("D")])],
            Bindings::new(),
            &[cred],
            &facts(),
            &EnvContext::new(0),
        )
        .unwrap();
        assert_eq!(sol.bindings.get_name("D"), Some(&Value::id("d1")));
        assert_eq!(sol.used.len(), 1);
        assert_eq!(sol.used[0].0, 0);
    }

    #[test]
    fn prereq_rejects_wrong_issuer() {
        let cred = rmc("other", 1, "doctor", vec![Value::id("d1")]);
        assert!(solve(
            &svc(),
            &[Atom::prereq("doctor", vec![Term::var("D")])],
            Bindings::new(),
            std::slice::from_ref(&cred),
            &facts(),
            &EnvContext::new(0),
        )
        .is_none());
        // But an explicit cross-service prereq accepts it.
        assert!(solve(
            &svc(),
            &[Atom::prereq_at("other", "doctor", vec![Term::var("D")])],
            Bindings::new(),
            &[cred],
            &facts(),
            &EnvContext::new(0),
        )
        .is_some());
    }

    #[test]
    fn appointment_vs_rmc_kinds_not_confused() {
        let cred = appt("svc", 1, "doctor", vec![]);
        assert!(
            solve(
                &svc(),
                &[Atom::prereq("doctor", vec![])],
                Bindings::new(),
                std::slice::from_ref(&cred),
                &facts(),
                &EnvContext::new(0),
            )
            .is_none(),
            "an appointment certificate must not satisfy a prereq atom"
        );
        assert!(solve(
            &svc(),
            &[Atom::appointment("doctor", vec![])],
            Bindings::new(),
            &[cred],
            &facts(),
            &EnvContext::new(0),
        )
        .is_some());
    }

    #[test]
    fn shared_variable_constrains_across_atoms() {
        // treating_doctor(D, P) needs on_duty(D) and assigned(D, P):
        // assignment for a different doctor must not match.
        let on_duty = rmc("svc", 1, "on_duty", vec![Value::id("d1")]);
        let assigned_wrong = appt("svc", 2, "assigned", vec![Value::id("d2"), Value::id("p1")]);
        let conditions = [
            Atom::prereq("on_duty", vec![Term::var("D")]),
            Atom::appointment("assigned", vec![Term::var("D"), Term::var("P")]),
        ];
        assert!(solve(
            &svc(),
            &conditions,
            Bindings::new(),
            &[on_duty.clone(), assigned_wrong],
            &facts(),
            &EnvContext::new(0),
        )
        .is_none());

        let assigned_right = appt("svc", 3, "assigned", vec![Value::id("d1"), Value::id("p1")]);
        let sol = solve(
            &svc(),
            &conditions,
            Bindings::new(),
            &[on_duty, assigned_right],
            &facts(),
            &EnvContext::new(0),
        )
        .unwrap();
        assert_eq!(sol.bindings.get_name("P"), Some(&Value::id("p1")));
        assert_eq!(sol.used.len(), 2);
    }

    #[test]
    fn backtracks_over_credential_choices() {
        // Two on_duty RMCs; only the second is consistent with the
        // assignment. The solver must backtrack.
        let duty_a = rmc("svc", 1, "on_duty", vec![Value::id("dA")]);
        let duty_b = rmc("svc", 2, "on_duty", vec![Value::id("dB")]);
        let assigned = appt("svc", 3, "assigned", vec![Value::id("dB"), Value::id("p")]);
        let sol = solve(
            &svc(),
            &[
                Atom::prereq("on_duty", vec![Term::var("D")]),
                Atom::appointment("assigned", vec![Term::var("D"), Term::Wildcard]),
            ],
            Bindings::new(),
            &[duty_a, duty_b, assigned],
            &facts(),
            &EnvContext::new(0),
        )
        .unwrap();
        assert_eq!(sol.bindings.get_name("D"), Some(&Value::id("dB")));
        assert_eq!(sol.used[0].1.cert_id, CertId(2));
    }

    #[test]
    fn fact_atom_binds_variables() {
        let f = facts();
        f.insert("registered", vec![Value::id("d1"), Value::id("p1")])
            .unwrap();
        f.insert("registered", vec![Value::id("d1"), Value::id("p2")])
            .unwrap();
        let sol = solve(
            &svc(),
            &[
                Atom::env_fact(
                    "registered",
                    vec![Term::val(Value::id("d1")), Term::var("P")],
                ),
                Atom::compare(Term::var("P"), CmpOp::Eq, Term::val(Value::id("p2"))),
            ],
            Bindings::new(),
            &[],
            &f,
            &EnvContext::new(0),
        )
        .unwrap();
        assert_eq!(
            sol.bindings.get_name("P"),
            Some(&Value::id("p2")),
            "solver must backtrack through fact rows"
        );
    }

    #[test]
    fn negated_fact_requires_absence() {
        let f = facts();
        f.insert("excluded", vec![Value::id("p1"), Value::id("d1")])
            .unwrap();
        let excluded = [Atom::env_not_fact(
            "excluded",
            vec![Term::val(Value::id("p1")), Term::val(Value::id("d1"))],
        )];
        assert!(solve(
            &svc(),
            &excluded,
            Bindings::new(),
            &[],
            &f,
            &EnvContext::new(0)
        )
        .is_none());
        let not_excluded = [Atom::env_not_fact(
            "excluded",
            vec![Term::val(Value::id("p1")), Term::val(Value::id("d2"))],
        )];
        assert!(solve(
            &svc(),
            &not_excluded,
            Bindings::new(),
            &[],
            &f,
            &EnvContext::new(0)
        )
        .is_some());
    }

    #[test]
    fn negated_fact_with_unbound_variable_fails_safely() {
        let f = facts();
        let body = [Atom::env_not_fact(
            "excluded",
            vec![Term::var("X"), Term::var("Y")],
        )];
        assert!(
            solve(&svc(), &body, Bindings::new(), &[], &f, &EnvContext::new(0)).is_none(),
            "unsafe negation must fail rather than succeed vacuously"
        );
    }

    #[test]
    fn now_variable_is_prebound() {
        let body = [Atom::compare(
            Term::var("$now"),
            CmpOp::Lt,
            Term::val(Value::Time(100)),
        )];
        assert!(solve(
            &svc(),
            &body,
            Bindings::new(),
            &[],
            &facts(),
            &EnvContext::new(50)
        )
        .is_some());
        assert!(solve(
            &svc(),
            &body,
            Bindings::new(),
            &[],
            &facts(),
            &EnvContext::new(150)
        )
        .is_none());
    }

    #[test]
    fn ambient_variable_resolves() {
        let ctx = EnvContext::new(0).with_ambient("host", Value::id("ward-3"));
        let body = [Atom::compare(
            Term::var("$host"),
            CmpOp::Eq,
            Term::val(Value::id("ward-3")),
        )];
        assert!(solve(&svc(), &body, Bindings::new(), &[], &facts(), &ctx).is_some());
        let body_bad = [Atom::compare(
            Term::var("$missing"),
            CmpOp::Eq,
            Term::val(Value::id("x")),
        )];
        assert!(solve(&svc(), &body_bad, Bindings::new(), &[], &facts(), &ctx).is_none());
    }

    #[test]
    fn predicate_atom_dispatches() {
        let ctx = EnvContext::new(0).with_predicate(
            "even",
            |args, _| matches!(args, [Value::Int(i)] if i % 2 == 0),
        );
        let ok = [Atom::predicate("even", vec![Term::val(Value::Int(4))])];
        assert!(solve(&svc(), &ok, Bindings::new(), &[], &facts(), &ctx).is_some());
        let bad = [Atom::predicate("even", vec![Term::val(Value::Int(3))])];
        assert!(solve(&svc(), &bad, Bindings::new(), &[], &facts(), &ctx).is_none());
        let unknown = [Atom::predicate("ghost", vec![])];
        assert!(solve(&svc(), &unknown, Bindings::new(), &[], &facts(), &ctx).is_none());
    }

    #[test]
    fn seed_bindings_constrain_solution() {
        let cred = rmc("svc", 1, "doctor", vec![Value::id("d1")]);
        let mut seed = Bindings::new();
        seed.bind(VarName::new("D"), Value::id("d2"));
        assert!(
            solve(
                &svc(),
                &[Atom::prereq("doctor", vec![Term::var("D")])],
                seed,
                &[cred],
                &facts(),
                &EnvContext::new(0),
            )
            .is_none(),
            "requested parameter d2 conflicts with credential d1"
        );
    }

    #[test]
    fn membership_index_validation() {
        let rule = ActivationRule {
            id: RuleId(1),
            role: RoleName::new("r"),
            head_args: vec![],
            conditions: vec![Atom::prereq("a", vec![])],
            membership: vec![1],
        };
        assert!(matches!(
            rule.validate(),
            Err(OasisError::BadMembershipIndex { index: 1, .. })
        ));
        let ok = ActivationRule {
            membership: vec![0],
            ..rule
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn atom_display_forms() {
        assert_eq!(
            Atom::prereq("doctor", vec![Term::var("D")]).to_string(),
            "prereq doctor(D)"
        );
        assert_eq!(
            Atom::appointment_from("admin", "employed", vec![]).to_string(),
            "appointment admin.employed()"
        );
        assert_eq!(
            Atom::env_not_fact("excluded", vec![Term::var("P"), Term::var("D")]).to_string(),
            "env not excluded(P, D)"
        );
        assert_eq!(
            Atom::compare(Term::var("X"), CmpOp::Le, Term::val(Value::Int(3))).to_string(),
            "env X <= 3"
        );
        assert_eq!(
            Atom::predicate("weekend", vec![]).to_string(),
            "env ?weekend()"
        );
    }

    #[test]
    fn multiple_identical_credentials_dont_duplicate_solutions() {
        // Using the same credential for two different atoms is allowed:
        // the paper places no linearity constraint on credentials.
        let cred = rmc("svc", 1, "doctor", vec![Value::id("d")]);
        let sol = solve(
            &svc(),
            &[
                Atom::prereq("doctor", vec![Term::var("D")]),
                Atom::prereq("doctor", vec![Term::var("D")]),
            ],
            Bindings::new(),
            &[cred],
            &facts(),
            &EnvContext::new(0),
        )
        .unwrap();
        assert_eq!(sol.used.len(), 2);
        assert_eq!(sol.used[0].1, sol.used[1].1);
    }
}
