//! The discrete-event loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

type EventFn = Box<dyn FnOnce(&mut Simulation)>;

struct Scheduled {
    at: u64,
    seq: u64,
    run: EventFn,
}

// Order by (time, insertion sequence) — FIFO among simultaneous events.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event simulator with virtual time.
///
/// Events are closures over `&mut Simulation`, so handlers can schedule
/// further events, sample the seeded RNG, and read the clock. Two runs
/// with the same seed and the same schedule are identical.
pub struct Simulation {
    now: u64,
    seq: u64,
    processed: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    rng: ChaCha8Rng,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation at time 0 with a seeded RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            now: 0,
            seq: 0,
            processed: 0,
            queue: BinaryHeap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The seeded random number generator.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }

    /// Schedules `event` to run `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: impl FnOnce(&mut Simulation) + 'static) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — time travel would silently corrupt
    /// causality, so it is rejected loudly.
    pub fn schedule_at(&mut self, at: u64, event: impl FnOnce(&mut Simulation) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule at t{at}, the clock is already at t{}",
            self.now
        );
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            run: Box::new(event),
        }));
    }

    /// Runs until the queue is empty; returns the number of events
    /// executed by this call.
    pub fn run(&mut self) -> u64 {
        self.run_until(u64::MAX)
    }

    /// Runs every event scheduled strictly before `deadline`, leaving the
    /// clock at the last executed event's time (or `deadline` if nothing
    /// remained). Returns the number of events executed by this call.
    pub fn run_until(&mut self, deadline: u64) -> u64 {
        let mut executed = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at >= deadline {
                if deadline != u64::MAX {
                    self.now = self.now.max(deadline);
                }
                return executed;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            self.now = event.at;
            (event.run)(self);
            self.processed += 1;
            executed += 1;
        }
        if deadline != u64::MAX {
            self.now = self.now.max(deadline);
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = Rc::clone(&log);
            sim.schedule_in(delay, move |sim| log.borrow_mut().push((sim.now(), tag)));
        }
        assert_eq!(sim.run(), 3);
        assert_eq!(*log.borrow(), vec![(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in ['x', 'y', 'z'] {
            let log = Rc::clone(&log);
            sim.schedule_at(5, move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim = Simulation::new(0);
        let hits = Rc::new(RefCell::new(0u64));
        fn tick(sim: &mut Simulation, hits: Rc<RefCell<u64>>, remaining: u32) {
            *hits.borrow_mut() += 1;
            if remaining > 0 {
                sim.schedule_in(10, move |sim| tick(sim, hits, remaining - 1));
            }
        }
        let h = Rc::clone(&hits);
        sim.schedule_in(0, move |sim| tick(sim, h, 4));
        sim.run();
        assert_eq!(*hits.borrow(), 5);
        assert_eq!(sim.now(), 40);
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0);
        let count = Rc::new(RefCell::new(0));
        for t in [5u64, 15, 25] {
            let count = Rc::clone(&count);
            sim.schedule_at(t, move |_| *count.borrow_mut() += 1);
        }
        assert_eq!(sim.run_until(20), 2);
        assert_eq!(sim.now(), 20);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.run(), 1);
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(0);
        sim.schedule_at(10, |sim| {
            sim.schedule_at(5, |_| {});
        });
        sim.run();
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Simulation::new(7);
        let mut b = Simulation::new(7);
        let mut c = Simulation::new(8);
        let va: Vec<u32> = (0..5).map(|_| a.rng().next_u32()).collect();
        let vb: Vec<u32> = (0..5).map(|_| b.rng().next_u32()).collect();
        let vc: Vec<u32> = (0..5).map(|_| c.rng().next_u32()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
