//! Point-to-point event channels.
//!
//! Fig 5 of the paper draws dedicated *event channels* from each credential
//! issuer to each service holding a dependent credential record. Where the
//! [`EventBus`](crate::EventBus) models the many-to-many notification
//! fabric, [`channel`] provides the dedicated one-to-one link: ordered,
//! unbounded, with explicit disconnect semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::EventError;

struct Shared<M> {
    queue: Mutex<VecDeque<M>>,
    available: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Creates a connected sender/receiver pair.
///
/// # Example
///
/// ```
/// let (tx, rx) = oasis_events::channel::<u32>();
/// tx.send(1).unwrap();
/// assert_eq!(rx.try_recv().unwrap(), 1);
/// ```
pub fn channel<M>() -> (ChannelSender<M>, ChannelReceiver<M>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        ChannelSender {
            shared: Arc::clone(&shared),
        },
        ChannelReceiver { shared },
    )
}

/// Sending half of a point-to-point event channel.
pub struct ChannelSender<M> {
    shared: Arc<Shared<M>>,
}

impl<M> fmt::Debug for ChannelSender<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelSender")
            .field("pending", &self.shared.queue.lock().len())
            .finish()
    }
}

impl<M> ChannelSender<M> {
    /// Enqueues a message for the receiver.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::Disconnected`] (handing the message back is not
    /// possible, it is dropped) when every receiver has been dropped.
    pub fn send(&self, message: M) -> Result<(), EventError> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(EventError::Disconnected);
        }
        self.shared.queue.lock().push_back(message);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Whether the receiving side is still alive.
    pub fn is_connected(&self) -> bool {
        self.shared.receivers.load(Ordering::Acquire) > 0
    }
}

impl<M> Clone for ChannelSender<M> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M> Drop for ChannelSender<M> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.available.notify_all();
        }
    }
}

/// Receiving half of a point-to-point event channel.
pub struct ChannelReceiver<M> {
    shared: Arc<Shared<M>>,
}

impl<M> fmt::Debug for ChannelReceiver<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelReceiver")
            .field("pending", &self.shared.queue.lock().len())
            .finish()
    }
}

impl<M> ChannelReceiver<M> {
    /// Pops the next message without blocking.
    ///
    /// # Errors
    ///
    /// [`EventError::Empty`] if nothing is pending;
    /// [`EventError::Disconnected`] if all senders are gone and the backlog
    /// is exhausted.
    pub fn try_recv(&self) -> Result<M, EventError> {
        let mut queue = self.shared.queue.lock();
        match queue.pop_front() {
            Some(m) => Ok(m),
            None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                Err(EventError::Disconnected)
            }
            None => Err(EventError::Empty),
        }
    }

    /// Blocks up to `timeout` for the next message.
    ///
    /// # Errors
    ///
    /// [`EventError::Empty`] on timeout; [`EventError::Disconnected`] if all
    /// senders are gone and the backlog is exhausted.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<M, EventError> {
        let mut queue = self.shared.queue.lock();
        loop {
            if let Some(m) = queue.pop_front() {
                return Ok(m);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(EventError::Disconnected);
            }
            if self
                .shared
                .available
                .wait_for(&mut queue, timeout)
                .timed_out()
            {
                return Err(EventError::Empty);
            }
        }
    }

    /// Number of messages waiting.
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().len()
    }
}

impl<M> Drop for ChannelReceiver<M> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_preserves_order() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(EventError::Empty));
    }

    #[test]
    fn send_after_receiver_dropped_fails() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert!(!tx.is_connected());
        assert_eq!(tx.send(1), Err(EventError::Disconnected));
    }

    #[test]
    fn backlog_still_drains_after_sender_dropped() {
        let (tx, rx) = channel();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(EventError::Disconnected));
    }

    #[test]
    fn cloned_senders_share_queue() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(EventError::Disconnected));
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = channel();
        let handle = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        handle.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(EventError::Empty)
        );
    }
}
