//! A genuinely distributed OASIS deployment: the issuing service runs
//! behind TCP in its own runtime thread, and a *synchronous* consumer
//! service performs its validation callbacks over the network through
//! [`RemoteValidator`] — the full Sect. 4 engineering picture.

use std::net::SocketAddr;
use std::sync::Arc;

use oasis_core::{
    Atom, Credential, EnvContext, OasisService, PrincipalId, RoleName, ServiceConfig, Term, Value,
    ValueType,
};
use oasis_facts::FactStore;
use oasis_wire::{proto, BlockingClient, RemoteValidator, WireServer};

/// Starts the issuer ("login") service on a TCP socket served from a
/// background thread; returns its address and a handle to the service.
fn spawn_issuer() -> (SocketAddr, Arc<OasisService>) {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let svc = OasisService::new(ServiceConfig::new("login"), facts);
    svc.define_role("logged_in", &[("u", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();

    let addr = WireServer::bind(Arc::clone(&svc), "127.0.0.1:0")
        .unwrap()
        .serve_in_background()
        .unwrap();
    (addr, svc)
}

/// A consumer service whose `member` role requires the remote login RMC.
fn consumer(validator: Arc<RemoteValidator>) -> Arc<OasisService> {
    let svc = OasisService::new(ServiceConfig::new("library"), Arc::new(FactStore::new()));
    svc.define_role("member", &[("u", ValueType::Id)], false)
        .unwrap();
    svc.add_activation_rule(
        "member",
        vec![Term::var("U")],
        vec![Atom::prereq_at("login", "logged_in", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();
    svc.set_validator(validator);
    svc
}

#[test]
fn cross_process_style_validation_over_tcp() {
    let (addr, _issuer) = spawn_issuer();
    let alice = PrincipalId::new("alice");

    // Alice logs in over the wire (as a real remote principal would).
    let mut client = BlockingClient::connect(addr).unwrap();
    let response = client
        .call(&proto::Request::Activate {
            principal: alice.clone(),
            role: "logged_in".into(),
            args: vec![Value::id("alice")],
            credentials: vec![],
            now: 1,
        })
        .unwrap();
    let login_rmc = match response {
        proto::Response::Activated { rmc } => *rmc,
        other => panic!("unexpected {other:?}"),
    };

    // The consumer service validates the foreign RMC by network callback.
    let validator = Arc::new(RemoteValidator::new());
    validator.add_issuer("login", addr);
    let library = consumer(validator);

    let member = library
        .activate_role(
            &alice,
            &RoleName::new("member"),
            &[Value::id("alice")],
            &[Credential::Rmc(login_rmc.clone())],
            &EnvContext::new(2),
        )
        .expect("network-validated activation succeeds");
    assert_eq!(member.role.as_str(), "member");

    // A thief presenting the stolen RMC is rejected — by the issuer, over
    // the network.
    let mallory = PrincipalId::new("mallory");
    assert!(library
        .activate_role(
            &mallory,
            &RoleName::new("member"),
            &[Value::id("mallory")],
            &[Credential::Rmc(login_rmc.clone())],
            &EnvContext::new(3),
        )
        .is_err());

    // Remote revocation propagates to the next callback.
    client
        .call(&proto::Request::Revoke {
            cert_id: login_rmc.crr.cert_id.0,
            reason: "logout".into(),
            now: 4,
        })
        .unwrap();
    assert!(library
        .activate_role(
            &alice,
            &RoleName::new("member"),
            &[Value::id("alice")],
            &[Credential::Rmc(login_rmc)],
            &EnvContext::new(5),
        )
        .is_err());
}

#[test]
fn unknown_issuer_is_refused_locally() {
    let validator = Arc::new(RemoteValidator::new());
    let library = consumer(validator);
    // A credential from an unregistered issuer never even dials.
    let secret = oasis_crypto::IssuerSecret::random();
    let fake = oasis_core::cert::Rmc::issue(
        &secret.current(),
        oasis_crypto::SecretEpoch(0),
        &PrincipalId::new("alice"),
        oasis_core::Crr::new("nowhere".into(), oasis_core::CertId(1)),
        RoleName::new("logged_in"),
        vec![Value::id("alice")],
        0,
        None,
    );
    assert!(library
        .activate_role(
            &PrincipalId::new("alice"),
            &RoleName::new("member"),
            &[Value::id("alice")],
            &[Credential::Rmc(fake)],
            &EnvContext::new(1),
        )
        .is_err());
}

#[test]
fn validator_redials_after_issuer_restart() {
    let (addr1, issuer1) = spawn_issuer();
    let alice = PrincipalId::new("alice");
    let rmc1 = issuer1
        .activate_role(
            &alice,
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(0),
        )
        .unwrap();

    let validator = Arc::new(RemoteValidator::new());
    validator.add_issuer("login", addr1);
    use oasis_core::CredentialValidator;
    validator
        .validate(&Credential::Rmc(rmc1.clone()), &alice, 1)
        .unwrap();

    // "Restart": a new issuer process at a new address, with new secrets.
    let (addr2, issuer2) = spawn_issuer();
    let rmc2 = issuer2
        .activate_role(
            &alice,
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(0),
        )
        .unwrap();
    validator.add_issuer("login", addr2);

    // New certificates validate against the new instance; the old
    // instance's certificates are unknown to it.
    validator
        .validate(&Credential::Rmc(rmc2), &alice, 2)
        .unwrap();
    assert!(validator
        .validate(&Credential::Rmc(rmc1), &alice, 2)
        .is_err());
}
