//! Metric collection for simulation experiments.

/// A simple exact histogram: stores every sample, answers quantiles.
///
/// Experiments here collect at most a few million samples, so exact
/// storage is simpler and more trustworthy than a sketch.
///
/// # Example
///
/// ```
/// use oasis_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 4, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.quantile(0.5), Some(3));
/// assert_eq!(h.max(), Some(100));
/// assert_eq!(h.mean(), Some(22.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`. `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean. `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<u64>() as f64 / self.values.len() as f64)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.values.iter().copied().max()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.values.iter().copied().min()
    }

    /// A one-line summary `n=… p50=… p99=… max=…` for experiment output.
    pub fn summary(&mut self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} min={} p50={} p90={} p99={} max={} mean={:.1}",
            self.count(),
            self.min().unwrap(),
            self.quantile(0.5).unwrap(),
            self.quantile(0.9).unwrap(),
            self.quantile(0.99).unwrap(),
            self.max().unwrap(),
            self.mean().unwrap(),
        )
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        self.values.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h: Histogram = (1..=100).collect();
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.9), Some(90));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn stats_basics() {
        let mut h: Histogram = [5u64, 1, 9].into_iter().collect();
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.mean(), Some(5.0));
        assert_eq!(h.median(), Some(5));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut h = Histogram::new();
        h.record(10);
        assert_eq!(h.median(), Some(10));
        h.record(1);
        h.record(2);
        assert_eq!(h.median(), Some(2));
    }

    #[test]
    fn summary_contains_key_stats() {
        let mut h: Histogram = (1..=10).collect();
        let s = h.summary();
        assert!(s.contains("n=10"));
        assert!(s.contains("p50=5"));
        assert!(s.contains("max=10"));
    }
}
