//! Domains, service-level agreements, CIV services, and cross-domain
//! validation for OASIS.
//!
//! The paper situates services inside *administrative domains* (hospitals,
//! primary care groups, a national EHR service…) and makes three
//! engineering points this crate implements:
//!
//! * **Certificate issuing and validation (CIV) services** (Sect. 4,
//!   ref \[10\]): "a domain will contain one highly available service to
//!   carry out the functions of certificate issuing and validation …
//!   including replication for availability together with consistency
//!   management". [`CivService`] fronts a domain's issuers with a
//!   primary/replica revocation log; replicas answer validation requests
//!   when an issuer is unreachable.
//! * **External credential record proxies** (Fig 5, "ECR"): a service
//!   holding certificates issued elsewhere "may cache the certificate and
//!   the result of validation … This requires an event channel so that
//!   the issuer can notify the service should the certificate be
//!   invalidated". [`EcrProxy`] is that cache: push-invalidated via the
//!   event bus, TTL-bounded as a fallback.
//! * **Service-level agreements** (Sect. 3, 5): cross-domain credentials
//!   are honoured only under a prior agreement. [`Federation`] holds the
//!   [`Sla`] graph and produces validators that enforce it.
//!
//! # Example
//!
//! ```no_run
//! use oasis_domain::{Domain, Federation, Sla, SlaClause};
//! use oasis_core::CredentialKind;
//!
//! let federation = Federation::new();
//! let hospital = Domain::new("hospital", federation.bus().clone());
//! let national = Domain::new("national-ehr", federation.bus().clone());
//! federation.register(&hospital);
//! federation.register(&national);
//! federation.add_sla(Sla::between("national-ehr", "hospital").accept(SlaClause {
//!     issuer: "hospital.records".into(),
//!     name: "treating_doctor".into(),
//!     kind: CredentialKind::Rmc,
//! }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod civ;
mod domain;
mod ecr;
mod error;
mod sla;

pub use civ::{CivService, CivStats};
pub use domain::Domain;
pub use ecr::{EcrProxy, EcrStats};
pub use error::DomainError;
pub use sla::{Federation, FederationValidator, Sla, SlaClause};
