//! Restart survives revocation: the durable-recovery walkthrough.
//!
//! A hospital service journals every security event to an append-only
//! store. We grant a doctor role, kill the process, revoke the
//! supporting login credential *while the hospital is down*, then
//! restart: `recover()` rebuilds the pre-crash state from the journal,
//! and `catch_up()` replays the missed revocation from the issuer's
//! retained ring — so the dependent doctor role collapses before the
//! service grants anything new.
//!
//! Run with `cargo run --example durable_restart`.

use std::sync::Arc;

use oasis::prelude::*;
use oasis::store::MemBackend;
use oasis_core::{Atom, ServiceJournal};

fn login_service(bus: &EventBus<CertEvent>) -> Arc<OasisService> {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let svc = OasisService::new(
        ServiceConfig::new("login")
            .with_bus(bus.clone())
            // Retain revoked-credential events so that a subscriber that
            // was down can later replay the gap.
            .with_revocation_retention(128),
        facts,
    );
    svc.define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![],
    )
    .unwrap();
    svc
}

/// One hospital *process*: constructing this a second time over the same
/// backends models a restart of the same service identity.
fn hospital_service(
    bus: &EventBus<CertEvent>,
    login: &Arc<OasisService>,
    journal: &MemBackend,
    snapshot: &MemBackend,
) -> Arc<OasisService> {
    let store =
        ServiceJournal::open(Arc::new(journal.clone()), Arc::new(snapshot.clone())).unwrap();
    let svc = OasisService::new(
        ServiceConfig::new("hospital")
            .with_bus(bus.clone())
            .with_validation_cache(1_000)
            .with_journal(store),
        Arc::new(FactStore::new()),
    );
    let registry = Arc::new(LocalRegistry::new());
    registry.register(login);
    svc.set_validator(registry);
    svc.define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    svc.add_activation_rule(
        "doctor_on_duty",
        vec![Term::var("D")],
        vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
        vec![0],
    )
    .unwrap();
    svc
}

fn main() {
    let bus: EventBus<CertEvent> = EventBus::new();
    let login = login_service(&bus);
    // In production these would be FileBackends on disk; MemBackend
    // clones share storage, so the bytes outlive the service instance.
    let journal = MemBackend::new();
    let snapshot = MemBackend::new();

    // --- First life: grant a doctor role, then "crash" ----------------
    let alice = PrincipalId::new("alice");
    let login_rmc = login
        .activate_role(
            &alice,
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(1),
        )
        .unwrap();
    let doctor_crr = {
        let hospital = hospital_service(&bus, &login, &journal, &snapshot);
        let rmc = hospital
            .activate_role(
                &alice,
                &RoleName::new("doctor_on_duty"),
                &[Value::id("alice")],
                &[Credential::Rmc(login_rmc.clone())],
                &EnvContext::new(2),
            )
            .unwrap();
        println!("[life 1] doctor_on_duty granted: {}", rmc.crr.cert_id);
        rmc.crr
        // The hospital process dies here; only the journal bytes remain.
    };
    println!("[crash ] hospital process gone; journal survives");

    // --- While down: the supporting login credential is revoked --------
    login.revoke_certificate(login_rmc.crr.cert_id, "compromised", 5);
    println!("[down  ] login revoked alice's session — nobody was listening");

    // --- Second life: recover, catch up, then carry on -----------------
    let hospital = hospital_service(&bus, &login, &journal, &snapshot);
    let report = hospital.recover(6).unwrap();
    println!(
        "[life 2] recovered: {} record(s), {} cached validation(s), catch-up required: {}",
        report.records_restored, report.validations_restored, report.catchup_required
    );

    let catchup = hospital.catch_up(&bus, "cred.revoked.login", 7);
    println!(
        "[life 2] catch-up replayed {} event(s), applied {} (complete: {})",
        catchup.replayed, catchup.applied, catchup.complete
    );
    let status = hospital.record(doctor_crr.cert_id).unwrap().status;
    println!("[life 2] doctor_on_duty after catch-up: {status:?}");
    assert!(matches!(status, CredStatus::Revoked { .. }));

    // Normal service resumes: a fresh login supports a fresh grant.
    let fresh_login = login
        .activate_role(
            &alice,
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(8),
        )
        .unwrap();
    let fresh = hospital
        .activate_role(
            &alice,
            &RoleName::new("doctor_on_duty"),
            &[Value::id("alice")],
            &[Credential::Rmc(fresh_login)],
            &EnvContext::new(8),
        )
        .unwrap();
    println!("[life 2] fresh grant after catch-up: {}", fresh.crr.cert_id);
}
