//! Chaos: a two-service deployment driven through a lossy, duplicating,
//! jittery simulated network with scripted faults, asserting the three
//! recovery invariants of the failure-aware validation layer:
//!
//! 1. **No revocation is ever missed** — once a certificate is revoked at
//!    its issuer, every later validation at the relying service denies,
//!    whether the revocation event arrived, was lost to a partition, or
//!    the issuer was down when it happened.
//! 2. **Fail-safe never grants on stale authority** — while the issuer is
//!    late or dead, cached validations are refused rather than served
//!    (`stale_served` stays 0), and dependent roles are deactivated
//!    within the grace period of the issuer being observed dead.
//! 3. **The system recovers after heal** — heartbeats clear the dead
//!    ledger, the circuit breaker closes on the first live answer, roles
//!    re-activate against fresh authority, and cache hits resume.
//!
//! The whole run is deterministic per seed (`CHAOS_SEED`, default 42) and
//! writes a JSONL event trace to `target/chaos/trace-<seed>.jsonl` for
//! post-mortem inspection — CI uploads it when the job fails.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oasis::events::{OverflowPolicy, SourceHealth};
use oasis::sim::{chaos_seed, write_lines, FaultPlan, Latency, LinkConfig, SimNet, Simulation};
use oasis_core::cert::Rmc;
use oasis_core::retry::RetryPolicy;
use oasis_core::{
    Atom, BreakerConfig, Credential, CredentialValidator, DegradationPolicy, EnvContext,
    HeartbeatConfig, LocalRegistry, OasisError, OasisService, PrincipalId, ResilientValidator,
    RoleName, ServiceConfig, ServiceId, Term, Value, ValueType,
};
use oasis_facts::FactStore;

/// Callback reachability switch: while "down" (the issuer process is
/// crashed) callbacks time out instead of answering.
struct Gate {
    inner: Arc<LocalRegistry>,
    up: AtomicBool,
}

impl CredentialValidator for Gate {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        if self.up.load(Ordering::SeqCst) {
            self.inner.validate(credential, presenter, now)
        } else {
            Err(OasisError::IssuerTimeout(credential.issuer().clone()))
        }
    }
}

fn alice() -> PrincipalId {
    PrincipalId::new("alice")
}

fn login_id() -> ServiceId {
    ServiceId::new("login")
}

fn login_in(login: &OasisService, now: u64) -> Rmc {
    login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(now),
        )
        .unwrap()
}

/// Runs the full chaos scenario for one seed, asserting the invariants
/// inline, and returns the event trace (one JSON object per line).
fn run_scenario(seed: u64) -> Vec<String> {
    // --- World: a login issuer and a failure-aware hospital -----------
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();

    let login = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_validation_cache(5)
            .with_heartbeats(HeartbeatConfig {
                dead_after: 3,
                grace: 10,
                policy: DegradationPolicy::FailSafe,
            }),
        Arc::clone(&facts),
    );
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();
    hospital.add_invocation_rule(
        "read_record",
        vec![Term::var("D")],
        vec![Atom::prereq("doctor_on_duty", vec![Term::var("D")])],
    );

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    let gate = Arc::new(Gate {
        inner: registry,
        up: AtomicBool::new(true),
    });
    let resilient = Arc::new(
        ResilientValidator::new(gate.clone() as Arc<dyn CredentialValidator>)
            .with_retry(RetryPolicy::immediate(2))
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown_ticks: 30,
            }),
    );
    hospital.set_validator(resilient.clone());
    hospital.watch_issuer(&login_id(), 10, 0);

    // Role state at t=0: alice is logged in and on duty.
    let login_rmc = login_in(&login, 0);
    let duty = hospital
        .activate_role(
            &alice(),
            &RoleName::new("doctor_on_duty"),
            &[Value::id("alice")],
            &[Credential::Rmc(login_rmc.clone())],
            &EnvContext::new(0),
        )
        .unwrap();

    // Overflow observation: a one-slot subscriber that is never drained,
    // so the healthy-phase revocation burst must overflow it, and a
    // watcher for the bus's overflow self-events.
    let tiny = hospital
        .bus()
        .subscribe_bounded("cred.revoked.#", 1, OverflowPolicy::DropNewest)
        .unwrap();
    let overflow_watch = hospital.bus().subscribe("bus.overflow.#").unwrap();

    // --- Simulated network and scripted faults ------------------------
    let mut sim = Simulation::new(seed);
    let net = Rc::new(RefCell::new(SimNet::new(LinkConfig {
        latency: Latency::Constant(1),
        loss: 0.05,
        duplicate: 0.10,
        jitter: 2,
    })));
    let plan = Rc::new(RefCell::new(FaultPlan::new()));
    plan.borrow_mut().crash_at(91, "login");
    plan.borrow_mut().recover_at(160, "login");

    let trace = Rc::new(RefCell::new(Vec::<String>::new()));
    let log = {
        let trace = Rc::clone(&trace);
        move |tick: u64, event: &str| {
            trace
                .borrow_mut()
                .push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));
        }
    };

    // Fault driver: every tick, enact due faults; a crashed login also
    // means its callback endpoint stops answering.
    for t in 1..=240u64 {
        let plan = Rc::clone(&plan);
        let net = Rc::clone(&net);
        let gate = Arc::clone(&gate);
        let log = log.clone();
        sim.schedule_at(t, move |sim| {
            for fault in plan
                .borrow_mut()
                .apply_due(sim.now(), &mut net.borrow_mut())
            {
                log(sim.now(), &format!("fault {fault:?}"));
                match fault {
                    oasis::sim::Fault::Crash { .. } => gate.up.store(false, Ordering::SeqCst),
                    oasis::sim::Fault::Recover { .. } => gate.up.store(true, Ordering::SeqCst),
                    _ => {}
                }
            }
        });
    }

    // Heartbeats: login beats every 10 ticks over the network; crashes
    // and pauses silence it, in-flight beats still land.
    for t in (10..=240u64).step_by(10) {
        let net = Rc::clone(&net);
        let plan = Rc::clone(&plan);
        let hospital = Arc::clone(&hospital);
        sim.schedule_at(t, move |sim| {
            if plan.borrow().heartbeats_paused("login") {
                return;
            }
            let hospital = Arc::clone(&hospital);
            net.borrow_mut().send(sim, "login", "hospital", move |sim| {
                hospital.issuer_beat(&login_id(), sim.now());
            });
        });
    }

    // Revocation events cross the network: pump the login bus into the
    // hospital bus through the (faulty) link every tick.
    let feed = Rc::new(login.bus().subscribe("cred.revoked.#").unwrap());
    for t in 1..=240u64 {
        let net = Rc::clone(&net);
        let feed = Rc::clone(&feed);
        let hospital = Arc::clone(&hospital);
        sim.schedule_at(t, move |sim| {
            for ev in feed.drain() {
                let hospital = Arc::clone(&hospital);
                let topic = ev.topic.clone();
                net.borrow_mut().send(sim, "login", "hospital", move |sim| {
                    hospital.bus().publish_at(&topic, ev.payload, sim.now());
                });
            }
        });
    }

    // Heartbeat sweeper: the hospital's maintenance tick every 5 ticks;
    // record when the issuer is first seen dead and when degradation
    // revokes the dependents.
    let dead_seen = Rc::new(RefCell::new(None::<u64>));
    let degraded_at = Rc::new(RefCell::new(None::<u64>));
    for t in (5..=240u64).step_by(5) {
        let hospital = Arc::clone(&hospital);
        let dead_seen = Rc::clone(&dead_seen);
        let degraded_at = Rc::clone(&degraded_at);
        let log = log.clone();
        sim.schedule_at(t, move |sim| {
            let now = sim.now();
            if dead_seen.borrow().is_none()
                && hospital.issuer_health(&login_id(), now) == Some(SourceHealth::Dead)
            {
                *dead_seen.borrow_mut() = Some(now);
                log(now, "issuer login observed dead");
            }
            let revoked = hospital.tick_heartbeats(now);
            if !revoked.is_empty() {
                *degraded_at.borrow_mut() = Some(now);
                log(
                    now,
                    &format!("degraded {} dependent cert(s)", revoked.len()),
                );
            }
        });
    }

    // --- Phase 1 (healthy): cache hits, and a revocation burst --------
    {
        let hospital = Arc::clone(&hospital);
        let cred = Credential::Rmc(login_rmc.clone());
        let log = log.clone();
        sim.schedule_at(2, move |sim| {
            assert!(
                hospital
                    .validate_credential(&cred, &alice(), sim.now())
                    .is_ok(),
                "healthy: cached validation serves"
            );
            assert!(hospital.validation_cache_stats().unwrap().hits >= 1);
            log(sim.now(), "healthy cache hit");
        });
    }
    // Eight throwaway sessions revoked in a burst: their events cross the
    // lossy link and flood the one-slot subscriber into overflow.
    let throwaways: Vec<Rmc> = (0..8).map(|_| login_in(&login, 1)).collect();
    for (i, rmc) in throwaways.iter().enumerate() {
        let login = Arc::clone(&login);
        let cert = rmc.crr.cert_id;
        sim.schedule_at(20 + i as u64, move |sim| {
            login.revoke_certificate(cert, "session closed", sim.now());
        });
    }
    {
        let hospital = Arc::clone(&hospital);
        let creds: Vec<Credential> = throwaways.iter().cloned().map(Credential::Rmc).collect();
        let log = log.clone();
        sim.schedule_at(40, move |sim| {
            for cred in &creds {
                assert!(
                    hospital
                        .validate_credential(cred, &alice(), sim.now())
                        .is_err(),
                    "revoked throwaway must not validate, event lost or not"
                );
            }
            log(sim.now(), "all burst revocations enforced");
        });
    }
    {
        let hospital = Arc::clone(&hospital);
        let duty = duty.clone();
        let login_rmc = login_rmc.clone();
        let log = log.clone();
        sim.schedule_at(50, move |sim| {
            hospital
                .invoke(
                    &alice(),
                    "read_record",
                    &[Value::id("alice")],
                    &[
                        Credential::Rmc(duty.clone()),
                        Credential::Rmc(login_rmc.clone()),
                    ],
                    &EnvContext::new(sim.now()),
                )
                .expect("healthy: duty role invokes");
            log(sim.now(), "healthy invoke ok");
        });
    }

    // --- Phase 2 (crash at 91): revocation lost, fail-safe holds ------
    {
        let login = Arc::clone(&login);
        let cert = login_rmc.crr.cert_id;
        let log = log.clone();
        sim.schedule_at(95, move |sim| {
            // The event is published while the network drops everything
            // from the crashed node: the hospital never hears it.
            login.revoke_certificate(cert, "compromised", sim.now());
            log(sim.now(), "login credential revoked during crash");
        });
    }
    // Late issuer + unreachable callback: fail-safe refuses, repeated
    // refusals trip the breaker.
    for t in [105u64, 107, 109, 112] {
        let hospital = Arc::clone(&hospital);
        let cred = Credential::Rmc(login_rmc.clone());
        let resilient = Arc::clone(&resilient);
        let log = log.clone();
        sim.schedule_at(t, move |sim| {
            assert!(
                hospital
                    .validate_credential(&cred, &alice(), sim.now())
                    .is_err(),
                "fail-safe: no grant while the issuer is silent"
            );
            if sim.now() == 112 {
                assert_eq!(resilient.breaker_state(&login_id()), "open");
                log(sim.now(), "breaker open");
            }
        });
    }
    {
        let hospital = Arc::clone(&hospital);
        let duty = duty.clone();
        let login_rmc = login_rmc.clone();
        let log = log.clone();
        sim.schedule_at(140, move |sim| {
            assert!(
                hospital
                    .invoke(
                        &alice(),
                        "read_record",
                        &[Value::id("alice")],
                        &[
                            Credential::Rmc(duty.clone()),
                            Credential::Rmc(login_rmc.clone())
                        ],
                        &EnvContext::new(sim.now()),
                    )
                    .is_err(),
                "degraded duty role must not invoke"
            );
            log(sim.now(), "degraded invoke denied");
        });
    }

    // --- Phase 3 (heal at 160): recovery ------------------------------
    // Beats themselves cross the lossy link, so the first one to land
    // after the heal is seed-dependent: probe each tick from the end of
    // the breaker cooldown and act on the first healthy observation.
    let fresh_cred = Rc::new(RefCell::new(None::<Credential>));
    for t in 171..=220u64 {
        let login = Arc::clone(&login);
        let hospital = Arc::clone(&hospital);
        let resilient = Arc::clone(&resilient);
        let cred = Credential::Rmc(login_rmc.clone());
        let fresh_cred = Rc::clone(&fresh_cred);
        let log = log.clone();
        sim.schedule_at(t, move |sim| {
            let now = sim.now();
            if fresh_cred.borrow().is_some()
                || hospital.issuer_health(&login_id(), now) != Some(SourceHealth::Healthy)
            {
                return;
            }
            log(now, "heartbeats resumed after heal");
            // The half-open probe reaches the live issuer, which answers
            // authoritatively: the credential was revoked during the
            // outage and stays revoked.
            assert!(
                hospital.validate_credential(&cred, &alice(), now).is_err(),
                "revocation survives the outage"
            );
            assert_eq!(resilient.breaker_state(&login_id()), "closed");
            log(now, "breaker closed by live answer");

            let fresh = login_in(&login, now);
            let duty2 = hospital
                .activate_role(
                    &alice(),
                    &RoleName::new("doctor_on_duty"),
                    &[Value::id("alice")],
                    &[Credential::Rmc(fresh.clone())],
                    &EnvContext::new(now),
                )
                .expect("roles re-activate after heal");
            log(now, "duty re-activated");
            hospital
                .invoke(
                    &alice(),
                    "read_record",
                    &[Value::id("alice")],
                    &[Credential::Rmc(duty2), Credential::Rmc(fresh.clone())],
                    &EnvContext::new(now),
                )
                .expect("recovered invoke succeeds");
            log(now, "recovered invoke ok");
            *fresh_cred.borrow_mut() = Some(Credential::Rmc(fresh));
        });
    }
    // Cache hits resume once a healthy heartbeat window opens (individual
    // beats can still be lost to the 5% link loss, so probe until one
    // lands): two back-to-back validations inside a healthy window must
    // hit the cache on the second.
    let hit_resumed = Rc::new(RefCell::new(None::<u64>));
    for t in 172..=238u64 {
        let hospital = Arc::clone(&hospital);
        let fresh_cred = Rc::clone(&fresh_cred);
        let hit_resumed = Rc::clone(&hit_resumed);
        let log = log.clone();
        sim.schedule_at(t, move |sim| {
            let now = sim.now();
            if hit_resumed.borrow().is_some()
                || hospital.issuer_health(&login_id(), now) != Some(SourceHealth::Healthy)
            {
                return;
            }
            let Some(cred) = fresh_cred.borrow().clone() else {
                return;
            };
            hospital
                .validate_credential(&cred, &alice(), now)
                .expect("healthy validation succeeds");
            let hits_before = hospital.validation_cache_stats().unwrap().hits;
            hospital
                .validate_credential(&cred, &alice(), now)
                .expect("healthy validation succeeds");
            assert!(
                hospital.validation_cache_stats().unwrap().hits > hits_before,
                "a healthy issuer must serve the second validation from cache"
            );
            *hit_resumed.borrow_mut() = Some(now);
            log(now, "cache hits resumed");
        });
    }

    sim.run();

    assert!(
        hit_resumed.borrow().is_some(),
        "some healthy window after heal must serve cache hits"
    );

    // --- Post-run invariants ------------------------------------------
    let dead = dead_seen.borrow().expect("issuer must be observed dead");
    let degraded = degraded_at
        .borrow()
        .expect("fail-safe must degrade the dependents");
    assert!(
        degraded >= dead && degraded <= dead + 10 + 5,
        "degradation within the grace period (sweeper granularity): \
         dead at {dead}, degraded at {degraded}"
    );

    let ds = hospital.degradation_stats().unwrap();
    assert_eq!(ds.stale_served, 0, "fail-safe never serves stale authority");
    assert!(ds.stale_refused >= 1);
    assert!(ds.dead_evictions >= 1);
    assert_eq!(ds.degraded_issuers, 1);
    assert!(ds.degraded_certs >= 1);
    assert_eq!(ds.issuer_recoveries, 1, "heal clears the dead ledger once");

    let rs = resilient.stats();
    assert!(rs.breaker_opens >= 1);
    assert!(rs.breaker_closes >= 1, "breaker closed after heal");
    assert!(rs.retries >= 1, "transient failures were retried");

    assert!(
        hospital.bus().stats().overflow_events >= 1,
        "the revocation burst must overflow the one-slot subscriber"
    );
    assert!(
        !overflow_watch.drain().is_empty(),
        "overflow self-events are observable on bus.overflow.#"
    );
    drop(tiny);

    let (sent, dropped) = net.borrow().stats();
    trace.borrow_mut().push(format!(
        "{{\"tick\":240,\"event\":\"net sent={sent} dropped={dropped} duplicated={}\"}}",
        net.borrow().duplicated()
    ));
    assert!(dropped >= 1, "the crash window must have dropped traffic");

    let replay = trace.borrow().clone();
    replay
}

#[test]
fn chaos_crash_degrade_heal_recover() {
    let seed = chaos_seed();
    let trace = run_scenario(seed);
    let _ = write_lines("trace", seed, &trace);
    // The trace must show the full arc: death observed, degradation,
    // breaker lifecycle, recovery.
    let all = trace.join("\n");
    for landmark in [
        "healthy cache hit",
        "all burst revocations enforced",
        "login credential revoked during crash",
        "breaker open",
        "issuer login observed dead",
        "degraded 1 dependent cert(s)",
        "breaker closed by live answer",
        "cache hits resumed",
    ] {
        assert!(all.contains(landmark), "trace missing {landmark:?}:\n{all}");
    }
}

/// Kill-during-commit: the process dies *between* journalling a security
/// event and applying it in memory — the narrowest possible crash
/// window. Replay must be idempotent: no RMC is double-issued (the
/// certificate id space never collides) and no journalled revocation is
/// lost, even though the dying process never saw it applied.
#[test]
fn chaos_kill_during_commit_replays_idempotently() {
    use oasis::store::MemBackend;
    use oasis_core::{CredStatus, ServiceJournal};

    let seed = chaos_seed();
    let mut trace: Vec<String> = Vec::new();
    let mut log =
        |tick: u64, event: &str| trace.push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));

    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let journal = MemBackend::new();
    let snapshot = MemBackend::new();
    let durable_login = |journal: &MemBackend, snapshot: &MemBackend| {
        let store = ServiceJournal::open(Arc::new(journal.clone()), Arc::new(snapshot.clone()))
            .expect("journal opens");
        let svc = OasisService::new(
            ServiceConfig::new("login").with_journal(store),
            Arc::clone(&facts),
        );
        svc.define_role("logged_in", &[("user", ValueType::Id)], true)
            .unwrap();
        svc.add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();
        svc
    };

    // Seed-dependent healthy prefix, then a crash inside each of the two
    // commit windows: one on issue, one on revoke.
    let pre = (seed % 3) as usize + 1;
    let first_life = durable_login(&journal, &snapshot);
    let mut issued = Vec::new();
    for i in 0..pre {
        issued.push(login_in(&first_life, i as u64));
    }
    log(0, &format!("healthy prefix issued {pre} cert(s)"));

    // Crash window 1: the issue journals CertIssued, then dies before
    // the in-memory apply. The caller never receives an RMC.
    assert!(first_life.chaos_arm_crash_after_journal());
    let torn_issue = first_life.activate_role(
        &alice(),
        &RoleName::new("logged_in"),
        &[Value::id("alice")],
        &[],
        &EnvContext::new(10),
    );
    assert!(
        matches!(&torn_issue, Err(OasisError::Journal(m)) if m.contains("chaos")),
        "armed issue dies inside the commit window"
    );
    log(10, "issue crashed between append and apply");

    // Crash window 2: the revocation journals CertRevoked, then dies;
    // the dying process still sees the certificate as active.
    let victim = issued[0].crr.cert_id;
    assert!(first_life.chaos_arm_crash_after_journal());
    assert!(
        !first_life.revoke_certificate(victim, "compromised", 11),
        "armed revoke dies before applying"
    );
    assert!(
        first_life.record(victim).unwrap().status.is_active(),
        "the dying process never saw the revocation applied"
    );
    let stats_at_death = first_life.record_stats();
    drop(first_life);
    log(11, "revoke crashed between append and apply; process dead");

    // Second life: replay heals both windows, exactly once each.
    let second_life = durable_login(&journal, &snapshot);
    let report = second_life.recover(20).unwrap();
    log(20, &format!("replayed {} event(s)", report.events_replayed));

    // No lost revocation: the journalled-but-unapplied revoke lands.
    assert!(
        matches!(
            second_life.record(victim).unwrap().status,
            CredStatus::Revoked { .. }
        ),
        "journalled revocation survives the crash"
    );
    assert_eq!(report.revocations_replayed, 1);

    // No double-issue: the torn issue's record exists exactly once, so
    // total records = healthy prefix + the one torn issue, and the dead
    // process's view is never *ahead* of the replayed one.
    assert_eq!(report.records_restored as usize, pre + 1);
    let (active, revoked, _) = second_life.record_stats();
    assert_eq!(
        active + revoked,
        pre + 1,
        "torn issue restored exactly once"
    );
    assert_eq!(
        stats_at_death.0, pre,
        "dead process never applied the torn issue"
    );

    // The id space never collides: a fresh grant allocates past every
    // replayed certificate, including the torn one.
    let fresh = login_in(&second_life, 21);
    let max_replayed = (1..=pre as u64 + 1).max().unwrap();
    assert!(
        fresh.crr.cert_id.0 > max_replayed,
        "fresh id {} must not reuse a replayed id",
        fresh.crr.cert_id
    );
    log(21, "fresh grant after replay; id space intact");

    // A second replay of the same journal is byte-for-byte idempotent.
    let third_life = durable_login(&journal, &snapshot);
    let report2 = third_life.recover(22).unwrap();
    assert_eq!(report.records_restored + 1, report2.records_restored);
    assert_eq!(report.revocations_replayed, report2.revocations_replayed);
    log(22, "second replay idempotent");

    let _ = write_lines("commit-trace", seed, &trace);
}

#[test]
fn chaos_run_is_deterministic_per_seed() {
    let seed = chaos_seed();
    assert_eq!(
        run_scenario(seed),
        run_scenario(seed),
        "identical seeds must replay identical traces"
    );
}
