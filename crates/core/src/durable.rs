//! Durability types: the security-event journal and service snapshots.
//!
//! OASIS credential records are *authoritative* state — Fig 5's cascade
//! semantics only work if the issuer's record of what was issued, what
//! it depends on, and what has been revoked survives a crash. This
//! module defines the event vocabulary journalled by
//! [`OasisService`](crate::OasisService) through an
//! [`oasis_store::DurableStore`]:
//!
//! * every state change is appended (and synced) *before* it is
//!   acknowledged to the caller — write-ahead journalling;
//! * [`OasisService::recover`](crate::OasisService::recover) rebuilds
//!   the full record/dependency/cache state by loading the latest
//!   [`ServiceSnapshot`] and replaying the journal suffix idempotently;
//! * per-topic revocation watermarks ([`Watermark`]) are journalled as
//!   [`SecurityEvent::RevocationApplied`], so a restarted service knows
//!   exactly which bus events it has applied and can ask the publisher's
//!   retained ring for the gap
//!   ([`OasisService::catch_up`](crate::OasisService::catch_up)).
//!
//! The `oasis-store` crate stays generic (bytes, frames, checksums);
//! the *meaning* of a journal record — what replaying it does to a
//! service — is defined here.

use oasis_events::{DeliveredEvent, Topic};
use oasis_json::{FromJson, Json, JsonError, ToJson};
use oasis_store::DurableStore;

use crate::cert::{CertEvent, CredRecord, Crr};
use crate::ids::{CertId, PrincipalId};
use crate::rule::Atom;

/// One security-relevant state change, journalled before it is applied.
///
/// Replay is idempotent: applying a prefix of the journal and then the
/// whole journal yields the same state as applying the whole journal
/// once, so a crash *after* the append but *before* the in-memory apply
/// is healed by recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum SecurityEvent {
    /// A certificate (RMC or appointment) was issued, together with the
    /// dependency edges and retained environmental checks its
    /// membership rule established.
    CertIssued {
        /// The issuer-side credential record.
        record: CredRecord,
        /// Supporting credentials retained by the membership rule.
        depends_on: Vec<Crr>,
        /// Ground environmental conditions retained by the rule.
        retained_checks: Vec<Atom>,
    },
    /// A foreign credential validated successfully (issuer callback
    /// answered yes) and was memoised. Replaying repopulates the
    /// validation cache so a restart does not stampede issuers.
    ValidationGranted {
        /// The validated credential's record reference.
        crr: Crr,
        /// Who presented it.
        presenter: PrincipalId,
        /// Virtual time of the successful callback.
        at: u64,
    },
    /// A certificate this service issued was revoked.
    CertRevoked {
        /// The local certificate id.
        cert_id: CertId,
        /// Why.
        reason: String,
        /// Virtual time of the revocation.
        at: u64,
    },
    /// A certificate this service issued lapsed at its deadline.
    CertExpired {
        /// The local certificate id.
        cert_id: CertId,
        /// Virtual time the expiry was recorded.
        at: u64,
    },
    /// A *foreign* revocation event from the bus was applied locally
    /// (cache evicted, dependents collapsed). Journalling the event's
    /// sequence numbers per topic gives recovery an exact watermark for
    /// gap detection.
    RevocationApplied {
        /// The bus topic the event arrived on (`cred.revoked.<issuer>`).
        topic: String,
        /// Per-topic sequence number of the applied event.
        topic_seq: u64,
        /// Bus-global sequence number of the applied event.
        global_seq: u64,
        /// The revoked credential.
        crr: Crr,
    },
    /// The issuer secret rotated to a new epoch.
    EpochChanged {
        /// The new current epoch.
        epoch: u64,
        /// Virtual time of the rotation.
        at: u64,
    },
    /// This service published a retained event on its own revocation
    /// topic, with the sequence numbers the bus assigned. Journalled
    /// (and therefore replicated) so a restarted or failed-over node
    /// can rebuild its retained ring with the *original* numbering and
    /// keep serving gap-free `catch_up` replays to subscribers — the
    /// publisher's ring is authoritative state, not a cache.
    RetainedPublished {
        /// The published event as the bus delivered it.
        entry: RetainedEntry,
    },
}

/// A retained publication in journal/snapshot form: a
/// [`DeliveredEvent`] of the service's own revocation topic, with the
/// bus-assigned sequence numbers that make replays gap-checkable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedEntry {
    /// The topic published on (`cred.revoked.<this service>`).
    pub topic: String,
    /// Per-topic sequence the bus assigned.
    pub topic_seq: u64,
    /// Bus-global sequence the bus assigned.
    pub global_seq: u64,
    /// Virtual timestamp of the publication.
    pub timestamp: u64,
    /// The event payload.
    pub event: CertEvent,
}

impl RetainedEntry {
    /// Captures a delivered bus event for journalling.
    pub fn from_delivered(event: &DeliveredEvent<CertEvent>) -> Self {
        Self {
            topic: event.topic.as_str().to_string(),
            topic_seq: event.topic_seq,
            global_seq: event.global_seq,
            timestamp: event.timestamp,
            event: event.payload.clone(),
        }
    }

    /// Rebuilds the bus-side event for
    /// [`EventBus::restore_retained`](oasis_events::EventBus::restore_retained).
    pub fn to_delivered(&self) -> DeliveredEvent<CertEvent> {
        DeliveredEvent {
            topic: Topic::new(self.topic.clone()),
            topic_seq: self.topic_seq,
            global_seq: self.global_seq,
            timestamp: self.timestamp,
            payload: self.event.clone(),
            // Trace contexts are per-request, not durable state; a
            // restored retained event replays without one.
            trace: None,
        }
    }
}

/// One credential record plus its live dependency state, as captured in
/// a [`ServiceSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// The credential record (any status — revoked history is kept).
    pub record: CredRecord,
    /// Supporting credentials retained by the membership rule.
    pub depends_on: Vec<Crr>,
    /// Retained ground environmental conditions.
    pub retained_checks: Vec<Atom>,
}

/// The last bus event applied from one revocation topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watermark {
    /// The topic (`cred.revoked.<issuer>`).
    pub topic: String,
    /// Per-topic sequence of the last applied event.
    pub topic_seq: u64,
    /// Bus-global sequence of the last applied event.
    pub global_seq: u64,
}

/// Full recoverable state of an [`OasisService`](crate::OasisService)
/// at a journal sequence number.
///
/// Policy (roles and rules) is *not* snapshotted: it is code-like
/// configuration the operator re-installs at startup, not runtime state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceSnapshot {
    /// The next certificate id to allocate.
    pub next_cert: u64,
    /// Every credential record with its dependency state.
    pub records: Vec<SnapshotRecord>,
    /// Per-topic revocation watermarks at snapshot time.
    pub watermarks: Vec<Watermark>,
    /// The service's own retained revocation ring at snapshot time, in
    /// topic-sequence order. Restoring it lets a recovered (or
    /// failed-over) publisher keep serving gap-free `catch_up` replays.
    pub retained: Vec<RetainedEntry>,
}

/// What [`OasisService::recover`](crate::OasisService::recover) did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Journal sequence the loaded snapshot covered (0 = no snapshot).
    pub snapshot_covered_seq: u64,
    /// Whether snapshot bytes were present but corrupt (recovery fell
    /// back to replaying the whole journal).
    pub snapshot_corrupt: bool,
    /// Journal events replayed after the snapshot.
    pub events_replayed: u64,
    /// Credential records restored (all statuses).
    pub records_restored: u64,
    /// Revocations/expiries applied during replay.
    pub revocations_replayed: u64,
    /// Cached foreign validations restored.
    pub validations_restored: u64,
    /// Bytes of torn journal tail healed at open.
    pub torn_tail_bytes: u64,
    /// Per-topic revocation watermarks after recovery — the starting
    /// point for [`OasisService::catch_up`](crate::OasisService::catch_up).
    pub watermarks: Vec<Watermark>,
    /// True when state was restored and the service should catch up on
    /// missed revocation events before trusting its validation cache.
    pub catchup_required: bool,
    /// Own-topic retained publications restored into the bus ring.
    pub retained_restored: u64,
}

/// What one [`OasisService::catch_up`](crate::OasisService::catch_up)
/// call did for one topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CatchUpReport {
    /// Events the publisher's retained ring replayed to us.
    pub replayed: u64,
    /// Of those, events actually applied (not already seen).
    pub applied: u64,
    /// Whether the replay was gap-free. `false` means the ring had
    /// already evicted part of the range: every cached validation for
    /// that issuer has been dropped in compensation.
    pub complete: bool,
}

/// The concrete journal + snapshot store an `OasisService` recovers from.
pub type ServiceJournal = DurableStore<SecurityEvent, ServiceSnapshot>;

impl ToJson for SecurityEvent {
    fn to_json(&self) -> Json {
        match self {
            SecurityEvent::CertIssued {
                record,
                depends_on,
                retained_checks,
            } => Json::obj(vec![(
                "CertIssued",
                Json::obj(vec![
                    ("record", record.to_json()),
                    ("depends_on", depends_on.to_json()),
                    ("retained_checks", retained_checks.to_json()),
                ]),
            )]),
            SecurityEvent::ValidationGranted { crr, presenter, at } => Json::obj(vec![(
                "ValidationGranted",
                Json::obj(vec![
                    ("crr", crr.to_json()),
                    ("presenter", presenter.to_json()),
                    ("at", at.to_json()),
                ]),
            )]),
            SecurityEvent::CertRevoked {
                cert_id,
                reason,
                at,
            } => Json::obj(vec![(
                "CertRevoked",
                Json::obj(vec![
                    ("cert_id", cert_id.to_json()),
                    ("reason", reason.to_json()),
                    ("at", at.to_json()),
                ]),
            )]),
            SecurityEvent::CertExpired { cert_id, at } => Json::obj(vec![(
                "CertExpired",
                Json::obj(vec![("cert_id", cert_id.to_json()), ("at", at.to_json())]),
            )]),
            SecurityEvent::RevocationApplied {
                topic,
                topic_seq,
                global_seq,
                crr,
            } => Json::obj(vec![(
                "RevocationApplied",
                Json::obj(vec![
                    ("topic", topic.to_json()),
                    ("topic_seq", topic_seq.to_json()),
                    ("global_seq", global_seq.to_json()),
                    ("crr", crr.to_json()),
                ]),
            )]),
            SecurityEvent::EpochChanged { epoch, at } => Json::obj(vec![(
                "EpochChanged",
                Json::obj(vec![("epoch", epoch.to_json()), ("at", at.to_json())]),
            )]),
            SecurityEvent::RetainedPublished { entry } => Json::obj(vec![(
                "RetainedPublished",
                Json::obj(vec![("entry", entry.to_json())]),
            )]),
        }
    }
}

impl FromJson for SecurityEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let pairs = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("SecurityEvent object"))?;
        let [(tag, payload)] = pairs else {
            return Err(JsonError::expected("single-variant SecurityEvent object"));
        };
        match tag.as_str() {
            "CertIssued" => Ok(SecurityEvent::CertIssued {
                record: FromJson::from_json(payload.field("record")?)?,
                depends_on: FromJson::from_json(payload.field("depends_on")?)?,
                retained_checks: FromJson::from_json(payload.field("retained_checks")?)?,
            }),
            "ValidationGranted" => Ok(SecurityEvent::ValidationGranted {
                crr: FromJson::from_json(payload.field("crr")?)?,
                presenter: FromJson::from_json(payload.field("presenter")?)?,
                at: FromJson::from_json(payload.field("at")?)?,
            }),
            "CertRevoked" => Ok(SecurityEvent::CertRevoked {
                cert_id: FromJson::from_json(payload.field("cert_id")?)?,
                reason: FromJson::from_json(payload.field("reason")?)?,
                at: FromJson::from_json(payload.field("at")?)?,
            }),
            "CertExpired" => Ok(SecurityEvent::CertExpired {
                cert_id: FromJson::from_json(payload.field("cert_id")?)?,
                at: FromJson::from_json(payload.field("at")?)?,
            }),
            "RevocationApplied" => Ok(SecurityEvent::RevocationApplied {
                topic: FromJson::from_json(payload.field("topic")?)?,
                topic_seq: FromJson::from_json(payload.field("topic_seq")?)?,
                global_seq: FromJson::from_json(payload.field("global_seq")?)?,
                crr: FromJson::from_json(payload.field("crr")?)?,
            }),
            "EpochChanged" => Ok(SecurityEvent::EpochChanged {
                epoch: FromJson::from_json(payload.field("epoch")?)?,
                at: FromJson::from_json(payload.field("at")?)?,
            }),
            "RetainedPublished" => Ok(SecurityEvent::RetainedPublished {
                entry: FromJson::from_json(payload.field("entry")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown SecurityEvent variant `{other}`"
            ))),
        }
    }
}

impl ToJson for SnapshotRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("record", self.record.to_json()),
            ("depends_on", self.depends_on.to_json()),
            ("retained_checks", self.retained_checks.to_json()),
        ])
    }
}

impl FromJson for SnapshotRecord {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SnapshotRecord {
            record: FromJson::from_json(json.field("record")?)?,
            depends_on: FromJson::from_json(json.field("depends_on")?)?,
            retained_checks: FromJson::from_json(json.field("retained_checks")?)?,
        })
    }
}

impl ToJson for RetainedEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("topic", self.topic.to_json()),
            ("topic_seq", self.topic_seq.to_json()),
            ("global_seq", self.global_seq.to_json()),
            ("timestamp", self.timestamp.to_json()),
            ("event", self.event.to_json()),
        ])
    }
}

impl FromJson for RetainedEntry {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RetainedEntry {
            topic: FromJson::from_json(json.field("topic")?)?,
            topic_seq: FromJson::from_json(json.field("topic_seq")?)?,
            global_seq: FromJson::from_json(json.field("global_seq")?)?,
            timestamp: FromJson::from_json(json.field("timestamp")?)?,
            event: FromJson::from_json(json.field("event")?)?,
        })
    }
}

impl ToJson for Watermark {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("topic", self.topic.to_json()),
            ("topic_seq", self.topic_seq.to_json()),
            ("global_seq", self.global_seq.to_json()),
        ])
    }
}

impl FromJson for Watermark {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Watermark {
            topic: FromJson::from_json(json.field("topic")?)?,
            topic_seq: FromJson::from_json(json.field("topic_seq")?)?,
            global_seq: FromJson::from_json(json.field("global_seq")?)?,
        })
    }
}

impl ToJson for ServiceSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("next_cert", self.next_cert.to_json()),
            ("records", self.records.to_json()),
            ("watermarks", self.watermarks.to_json()),
            ("retained", self.retained.to_json()),
        ])
    }
}

impl FromJson for ServiceSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ServiceSnapshot {
            next_cert: FromJson::from_json(json.field("next_cert")?)?,
            records: FromJson::from_json(json.field("records")?)?,
            watermarks: FromJson::from_json(json.field("watermarks")?)?,
            // Absent in snapshots written before retained-ring
            // replication existed: default to an empty ring.
            retained: match json.get("retained") {
                Some(value) => FromJson::from_json(value)?,
                None => Vec::new(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CredStatus, CredentialKind};
    use crate::ids::ServiceId;
    use crate::pattern::Term;
    use crate::value::Value;

    fn sample_record(id: u64, status: CredStatus) -> CredRecord {
        CredRecord {
            crr: Crr::new(ServiceId::new("svc"), CertId(id)),
            principal: PrincipalId::new("alice"),
            kind: CredentialKind::Rmc,
            name: "doctor".into(),
            args: vec![Value::id("dr-1")],
            issued_at: 3,
            expires_at: None,
            status,
        }
    }

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: &T) {
        let text = oasis_json::to_string(value);
        let back: T = oasis_json::from_str(&text).unwrap();
        assert_eq!(&back, value, "{text}");
    }

    #[test]
    fn every_event_variant_round_trips() {
        let crr = Crr::new(ServiceId::new("nhs"), CertId(9));
        for event in [
            SecurityEvent::CertIssued {
                record: sample_record(1, CredStatus::Active),
                depends_on: vec![crr.clone()],
                retained_checks: vec![Atom::EnvFact {
                    relation: "on_duty".into(),
                    args: vec![Term::val(Value::id("dr-1"))],
                    negated: false,
                }],
            },
            SecurityEvent::ValidationGranted {
                crr: crr.clone(),
                presenter: PrincipalId::new("alice"),
                at: 7,
            },
            SecurityEvent::CertRevoked {
                cert_id: CertId(1),
                reason: "logout".into(),
                at: 8,
            },
            SecurityEvent::CertExpired {
                cert_id: CertId(2),
                at: 9,
            },
            SecurityEvent::RevocationApplied {
                topic: "cred.revoked.nhs".into(),
                topic_seq: 4,
                global_seq: 17,
                crr,
            },
            SecurityEvent::EpochChanged { epoch: 2, at: 10 },
            SecurityEvent::RetainedPublished {
                entry: sample_retained(3),
            },
        ] {
            round_trip(&event);
        }
    }

    fn sample_retained(topic_seq: u64) -> RetainedEntry {
        RetainedEntry {
            topic: "cred.revoked.svc".into(),
            topic_seq,
            global_seq: topic_seq + 10,
            timestamp: 21,
            event: crate::cert::CertEvent {
                crr: Crr::new(ServiceId::new("svc"), CertId(topic_seq)),
                kind: crate::cert::CertEventKind::Revoked {
                    reason: "logout".into(),
                },
            },
        }
    }

    #[test]
    fn retained_entries_convert_to_and_from_delivered_events() {
        let entry = sample_retained(5);
        let delivered = entry.to_delivered();
        assert_eq!(delivered.topic.as_str(), "cred.revoked.svc");
        assert_eq!(RetainedEntry::from_delivered(&delivered), entry);
    }

    #[test]
    fn snapshots_without_a_retained_field_still_parse() {
        // A snapshot written before retained-ring replication existed.
        let legacy = r#"{"next_cert":1,"records":[],"watermarks":[]}"#;
        let snap: ServiceSnapshot = oasis_json::from_str(legacy).unwrap();
        assert!(snap.retained.is_empty());
        assert_eq!(snap.next_cert, 1);
    }

    #[test]
    fn snapshots_round_trip() {
        round_trip(&ServiceSnapshot::default());
        round_trip(&ServiceSnapshot {
            next_cert: 5,
            records: vec![SnapshotRecord {
                record: sample_record(
                    4,
                    CredStatus::Revoked {
                        reason: "cascade".into(),
                        at: 11,
                    },
                ),
                depends_on: vec![Crr::new(ServiceId::new("login"), CertId(2))],
                retained_checks: vec![],
            }],
            watermarks: vec![Watermark {
                topic: "cred.revoked.login".into(),
                topic_seq: 3,
                global_seq: 12,
            }],
            retained: vec![sample_retained(1), sample_retained(2)],
        });
    }

    #[test]
    fn events_survive_a_durable_store_cycle() {
        let store: ServiceJournal = ServiceJournal::in_memory();
        store
            .append(&SecurityEvent::CertRevoked {
                cert_id: CertId(1),
                reason: "test".into(),
                at: 1,
            })
            .unwrap();
        let recovered = store.load().unwrap();
        assert_eq!(recovered.events.len(), 1);
        assert!(recovered.snapshot.is_none());
    }
}
