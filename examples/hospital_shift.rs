//! Appointment in action: the A&E department scenario of Sect. 2.
//!
//! Run with `cargo run --example hospital_shift`.
//!
//! "A screening nurse in an Accident and Emergency Department may
//! allocate a patient to a particular doctor. He/she issues an
//! appointment certificate to the doctor who may then activate the role
//! `treating_doctor` for that patient." The example shows three of the
//! paper's signature behaviours:
//!
//! 1. the **appointer need not hold the privileges conferred** — the
//!    nurse can never activate `treating_doctor` herself;
//! 2. the appointment's lifetime is **independent of the nurse's
//!    session** — her logout does not strip the doctor's role;
//! 3. deactivating the doctor's duty role collapses the treating role
//!    (Fig 5 cascade), while a *re-activation* with the still-valid
//!    appointment succeeds.

use std::sync::Arc;

use oasis::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let facts = Arc::new(FactStore::new());
    facts.define("staff", 2)?; // staff(person, job)

    let ae = OasisService::new(ServiceConfig::new("a-and-e"), Arc::clone(&facts));

    ae.define_role(
        "on_duty",
        &[("who", ValueType::Id), ("job", ValueType::Id)],
        true,
    )?;
    ae.add_activation_rule(
        "on_duty",
        vec![Term::var("W"), Term::var("J")],
        vec![Atom::env_fact(
            "staff",
            vec![Term::var("W"), Term::var("J")],
        )],
        vec![0],
    )?;

    ae.define_role(
        "treating_doctor",
        &[("doctor", ValueType::Id), ("patient", ValueType::Id)],
        false,
    )?;
    // treating_doctor(D, P) ← on_duty(D, doctor), appointment allocated(D, P)
    ae.add_activation_rule(
        "treating_doctor",
        vec![Term::var("D"), Term::var("P")],
        vec![
            Atom::prereq(
                "on_duty",
                vec![Term::var("D"), Term::val(Value::id("doctor"))],
            ),
            Atom::appointment("allocated", vec![Term::var("D"), Term::var("P")]),
        ],
        vec![0], // membership retains the duty role, not the appointment
    )?;

    // Screening nurses may allocate patients.
    ae.grant_appointer("on_duty", "allocated")?;

    // --- The shift -------------------------------------------------------
    facts.insert("staff", vec![Value::id("nurse-ng"), Value::id("nurse")])?;
    facts.insert("staff", vec![Value::id("dr-okafor"), Value::id("doctor")])?;

    let nurse = PrincipalId::new("nurse-ng");
    let doctor = PrincipalId::new("dr-okafor");
    let ctx = EnvContext::new(0);

    let nurse_duty = ae.activate_role(
        &nurse,
        &RoleName::new("on_duty"),
        &[Value::id("nurse-ng"), Value::id("nurse")],
        &[],
        &ctx,
    )?;
    let doctor_duty = ae.activate_role(
        &doctor,
        &RoleName::new("on_duty"),
        &[Value::id("dr-okafor"), Value::id("doctor")],
        &[],
        &ctx,
    )?;
    println!("on duty: {nurse_duty}\non duty: {doctor_duty}");

    // The nurse allocates patient pat-3 to Dr Okafor: an appointment
    // certificate issued *to the doctor*.
    let allocation = ae.issue_appointment(
        &nurse,
        &[Credential::Rmc(nurse_duty.clone())],
        "allocated",
        vec![Value::id("dr-okafor"), Value::id("pat-3")],
        &doctor,
        None,
        None,
        &ctx,
    )?;
    println!("nurse issued {allocation}");

    // (1) The nurse cannot use it to become a treating doctor — she is not
    // on duty *as a doctor*, and the certificate is not hers anyway.
    let nurse_try = ae.activate_role(
        &nurse,
        &RoleName::new("treating_doctor"),
        &[Value::id("nurse-ng"), Value::id("pat-3")],
        &[
            Credential::Rmc(nurse_duty.clone()),
            Credential::Appointment(allocation.clone()),
        ],
        &ctx,
    );
    println!("nurse tries to treat: {}", nurse_try.unwrap_err());

    // The doctor activates the role with the appointment.
    let treating = ae.activate_role(
        &doctor,
        &RoleName::new("treating_doctor"),
        &[Value::id("dr-okafor"), Value::id("pat-3")],
        &[
            Credential::Rmc(doctor_duty.clone()),
            Credential::Appointment(allocation.clone()),
        ],
        &ctx,
    )?;
    println!("doctor treats: {treating}");

    // (2) The nurse's shift ends — her session collapses, but the
    // appointment (and the doctor's role) survive.
    ae.revoke_certificate(nurse_duty.crr.cert_id, "nurse shift ended", 10);
    assert!(ae
        .validate_own(&Credential::Appointment(allocation.clone()), &doctor, 11)
        .is_ok());
    assert!(ae
        .validate_own(&Credential::Rmc(treating.clone()), &doctor, 11)
        .is_ok());
    println!("nurse logged out; allocation and treating role still valid");

    // (3) The doctor goes off duty: the membership rule retained the duty
    // role, so treating_doctor collapses with it…
    ae.revoke_certificate(doctor_duty.crr.cert_id, "doctor off duty", 20);
    assert!(ae
        .validate_own(&Credential::Rmc(treating), &doctor, 21)
        .is_err());
    println!("doctor off duty; treating role collapsed");

    // …but coming back on duty, the long-lived appointment lets the role
    // be re-activated without bothering the nurse.
    let new_duty = ae.activate_role(
        &doctor,
        &RoleName::new("on_duty"),
        &[Value::id("dr-okafor"), Value::id("doctor")],
        &[],
        &EnvContext::new(30),
    )?;
    let resumed = ae.activate_role(
        &doctor,
        &RoleName::new("treating_doctor"),
        &[Value::id("dr-okafor"), Value::id("pat-3")],
        &[
            Credential::Rmc(new_duty),
            Credential::Appointment(allocation),
        ],
        &EnvContext::new(30),
    )?;
    println!("back on duty, treatment resumes: {resumed}");
    Ok(())
}
