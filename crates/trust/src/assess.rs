//! Trust scoring and risk decisions.
//!
//! The assessor turns a pile of audit certificates into a number a party
//! can act on. Three paper-mandated concerns shape the design:
//!
//! * **Evidence quality varies by notary** — "the domain of the auditing
//!   service for a certificate is a factor that must be taken into
//!   account" — so every certificate's weight is scaled by a caller-
//!   supplied per-CIV weight (0 for unknown/rogue domains kills collusion
//!   through rogue notaries).
//! * **Old behaviour matters less** — evidence decays exponentially with
//!   a configurable half-life, so reformed defaulters can recover and
//!   stale reputations fade.
//! * **Newcomers are uncertain, not trusted** — a Beta(1,1) prior puts a
//!   no-history party at 0.5 expectation with zero evidence weight, and
//!   [`RiskPolicy`] can demand a minimum evidence mass before proceeding
//!   unsecured.

use std::fmt;

use oasis_core::{PrincipalId, ServiceId};

use crate::cert::{AuditCertificate, Outcome};

/// A party's assessed trustworthiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustScore {
    /// Posterior expectation that the next interaction succeeds, in
    /// `(0, 1)`; 0.5 for a party with no evidence.
    pub expectation: f64,
    /// Total decayed, CIV-weighted evidence mass behind the expectation.
    pub evidence: f64,
}

impl fmt::Display for TrustScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trust {:.3} (evidence {:.2})",
            self.expectation, self.evidence
        )
    }
}

/// Aggregates audit certificates into a [`TrustScore`].
#[derive(Debug, Clone, Copy)]
pub struct TrustAssessor {
    /// Evidence half-life in virtual ticks.
    half_life: u64,
}

impl TrustAssessor {
    /// Creates an assessor with the given evidence half-life (ticks).
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is zero.
    pub fn new(half_life: u64) -> Self {
        assert!(half_life > 0, "half-life must be positive");
        Self { half_life }
    }

    fn decay(&self, age: u64) -> f64 {
        0.5f64.powf(age as f64 / self.half_life as f64)
    }

    fn score(
        &self,
        certificates: &[impl std::borrow::Borrow<AuditCertificate>],
        now: u64,
        success: impl Fn(&AuditCertificate) -> Option<bool>,
        civ_weight: impl Fn(&ServiceId) -> f64,
    ) -> TrustScore {
        // Beta(1, 1) prior.
        let mut alpha = 1.0f64;
        let mut beta = 1.0f64;
        let mut evidence = 0.0f64;
        for cert in certificates {
            let cert = cert.borrow();
            let Some(good) = success(cert) else {
                continue; // disputed or not about this party
            };
            let weight =
                civ_weight(&cert.civ).clamp(0.0, 1.0) * self.decay(now.saturating_sub(cert.at));
            if weight <= 0.0 {
                continue;
            }
            evidence += weight;
            if good {
                alpha += weight;
            } else {
                beta += weight;
            }
        }
        TrustScore {
            expectation: alpha / (alpha + beta),
            evidence,
        }
    }

    /// Scores a *client* principal from certificates naming them:
    /// `Fulfilled` counts for them, `ClientDefaulted` against,
    /// `ProviderDefaulted` and `Disputed` say nothing about the client.
    pub fn score_client(
        &self,
        certificates: &[impl std::borrow::Borrow<AuditCertificate>],
        client: &PrincipalId,
        now: u64,
        civ_weight: impl Fn(&ServiceId) -> f64,
    ) -> TrustScore {
        self.score(
            certificates,
            now,
            |c| {
                if c.client != *client {
                    return None;
                }
                match c.outcome {
                    Outcome::Fulfilled => Some(true),
                    Outcome::ClientDefaulted => Some(false),
                    Outcome::ProviderDefaulted | Outcome::Disputed => None,
                }
            },
            civ_weight,
        )
    }

    /// Scores a *provider* service symmetrically.
    pub fn score_provider(
        &self,
        certificates: &[impl std::borrow::Borrow<AuditCertificate>],
        provider: &ServiceId,
        now: u64,
        civ_weight: impl Fn(&ServiceId) -> f64,
    ) -> TrustScore {
        self.score(
            certificates,
            now,
            |c| {
                if c.provider != *provider {
                    return None;
                }
                match c.outcome {
                    Outcome::Fulfilled => Some(true),
                    Outcome::ProviderDefaulted => Some(false),
                    Outcome::ClientDefaulted | Outcome::Disputed => None,
                }
            },
            civ_weight,
        )
    }
}

/// What a party decides after assessing the other side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Interact normally.
    Proceed,
    /// Interact, but demand security (prepayment, bond, escrow) — the
    /// "calculated risk" middle ground.
    ProceedWithBond,
    /// Do not interact.
    Refuse,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Proceed => "proceed",
            Decision::ProceedWithBond => "proceed-with-bond",
            Decision::Refuse => "refuse",
        };
        f.write_str(s)
    }
}

/// Thresholds mapping a [`TrustScore`] to a [`Decision`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskPolicy {
    /// Below this expectation the party is refused outright.
    pub refuse_below: f64,
    /// At or above this expectation *and* with enough evidence, proceed
    /// unsecured.
    pub proceed_at: f64,
    /// Minimum evidence mass for an unsecured proceed; parties with a
    /// high score but thin histories still post a bond.
    pub min_evidence: f64,
}

impl Default for RiskPolicy {
    fn default() -> Self {
        Self {
            refuse_below: 0.35,
            proceed_at: 0.7,
            min_evidence: 3.0,
        }
    }
}

impl RiskPolicy {
    /// Applies the policy.
    pub fn decide(&self, score: TrustScore) -> Decision {
        if score.expectation < self.refuse_below {
            Decision::Refuse
        } else if score.expectation >= self.proceed_at && score.evidence >= self.min_evidence {
            Decision::Proceed
        } else {
            Decision::ProceedWithBond
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CivNotary;

    fn assessor() -> TrustAssessor {
        TrustAssessor::new(1_000)
    }

    fn full_weight(_: &ServiceId) -> f64 {
        1.0
    }

    fn build(outcomes: &[(Outcome, u64)]) -> (Vec<AuditCertificate>, PrincipalId, ServiceId) {
        let notary = CivNotary::new("civ");
        let alice = PrincipalId::new("alice");
        let library = ServiceId::new("library");
        let certs = outcomes
            .iter()
            .map(|(o, at)| notary.notarise(&alice, &library, "c", *o, *at))
            .collect();
        (certs, alice, library)
    }

    #[test]
    fn newcomer_scores_half_with_no_evidence() {
        let (certs, alice, _) = build(&[]);
        let score = assessor().score_client(&certs, &alice, 0, full_weight);
        assert_eq!(score.expectation, 0.5);
        assert_eq!(score.evidence, 0.0);
    }

    #[test]
    fn successes_raise_and_defaults_lower() {
        let (good, alice, _) = build(&[(Outcome::Fulfilled, 0), (Outcome::Fulfilled, 1)]);
        let up = assessor().score_client(&good, &alice, 2, full_weight);
        assert!(up.expectation > 0.6);

        let (bad, alice, _) =
            build(&[(Outcome::ClientDefaulted, 0), (Outcome::ClientDefaulted, 1)]);
        let down = assessor().score_client(&bad, &alice, 2, full_weight);
        assert!(down.expectation < 0.4);
    }

    #[test]
    fn provider_defaults_do_not_blame_the_client() {
        let (certs, alice, library) = build(&[(Outcome::ProviderDefaulted, 0)]);
        let client_score = assessor().score_client(&certs, &alice, 1, full_weight);
        assert_eq!(client_score.expectation, 0.5);
        let provider_score = assessor().score_provider(&certs, &library, 1, full_weight);
        assert!(provider_score.expectation < 0.5);
    }

    #[test]
    fn old_evidence_decays() {
        let a = assessor();
        let (certs, alice, _) = build(&[(Outcome::ClientDefaulted, 0)]);
        let fresh = a.score_client(&certs, &alice, 0, full_weight);
        let stale = a.score_client(&certs, &alice, 10_000, full_weight);
        assert!(stale.expectation > fresh.expectation);
        assert!(stale.evidence < 0.01);
    }

    #[test]
    fn rogue_civ_evidence_is_discounted() {
        let rogue = CivNotary::new("rogue.civ");
        let mallory = PrincipalId::new("mallory");
        let shop = ServiceId::new("shop");
        // Mallory's accomplice notarises 50 fake successes.
        let fakes: Vec<AuditCertificate> = (0..50)
            .map(|i| rogue.notarise(&mallory, &shop, "fake", Outcome::Fulfilled, i))
            .collect();
        let naive = assessor().score_client(&fakes, &mallory, 50, full_weight);
        assert!(naive.expectation > 0.9, "unweighted assessment is fooled");

        let wary = assessor().score_client(&fakes, &mallory, 50, |civ| {
            if civ.as_str() == "rogue.civ" {
                0.0
            } else {
                1.0
            }
        });
        assert_eq!(wary.expectation, 0.5, "weighting kills the fake history");
        assert_eq!(wary.evidence, 0.0);
    }

    #[test]
    fn risk_policy_thresholds() {
        let policy = RiskPolicy::default();
        assert_eq!(
            policy.decide(TrustScore {
                expectation: 0.2,
                evidence: 10.0
            }),
            Decision::Refuse
        );
        assert_eq!(
            policy.decide(TrustScore {
                expectation: 0.9,
                evidence: 10.0
            }),
            Decision::Proceed
        );
        // High score, thin history: bond.
        assert_eq!(
            policy.decide(TrustScore {
                expectation: 0.9,
                evidence: 1.0
            }),
            Decision::ProceedWithBond
        );
        // Newcomer: bond.
        assert_eq!(
            policy.decide(TrustScore {
                expectation: 0.5,
                evidence: 0.0
            }),
            Decision::ProceedWithBond
        );
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn zero_half_life_rejected() {
        TrustAssessor::new(0);
    }
}
