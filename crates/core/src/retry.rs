//! Capped exponential backoff with deterministic jitter.
//!
//! The shared retry schedule for everything in the system that talks to a
//! possibly-dead peer: the [`ResilientValidator`](crate::ResilientValidator)
//! retrying issuer callbacks, and `oasis-wire`'s `RemoteValidator`
//! re-dialling a restarted issuer. One implementation so every layer backs
//! off the same way and tests can reason about the schedule.
//!
//! Jitter is *deterministic*: the spread comes from a seeded xorshift
//! stream, so two [`Backoff`]s built with the same seed produce the same
//! delays. That keeps the chaos harness and the wire tests exactly
//! repeatable while still decorrelating real deployments (seed per
//! connection).

use std::time::Duration;

/// The retry schedule: how many attempts, how delays grow, and the caps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total tries, including the first (so `max_attempts = 1` means no
    /// retries at all).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling any single delay is clamped to.
    pub max_delay: Duration,
    /// Total-deadline budget: once the accumulated delay would exceed
    /// this, retrying stops even if attempts remain.
    pub total_delay_cap: Duration,
    /// Fraction of each delay randomised, in `[0, 1]`. A jitter of 0.5
    /// spreads each delay uniformly over `[0.75d, 1.25d]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            total_delay_cap: Duration::from_secs(1),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no delays).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A zero-delay policy for virtual-time tests: `max_attempts` tries
    /// with no real sleeping between them.
    pub fn immediate(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            total_delay_cap: Duration::ZERO,
            jitter: 0.0,
        }
    }
}

/// One retry sequence: yields the delay to sleep before each retry, or
/// `None` when the policy is exhausted.
///
/// # Example
///
/// ```
/// use oasis_core::retry::{Backoff, RetryPolicy};
/// use std::time::Duration;
///
/// let policy = RetryPolicy {
///     max_attempts: 3,
///     base_delay: Duration::from_millis(10),
///     max_delay: Duration::from_millis(40),
///     total_delay_cap: Duration::from_secs(1),
///     jitter: 0.0,
/// };
/// let mut backoff = Backoff::new(policy);
/// assert_eq!(backoff.next_delay(), Some(Duration::from_millis(10)));
/// assert_eq!(backoff.next_delay(), Some(Duration::from_millis(20)));
/// assert_eq!(backoff.next_delay(), None, "3 attempts = 2 retries");
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    retries_done: u32,
    accumulated: Duration,
    rng: u64,
}

impl Backoff {
    /// Starts a sequence with a fixed default seed (fully deterministic).
    pub fn new(policy: RetryPolicy) -> Self {
        Self::with_seed(policy, 0x9E37_79B9_7F4A_7C15)
    }

    /// Starts a sequence whose jitter stream is derived from `seed`.
    pub fn with_seed(policy: RetryPolicy, seed: u64) -> Self {
        Self {
            policy,
            retries_done: 0,
            accumulated: Duration::ZERO,
            // xorshift must not start at 0.
            rng: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// The delay to sleep before the next retry, or `None` when attempts
    /// or the total-delay budget are exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.retries_done + 1 >= self.policy.max_attempts {
            return None;
        }
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << self.retries_done.min(16));
        let capped = exp.min(self.policy.max_delay);
        let jittered = if self.policy.jitter > 0.0 && capped > Duration::ZERO {
            let j = self.policy.jitter.clamp(0.0, 1.0);
            // Uniform in [1 - j/2, 1 + j/2].
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            capped.mul_f64(1.0 - j / 2.0 + j * unit)
        } else {
            capped
        };
        if self.retries_done > 0 && self.accumulated + jittered > self.policy.total_delay_cap {
            return None;
        }
        self.retries_done += 1;
        self.accumulated += jittered;
        Some(jittered)
    }

    /// Retries consumed so far.
    pub fn retries(&self) -> u32 {
        self.retries_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            total_delay_cap: Duration::from_secs(10),
            jitter: 0.0,
        }
    }

    #[test]
    fn doubles_and_caps() {
        let mut b = Backoff::new(no_jitter(6));
        let delays: Vec<u64> = std::iter::from_fn(|| b.next_delay())
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 80], "doubling, capped at 80");
    }

    #[test]
    fn single_attempt_never_delays() {
        let mut b = Backoff::new(RetryPolicy::none());
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let policy = RetryPolicy {
            jitter: 0.5,
            ..no_jitter(50)
        };
        let mut a = Backoff::with_seed(policy, 7);
        let mut b = Backoff::with_seed(policy, 7);
        for _ in 0..40 {
            let da = a.next_delay();
            assert_eq!(da, b.next_delay(), "same seed, same schedule");
            if let Some(d) = da {
                // First delay is 10ms nominal; all are within ±25%.
                assert!(d >= Duration::from_micros(7_500));
                assert!(d <= Duration::from_millis(100));
            }
        }
    }

    #[test]
    fn total_delay_cap_truncates() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(10),
            total_delay_cap: Duration::from_millis(25),
            jitter: 0.0,
        };
        let mut b = Backoff::new(policy);
        let mut count = 0;
        while b.next_delay().is_some() {
            count += 1;
        }
        assert_eq!(count, 2, "third 10ms delay would exceed the 25ms budget");
    }

    #[test]
    fn immediate_policy_yields_zero_delays() {
        let mut b = Backoff::new(RetryPolicy::immediate(3));
        assert_eq!(b.next_delay(), Some(Duration::ZERO));
        assert_eq!(b.next_delay(), Some(Duration::ZERO));
        assert_eq!(b.next_delay(), None);
    }
}
