//! The append-only audit log kept by every OASIS service.
//!
//! The paper requires audit at several points: cross-domain invocations
//! record the originating principal ("the identity of the original
//! requester can be recorded for audit", Sect. 3), and Sect. 6 builds its
//! trust proposal on *audit certificates* derived from interaction
//! records. [`AuditLog`] is the service-local base: an ordered, queryable
//! record of every security-relevant decision.

use std::fmt;

use crate::cert::Crr;
use crate::ids::{PrincipalId, RoleName};
use crate::value::Value;
use parking_lot::Mutex;

/// What a single audit entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditKind {
    /// A role was activated and an RMC issued.
    RoleActivated {
        /// Who activated.
        principal: PrincipalId,
        /// The role.
        role: RoleName,
        /// The role parameters.
        args: Vec<Value>,
        /// The issued certificate.
        crr: Crr,
    },
    /// A role activation was refused.
    ActivationDenied {
        /// Who asked.
        principal: PrincipalId,
        /// The role.
        role: RoleName,
        /// Why.
        reason: String,
    },
    /// A method invocation was authorised.
    Invoked {
        /// Who invoked.
        principal: PrincipalId,
        /// The method.
        method: String,
        /// Invocation arguments.
        args: Vec<Value>,
        /// Credentials that authorised the call (for cross-domain audit).
        credentials: Vec<Crr>,
    },
    /// A method invocation was refused.
    InvocationDenied {
        /// Who asked.
        principal: PrincipalId,
        /// The method.
        method: String,
        /// Why.
        reason: String,
    },
    /// A presented credential failed validation.
    CredentialRejected {
        /// Presenting principal.
        principal: PrincipalId,
        /// The credential.
        crr: Crr,
        /// Why.
        reason: String,
    },
    /// An appointment certificate was issued.
    AppointmentIssued {
        /// The appointer (active in an appointer role).
        appointer: PrincipalId,
        /// The appointee the certificate names.
        appointee: PrincipalId,
        /// The appointment kind.
        name: String,
        /// The issued certificate.
        crr: Crr,
    },
    /// A certificate was revoked.
    CertRevoked {
        /// The certificate.
        crr: Crr,
        /// Why.
        reason: String,
    },
    /// A certificate lapsed at its expiry time.
    CertExpired {
        /// The certificate.
        crr: Crr,
    },
    /// The service rebuilt its state from the durability journal.
    Recovered {
        /// Journal events replayed after the snapshot.
        events_replayed: u64,
        /// Credential records restored (all statuses).
        records_restored: u64,
    },
    /// A transport-level fault the service survived (e.g. a transient
    /// `accept()` failure retried with backoff, or a fatal one that shut
    /// the listener down). Recorded so operators can distinguish "quiet
    /// because idle" from "quiet because the front door is failing".
    TransportFault {
        /// The failing operation (e.g. `"accept"`).
        op: String,
        /// The underlying error, stringified.
        detail: String,
    },
}

impl AuditKind {
    /// A short machine-friendly tag for the entry kind.
    pub fn tag(&self) -> &'static str {
        match self {
            AuditKind::RoleActivated { .. } => "role_activated",
            AuditKind::ActivationDenied { .. } => "activation_denied",
            AuditKind::Invoked { .. } => "invoked",
            AuditKind::InvocationDenied { .. } => "invocation_denied",
            AuditKind::CredentialRejected { .. } => "credential_rejected",
            AuditKind::AppointmentIssued { .. } => "appointment_issued",
            AuditKind::CertRevoked { .. } => "cert_revoked",
            AuditKind::CertExpired { .. } => "cert_expired",
            AuditKind::Recovered { .. } => "recovered",
            AuditKind::TransportFault { .. } => "transport_fault",
        }
    }
}

/// One audit entry: what happened, when, in sequence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Monotonic sequence number within this log.
    pub seq: u64,
    /// Virtual time the entry was recorded.
    pub at: u64,
    /// The event.
    pub kind: AuditKind,
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} t{} {}", self.seq, self.at, self.kind.tag())
    }
}

/// An append-only, thread-safe audit log.
///
/// # Example
///
/// ```
/// use oasis_core::{AuditKind, AuditLog, Crr, CertId, ServiceId};
///
/// let log = AuditLog::new();
/// log.record(5, AuditKind::CertRevoked {
///     crr: Crr::new(ServiceId::new("svc"), CertId(1)),
///     reason: "shift ended".into(),
/// });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.entries()[0].at, 5);
/// ```
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Mutex<Vec<AuditEntry>>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry at virtual time `at`, returning its sequence
    /// number.
    pub fn record(&self, at: u64, kind: AuditKind) -> u64 {
        let mut entries = self.entries.lock();
        let seq = entries.len() as u64;
        entries.push(AuditEntry { seq, at, kind });
        seq
    }

    /// A snapshot of all entries in order.
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.lock().clone()
    }

    /// Entries satisfying a predicate.
    pub fn entries_where(&self, f: impl Fn(&AuditEntry) -> bool) -> Vec<AuditEntry> {
        self.entries
            .lock()
            .iter()
            .filter(|e| f(e))
            .cloned()
            .collect()
    }

    /// Entries with the given kind tag (see [`AuditKind::tag`]).
    pub fn entries_tagged(&self, tag: &str) -> Vec<AuditEntry> {
        self.entries_where(|e| e.kind.tag() == tag)
    }

    /// Entries with sequence number `from` or later — the incremental
    /// read used by trace recorders that drain the log once per tick
    /// without re-scanning history.
    pub fn entries_since(&self, from: u64) -> Vec<AuditEntry> {
        let entries = self.entries.lock();
        let start = (from as usize).min(entries.len());
        entries[start..].to_vec()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CertId, ServiceId};

    fn crr(n: u64) -> Crr {
        Crr::new(ServiceId::new("svc"), CertId(n))
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let log = AuditLog::new();
        for i in 0..5 {
            let seq = log.record(i * 10, AuditKind::CertExpired { crr: crr(i) });
            assert_eq!(seq, i);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn filtering_by_tag() {
        let log = AuditLog::new();
        log.record(0, AuditKind::CertExpired { crr: crr(1) });
        log.record(
            1,
            AuditKind::CertRevoked {
                crr: crr(2),
                reason: "r".into(),
            },
        );
        log.record(2, AuditKind::CertExpired { crr: crr(3) });
        assert_eq!(log.entries_tagged("cert_expired").len(), 2);
        assert_eq!(log.entries_tagged("cert_revoked").len(), 1);
        assert_eq!(log.entries_tagged("invoked").len(), 0);
    }

    #[test]
    fn entries_where_predicate() {
        let log = AuditLog::new();
        log.record(10, AuditKind::CertExpired { crr: crr(1) });
        log.record(20, AuditKind::CertExpired { crr: crr(2) });
        assert_eq!(log.entries_where(|e| e.at >= 15).len(), 1);
    }

    #[test]
    fn entries_since_drains_incrementally() {
        let log = AuditLog::new();
        for i in 0..4 {
            log.record(i, AuditKind::CertExpired { crr: crr(i) });
        }
        assert_eq!(log.entries_since(0).len(), 4);
        let tail = log.entries_since(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 2);
        assert!(log.entries_since(4).is_empty());
        assert!(
            log.entries_since(99).is_empty(),
            "past-end is empty, not a panic"
        );
    }

    #[test]
    fn empty_and_len() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.record(0, AuditKind::CertExpired { crr: crr(1) });
        assert!(!log.is_empty());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn display_form() {
        let log = AuditLog::new();
        log.record(7, AuditKind::CertExpired { crr: crr(1) });
        assert_eq!(log.entries()[0].to_string(), "#0 t7 cert_expired");
    }
}
