//! Wire-layer errors.

/// Errors raised by the TCP transport.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),

    /// A frame exceeded the protocol's size limit.
    FrameTooLarge {
        /// Declared frame size.
        got: usize,
        /// The protocol limit.
        limit: usize,
    },

    /// A frame's payload was not valid JSON for the expected type.
    Malformed(oasis_json::JsonError),

    /// The peer closed the connection mid-exchange.
    Closed,

    /// A connect, read, or write exceeded its configured deadline (see
    /// [`WireTimeouts`](crate::WireTimeouts)). Transient: the peer may be
    /// slow, partitioned, or restarting — retry with backoff.
    TimedOut {
        /// The operation that timed out (`"connect"`, `"read"`, `"write"`).
        op: &'static str,
    },

    /// The server shed the request before doing any work: its admission
    /// queue for the request's priority lane was full. Transient — the
    /// server is alive; retry after the hinted delay.
    Overloaded {
        /// Server-estimated queue-drain time in milliseconds.
        retry_after_ms: u64,
    },

    /// The request's propagated deadline (`deadline_ms` in the wire
    /// envelope) passed before the server started executing it; the
    /// server dropped it without doing work.
    DeadlineExceeded,

    /// The addressed node is a replica follower (or mid-election): the
    /// write must go to the leader. Transient — re-dial the hinted
    /// address when present, or retry candidates with backoff while the
    /// election settles (see [`FailoverClient`](crate::FailoverClient)).
    NotLeader {
        /// The current leader's client address, when the follower knows it.
        hint: Option<String>,
    },

    /// The server answered with an application error.
    Remote(String),

    /// The server answered with the wrong response variant.
    UnexpectedResponse(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::FrameTooLarge { got, limit } => {
                write!(f, "frame of {got} bytes exceeds limit of {limit}")
            }
            Self::Malformed(e) => write!(f, "malformed frame: {e}"),
            Self::Closed => write!(f, "connection closed by peer"),
            Self::TimedOut { op } => write!(f, "{op} timed out"),
            Self::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded: retry after {retry_after_ms}ms")
            }
            Self::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            Self::NotLeader { hint } => match hint {
                Some(hint) => write!(f, "not the leader (leader at {hint})"),
                None => write!(f, "not the leader (no leader known)"),
            },
            Self::Remote(message) => write!(f, "remote error: {message}"),
            Self::UnexpectedResponse(got) => {
                write!(f, "protocol violation: unexpected response {got}")
            }
        }
    }
}

impl WireError {
    /// Whether this error is a deadline expiry (directly, or an I/O error
    /// of a timeout kind that was not yet normalised).
    pub fn is_timeout(&self) -> bool {
        match self {
            Self::TimedOut { .. } => true,
            Self::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    /// Normalises timeout-kind I/O errors into [`WireError::TimedOut`]
    /// for operation `op`; leaves every other error untouched. Blocking
    /// sockets report expired read/write deadlines as
    /// `WouldBlock`/`TimedOut` I/O errors depending on platform.
    pub(crate) fn normalise_timeout(self, op: &'static str) -> Self {
        if self.is_timeout() {
            Self::TimedOut { op }
        } else {
            self
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<oasis_json::JsonError> for WireError {
    fn from(e: oasis_json::JsonError) -> Self {
        Self::Malformed(e)
    }
}
