//! Chaos: a quorum-replicated CIV losing its leader mid-revocation-storm.
//!
//! A three-node replication group hosts a durable login issuer whose
//! journal and snapshot regions write through the quorum path
//! (`ReplicatedStore`). A scripted [`Fault::KillLeader`] decapitates the
//! group in the middle of a revocation storm; the survivors elect a new
//! leader, a fresh service instance is promoted over its replicated
//! regions, and the storm continues. The invariants:
//!
//! 1. **No acknowledged event is lost** — every revocation the old
//!    leader quorum-acked is present (status `Revoked`) on the promoted
//!    node after recovery, with its retained ring entry intact.
//! 2. **Catch-up stays gap-free across the failover** — the promoted
//!    node's retained ring replays `complete` with contiguous topic
//!    sequence numbers, and post-failover revocations continue the
//!    sequence with no gap and no reuse.
//! 3. **No stale certificate is accepted** — validating a certificate
//!    revoked *before* the kill against the promoted node denies.
//! 4. **The dead node rejoins as a follower** — revived, it is
//!    state-transferred to the new leader's log and serves no writes.
//!
//! The run is deterministic per seed (`CHAOS_SEED`, default 42; the seed
//! varies where in the storm the kill lands) and writes a JSONL trace to
//! `target/chaos/replication-<seed>.jsonl` for post-mortem inspection.
//!
//! Three further scenarios cover the partition-hardening layer: a
//! flapping leader↔follower link healed purely by entry-level log
//! repair (zero full-state syncs), a chunked full sync interrupted
//! mid-transfer that must resume rather than restart, and the
//! pre-vote before/after pair (an isolated node deposes a healthy
//! leader without pre-vote and cannot with it).

use std::sync::Arc;

use oasis::sim::{chaos_seed, write_lines, Fault, FaultPlan, Latency, LinkConfig, SimNet};
use oasis::store::{LocalMesh, ReplicaConfig, ReplicaNode, StorageBackend};
use oasis_core::cert::Rmc;
use oasis_core::{
    Atom, CredStatus, Credential, CredentialValidator, EnvContext, LocalRegistry, OasisService,
    PrincipalId, RoleName, ServiceConfig, ServiceJournal, Term, Value, ValueType,
};
use oasis_crypto::{IssuerSecret, SecretKey};
use oasis_facts::FactStore;

fn alice() -> PrincipalId {
    PrincipalId::new("alice")
}

/// Builds the three-node mesh; each node's regions default to fresh
/// in-memory backends, which is exactly what a diskless replica is.
fn cluster(n: usize) -> (LocalMesh, Vec<Arc<ReplicaNode>>) {
    cluster_with(n, |_| {})
}

/// [`cluster`] with a per-node config tweak (tight retained tails, tiny
/// sync chunks, pre-vote off) for the partition-hardening scenarios.
fn cluster_with(
    n: usize,
    tweak: impl Fn(&mut ReplicaConfig),
) -> (LocalMesh, Vec<Arc<ReplicaNode>>) {
    let mesh = LocalMesh::new();
    let ids: Vec<String> = (0..n).map(|i| format!("civ{i}")).collect();
    let nodes: Vec<Arc<ReplicaNode>> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let peers = ids.iter().filter(|p| *p != id).cloned().collect();
            let mut cfg = ReplicaConfig::new(id.clone(), peers, format!("127.0.0.1:{}", 9700 + i));
            tweak(&mut cfg);
            let node = Arc::new(ReplicaNode::new(cfg, Arc::new(mesh.clone())));
            mesh.register(Arc::clone(&node));
            node
        })
        .collect();
    (mesh, nodes)
}

/// Enacts a scripted [`Fault::FlappyPeerLink`] against the live mesh —
/// the driver half of the plan's driver-resolved link flaps.
fn apply_link_flaps(mesh: &LocalMesh, plan: &mut FaultPlan, at: u64) {
    let mut dummy_net = SimNet::new(LinkConfig::clean(Latency::Constant(1)));
    plan.apply_due(at, &mut dummy_net);
    for (a, b, window) in plan.take_link_flaps() {
        if window == 0 {
            mesh.clear_flappy(&a, &b);
        } else {
            mesh.set_flappy(&a, &b, window);
        }
    }
}

/// Steps virtual time until exactly one live leader exists, returning
/// it and the number of milliseconds the election took.
fn settle(mesh: &LocalMesh) -> (Arc<ReplicaNode>, u64) {
    let from = mesh.now();
    for _ in 0..400 {
        mesh.step(25);
        if let Some(leader) = mesh.live_leader() {
            return (leader, mesh.now() - from);
        }
    }
    panic!("no leader elected after 400 steps");
}

/// A durable login issuer whose journal and snapshot are `node`'s
/// replicated regions: every journalled security event is a quorum
/// write. Policy is configuration, not state — reinstalled on every
/// (re)build, as `recover` requires.
fn durable_login(node: &Arc<ReplicaNode>, facts: &Arc<FactStore<Value>>) -> Arc<OasisService> {
    let journal: Arc<dyn StorageBackend> = Arc::new(node.replicated("journal"));
    let snapshot: Arc<dyn StorageBackend> = Arc::new(node.replicated("snapshot"));
    let store = ServiceJournal::open(journal, snapshot).expect("replicated journal opens");
    let svc = OasisService::new(
        ServiceConfig::new("login")
            .with_journal(store)
            .with_revocation_retention(64)
            // Secret material is never journalled: every replica of the
            // CIV must be provisioned with the shared issuing key, or a
            // promoted instance could not honour outstanding RMCs.
            .with_secret(IssuerSecret::from_key(SecretKey::from_bytes([7; 32]))),
        Arc::clone(facts),
    );
    svc.define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();
    svc
}

/// A durable relying service (ordinary single-node journal — it is the
/// *issuer's* cluster that fails over) consuming the issuer's
/// revocation topic. Its per-topic watermark is what must stay
/// gap-free across the issuer's failover.
fn durable_hospital(
    journal: &oasis::store::MemBackend,
    snapshot: &oasis::store::MemBackend,
    facts: &Arc<FactStore<Value>>,
) -> Arc<OasisService> {
    let store = ServiceJournal::open(Arc::new(journal.clone()), Arc::new(snapshot.clone()))
        .expect("hospital journal opens");
    OasisService::new(
        ServiceConfig::new("hospital").with_journal(store),
        Arc::clone(facts),
    )
}

fn login_in(login: &OasisService, now: u64) -> Rmc {
    login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(now),
        )
        .unwrap()
}

/// Runs the full failover scenario for one seed and returns the trace.
fn run_scenario(seed: u64) -> Vec<String> {
    let mut trace: Vec<String> = Vec::new();
    let mut log = |tick: u64, event: &str| {
        trace.push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));
    };

    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();

    let (mesh, nodes) = cluster(3);
    let group: Vec<String> = nodes.iter().map(|n| n.id().to_string()).collect();
    let (leader, elect_ms) = settle(&mesh);
    log(
        mesh.now(),
        &format!("initial leader {} in {elect_ms}ms", leader.id()),
    );

    let login = durable_login(&leader, &facts);
    let topic = "cred.revoked.login";

    // Eight sessions to storm through; the seed decides how deep into
    // the storm the kill lands (2..=4 acked revocations before it).
    let certs: Vec<Rmc> = (0..8).map(|i| login_in(&login, i)).collect();
    let k_pre = 2 + (seed % 3) as usize;
    log(
        mesh.now(),
        &format!("issued 8 certs, kill after {k_pre} revocations"),
    );

    // The kill is scripted, not hand-picked: the plan cannot name the
    // victim (an earlier fault could have moved leadership), so the
    // driver resolves the live leader when the fault fires.
    let mut dummy_net = SimNet::new(LinkConfig::clean(Latency::Constant(1)));
    let mut plan = FaultPlan::new();
    plan.kill_leader_at(mesh.now() + 1, group.clone());

    // Phase 1: the acknowledged prefix of the storm. The cluster is
    // healthy, so every one of these is quorum-committed.
    let mut acked: Vec<(u64, oasis_core::CertId)> = Vec::new();
    for (i, rmc) in certs.iter().take(k_pre).enumerate() {
        mesh.step(10);
        assert!(
            login.revoke_certificate(rmc.crr.cert_id, "storm", mesh.now()),
            "healthy revoke must land"
        );
        acked.push((i as u64 + 1, rmc.crr.cert_id));
    }
    let committed_before = leader.stats().committed;
    assert!(
        committed_before >= k_pre as u64,
        "storm prefix quorum-acked"
    );
    log(mesh.now(), &format!("{k_pre} revocations quorum-acked"));

    // A durable relying service consumes the acked prefix over a
    // resync (the wire path's `catch_up` reduces to exactly this) and
    // journals its per-topic watermark as it applies each event.
    let hospital_journal = oasis::store::MemBackend::new();
    let hospital_snapshot = oasis::store::MemBackend::new();
    let hospital = durable_hospital(&hospital_journal, &hospital_snapshot, &facts);
    {
        let (events, complete) = login.replay_retained(topic, 0);
        assert!(complete, "healthy ring serves a gap-free prefix");
        hospital.catch_up_with(topic, &events, complete, mesh.now());
    }
    assert_eq!(hospital.watermark_for(topic), k_pre as u64);

    // Mid-storm kill: enact due faults, resolving KillLeader against
    // live cluster state.
    let killed_at = mesh.now() + 1;
    for fault in plan.apply_due(killed_at, &mut dummy_net) {
        log(killed_at, &format!("fault {fault:?}"));
        if let Fault::KillLeader { .. } = fault {
            for group in plan.take_leader_kills() {
                let victim = mesh
                    .live_leader()
                    .filter(|l| group.iter().any(|id| id == l.id()))
                    .expect("a live leader to kill");
                mesh.kill(victim.id());
                log(killed_at, &format!("killed leader {}", victim.id()));
            }
        }
    }
    assert!(mesh.is_down(leader.id()), "old leader is dead");
    drop(login); // the crashed process takes its in-memory state with it

    // Phase 2: failover. The survivors elect; the new leader's regions
    // already hold every acked byte (commit quorum ∩ vote quorum ≠ ∅).
    let (new_leader, failover_ms) = settle(&mesh);
    assert_ne!(new_leader.id(), leader.id());
    log(
        mesh.now(),
        &format!("promoted {} after {failover_ms}ms", new_leader.id()),
    );

    // Promote a fresh service instance over the replicated regions.
    let promoted = durable_login(&new_leader, &facts);
    let report = promoted.recover(mesh.now()).unwrap();
    log(
        mesh.now(),
        &format!(
            "recovered: {} events, {} retained entries",
            report.events_replayed, report.retained_restored
        ),
    );

    // Invariant 1: no acknowledged revocation is lost.
    assert_eq!(report.retained_restored, k_pre as u64);
    for (_, cert_id) in &acked {
        assert!(
            matches!(
                promoted.record(*cert_id).expect("record survives").status,
                CredStatus::Revoked { .. }
            ),
            "acked revocation of {cert_id} must survive the leader loss"
        );
    }

    // Invariant 2 (first half): the restored ring replays gap-free.
    let (events, complete) = promoted.replay_retained(topic, 0);
    assert!(complete, "restored ring must be gap-free");
    let seqs: Vec<u64> = events.iter().map(|e| e.topic_seq).collect();
    assert_eq!(seqs, (1..=k_pre as u64).collect::<Vec<_>>());
    log(mesh.now(), "retained ring gap-free after failover");

    // Invariant 3: a certificate revoked before the kill is stale
    // authority; the promoted issuer must refuse it.
    let registry = LocalRegistry::new();
    registry.register(&promoted);
    assert!(
        registry
            .validate(&Credential::Rmc(certs[0].clone()), &alice(), mesh.now())
            .is_err(),
        "stale (revoked-before-kill) cert must not validate"
    );
    // …while a never-revoked one still does.
    assert!(
        registry
            .validate(&Credential::Rmc(certs[7].clone()), &alice(), mesh.now())
            .is_ok(),
        "unrevoked cert still validates on the promoted node"
    );
    log(mesh.now(), "stale cert refused, live cert honoured");

    // Phase 3: the storm finishes on the promoted leader. Sequences
    // continue exactly where the acked prefix stopped (invariant 2,
    // second half) and every write is again quorum-acked.
    for rmc in certs.iter().skip(k_pre).take(4) {
        mesh.step(10);
        assert!(
            promoted.revoke_certificate(rmc.crr.cert_id, "storm resumes", mesh.now()),
            "post-failover revoke must land"
        );
    }
    let (events, complete) = promoted.replay_retained(topic, 0);
    assert!(complete);
    let seqs: Vec<u64> = events.iter().map(|e| e.topic_seq).collect();
    assert_eq!(
        seqs,
        (1..=(k_pre as u64 + 4)).collect::<Vec<_>>(),
        "post-failover sequence continues with no gap and no reuse"
    );
    assert!(
        new_leader.stats().committed >= 4,
        "resumed storm quorum-acked"
    );
    log(mesh.now(), "storm resumed gap-free on promoted leader");

    // The relying service resumes catch-up against the *promoted*
    // node from its persisted watermark: the resync must be complete
    // (no gap between the acked prefix and the resumed storm) and
    // advance the watermark over exactly the post-failover events.
    let after = hospital.watermark_for(topic);
    assert_eq!(
        after, k_pre as u64,
        "watermark persisted through the outage"
    );
    let (events, complete) = promoted.replay_retained(topic, after);
    let report = hospital.catch_up_with(topic, &events, complete, mesh.now());
    assert!(report.complete, "promoted node serves a gap-free resync");
    assert_eq!(report.applied, 4);
    assert_eq!(hospital.watermark_for(topic), k_pre as u64 + 4);
    log(mesh.now(), "subscriber watermark gap-free across failover");

    // And the watermark itself is durable: a crashed-and-recovered
    // relying service resumes from the same high-water mark instead of
    // re-fetching (or worse, skipping) anything.
    drop(hospital);
    let hospital2 = durable_hospital(&hospital_journal, &hospital_snapshot, &facts);
    hospital2.recover(mesh.now()).unwrap();
    assert_eq!(
        hospital2.watermark_for(topic),
        k_pre as u64 + 4,
        "watermark survives subscriber crash-recovery"
    );
    log(mesh.now(), "subscriber watermark durable");

    // Invariant 4: the dead node rejoins as a follower and is
    // state-transferred to the winner's log.
    mesh.revive(leader.id());
    for _ in 0..20 {
        mesh.step(new_leader.config().heartbeat_ms + 1);
        if leader.last_index() == new_leader.last_index() && !leader.is_leader() {
            break;
        }
    }
    assert!(!leader.is_leader(), "rejoined node must not lead");
    assert_eq!(
        leader.region("journal").read().unwrap(),
        new_leader.region("journal").read().unwrap(),
        "rejoined node converges to the promoted leader's journal"
    );
    log(mesh.now(), "old leader rejoined as follower and synced");

    trace
}

#[test]
fn chaos_kill_leader_mid_storm_loses_nothing() {
    let seed = chaos_seed();
    let trace = run_scenario(seed);
    let _ = write_lines("replication", seed, &trace);
    let all = trace.join("\n");
    for landmark in [
        "revocations quorum-acked",
        "killed leader",
        "promoted",
        "retained ring gap-free after failover",
        "stale cert refused, live cert honoured",
        "storm resumed gap-free on promoted leader",
        "subscriber watermark gap-free across failover",
        "subscriber watermark durable",
        "old leader rejoined as follower and synced",
    ] {
        assert!(all.contains(landmark), "trace missing {landmark:?}:\n{all}");
    }
}

#[test]
fn chaos_failover_is_deterministic_per_seed() {
    let seed = chaos_seed();
    assert_eq!(
        run_scenario(seed),
        run_scenario(seed),
        "identical seeds must replay identical traces"
    );
}

/// A follower behind a flapping link falls a few entries behind on
/// every down run and must heal each lag through entry-level log
/// repair alone: zero full-state syncs anywhere in the cluster, no
/// election, no deposition. This is the acceptance gate for the repair
/// path — the leader's `sync_chunks_sent` staying at 0 proves lag
/// within the retained tail never degenerates into a state transfer.
#[test]
fn chaos_flappy_link_heals_by_entry_repair_without_sync() {
    let seed = chaos_seed();
    let mut trace: Vec<String> = Vec::new();
    let mut log = |tick: u64, event: &str| {
        trace.push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));
    };

    let (mesh, nodes) = cluster(3);
    let (leader, _) = settle(&mesh);
    let follower = nodes
        .iter()
        .find(|n| n.id() != leader.id())
        .expect("a follower")
        .clone();
    let term_before = leader.term();

    // The seed varies the flap cadence (3..=5 calls per run); every
    // window is far shorter than the retained tail, so repair must
    // always suffice.
    let window = 3 + (seed % 3);
    let mut plan = FaultPlan::new();
    let at = mesh.now() + 1;
    plan.flap_link_at(at, leader.id(), follower.id(), window);
    apply_link_flaps(&mesh, &mut plan, at);
    log(
        at,
        &format!(
            "link {}<->{} flapping window={window}",
            leader.id(),
            follower.id()
        ),
    );

    let ops = leader.replicated("ops");
    for i in 0..24 {
        ops.append(format!("op-{i};").as_bytes())
            .expect("quorum append with a flapping minority link");
        mesh.step(5);
    }
    log(mesh.now(), "24 appends landed through the flapping window");

    let at = mesh.now() + 1;
    plan.flap_link_at(at, leader.id(), follower.id(), 0);
    apply_link_flaps(&mesh, &mut plan, at);
    for _ in 0..40 {
        if follower.last_index() == leader.last_index() {
            break;
        }
        mesh.step(leader.config().heartbeat_ms + 1);
    }
    assert_eq!(
        follower.last_index(),
        leader.last_index(),
        "follower converges once the link steadies"
    );
    assert_eq!(
        follower.region("ops").read().unwrap(),
        leader.region("ops").read().unwrap(),
        "converged bytes are identical"
    );

    let fstats = follower.stats();
    let lstats = leader.stats();
    assert!(
        fstats.repairs_pulled >= 1,
        "the flapping link must exercise entry repair (stats: {fstats:?})"
    );
    assert!(fstats.repair_entries_applied >= 1);
    assert_eq!(
        fstats.syncs_applied, 0,
        "zero full-state syncs applied by the follower"
    );
    assert_eq!(
        lstats.sync_chunks_sent, 0,
        "zero sync chunks sent by the leader: lag within the tail is repaired, never state-transferred"
    );
    assert!(
        leader.is_leader() && leader.term() == term_before,
        "flapping must not depose the leader or burn a term"
    );
    log(
        mesh.now(),
        &format!(
            "healed via repair: pulls={} entries={} syncs=0",
            fstats.repairs_pulled, fstats.repair_entries_applied
        ),
    );
    let _ = write_lines("replication-flappy-repair", seed, &trace);
}

/// A follower partitioned past the leader's retained tail needs a
/// chunked full-state sync — and the link comes back flapping, killing
/// the transfer mid-flight over and over. The sync session must resume
/// from the last acknowledged chunk each time, never restart, and the
/// follower must install exactly one coherent snapshot.
#[test]
fn chaos_mid_sync_link_drop_resumes_chunked_transfer() {
    let seed = chaos_seed();
    let mut trace: Vec<String> = Vec::new();
    let mut log = |tick: u64, event: &str| {
        trace.push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));
    };

    // A 2-entry tail compacts almost immediately; 8-byte chunks make
    // the recovery sync many frames long so the flapping link is
    // guaranteed to interrupt it.
    let (mesh, nodes) = cluster_with(3, |cfg| {
        cfg.retain_entries = 2;
        cfg.sync_chunk_bytes = 8;
    });
    let (leader, _) = settle(&mesh);
    let follower = nodes
        .iter()
        .find(|n| n.id() != leader.id())
        .expect("a follower")
        .clone();

    mesh.partition(leader.id(), follower.id());
    log(mesh.now(), "follower partitioned");
    let ops = leader.replicated("ops");
    for i in 0..6 {
        ops.append(format!("record-{i}-payload;").as_bytes())
            .expect("majority append while one follower is cut off");
        mesh.step(5);
    }
    log(mesh.now(), "tail compacted past the partitioned follower");

    mesh.heal_partition(leader.id(), follower.id());
    let mut plan = FaultPlan::new();
    let at = mesh.now() + 1;
    plan.flap_link_at(at, leader.id(), follower.id(), 3);
    apply_link_flaps(&mesh, &mut plan, at);
    log(
        at,
        "link healed but flapping: sync must survive mid-transfer drops",
    );

    for _ in 0..120 {
        if follower.last_index() == leader.last_index() {
            break;
        }
        mesh.step(leader.config().heartbeat_ms + 1);
    }
    let at = mesh.now() + 1;
    plan.flap_link_at(at, leader.id(), follower.id(), 0);
    apply_link_flaps(&mesh, &mut plan, at);

    assert_eq!(
        follower.region("ops").read().unwrap(),
        leader.region("ops").read().unwrap(),
        "follower converges through the interrupted sync"
    );
    let fstats = follower.stats();
    let lstats = leader.stats();
    assert!(
        lstats.sync_resumes >= 1,
        "the transfer must resume from the last acked chunk, not restart (stats: {lstats:?})"
    );
    assert!(lstats.syncs_sent >= 1, "at least one sync completed");
    assert!(
        fstats.syncs_applied >= 1,
        "the follower installed the snapshot"
    );
    log(
        mesh.now(),
        &format!(
            "sync resumed {} times across {} chunks",
            lstats.sync_resumes, lstats.sync_chunks_sent
        ),
    );
    let _ = write_lines("replication-mid-sync-drop", seed, &trace);
}

/// The before/after case for pre-vote. An isolated node that cannot
/// reach a quorum must not inflate its term: with pre-vote its probes
/// are vetoed and the stable leader survives the rejoin untouched
/// (0 depositions). The identical isolation on a pre-vote-less cluster
/// storms terms while cut off and deposes the healthy leader on heal
/// (≥1 deposition) — proving the assertion above has teeth.
#[test]
fn chaos_pre_vote_prevents_depositions_that_raw_elections_cause() {
    let seed = chaos_seed();
    let mut trace: Vec<String> = Vec::new();
    let mut log = |tick: u64, event: &str| {
        trace.push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));
    };

    // --- With pre-vote (the default) --------------------------------
    let (mesh, nodes) = cluster(3);
    let (leader, _) = settle(&mesh);
    let isolated = nodes
        .iter()
        .find(|n| n.id() != leader.id())
        .expect("a follower")
        .clone();
    let term_before = leader.term();
    for peer in nodes.iter().filter(|n| n.id() != isolated.id()) {
        mesh.partition(isolated.id(), peer.id());
    }
    log(
        mesh.now(),
        &format!("{} isolated (pre-vote on)", isolated.id()),
    );
    for _ in 0..20 {
        mesh.step(25);
    }
    assert!(
        isolated.stats().pre_votes_blocked >= 1,
        "the isolated node kept probing and kept being vetoed"
    );
    assert_eq!(
        isolated.term(),
        term_before,
        "pre-vote must hold the isolated node's term"
    );
    for peer in nodes.iter().filter(|n| n.id() != isolated.id()) {
        mesh.heal_partition(isolated.id(), peer.id());
    }
    for _ in 0..40 {
        mesh.step(25);
        if isolated.last_index() == leader.last_index() {
            break;
        }
    }
    assert!(
        leader.is_leader() && leader.term() == term_before,
        "rejoin must not depose the stable leader"
    );
    assert_eq!(
        leader.stats().step_downs,
        0,
        "pre-vote: zero depositions across the whole isolation"
    );
    log(
        mesh.now(),
        "pre-vote: rejoined with 0 depositions, term unchanged",
    );

    // --- Without pre-vote: the control ------------------------------
    let (mesh2, nodes2) = cluster_with(3, |cfg| cfg.pre_vote = false);
    let (leader2, _) = settle(&mesh2);
    let isolated2 = nodes2
        .iter()
        .find(|n| n.id() != leader2.id())
        .expect("a follower")
        .clone();
    let term2_before = leader2.term();
    for peer in nodes2.iter().filter(|n| n.id() != isolated2.id()) {
        mesh2.partition(isolated2.id(), peer.id());
    }
    log(
        mesh2.now(),
        &format!("{} isolated (pre-vote off)", isolated2.id()),
    );
    for _ in 0..20 {
        mesh2.step(25);
    }
    assert!(
        isolated2.term() > term2_before,
        "without pre-vote the isolated node storms its term up"
    );
    for peer in nodes2.iter().filter(|n| n.id() != isolated2.id()) {
        mesh2.heal_partition(isolated2.id(), peer.id());
    }
    let mut deposed = false;
    for _ in 0..40 {
        mesh2.step(25);
        if leader2.stats().step_downs >= 1 {
            deposed = true;
            break;
        }
    }
    assert!(
        deposed,
        "without pre-vote the inflated term must depose the healthy leader on rejoin"
    );
    let (releader, _) = settle(&mesh2);
    log(
        mesh2.now(),
        &format!("no pre-vote: leader deposed, {} re-leads", releader.id()),
    );
    let _ = write_lines("replication-pre-vote", seed, &trace);
}
