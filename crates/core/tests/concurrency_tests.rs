//! Concurrency and validation-cache behaviour of the sharded service.
//!
//! The service splits policy (read-mostly, `RwLock`) from certificate
//! records (lock-striped shards), and optionally memoises foreign
//! credential validations. These tests pin the observable contract:
//!
//! * a cache hit performs **zero** validator callbacks;
//! * a revocation event evicts the cached entry immediately, so the next
//!   validation goes back to the issuer and fails;
//! * activation / invocation / revocation racing across threads never
//!   deadlocks, never loses a cascade, and leaves the record stores in a
//!   consistent state at quiesce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use oasis_core::{
    Atom, CredStatus, Credential, CredentialValidator, EnvContext, LocalRegistry, OasisError,
    OasisService, PrincipalId, RoleName, ServiceConfig, Term, Value, ValueType,
};
use oasis_events::EventBus;
use oasis_facts::FactStore;

/// Wraps a real validator and counts how many callbacks reach it — the
/// cache is only allowed to skip this when it has a fresh entry.
struct CountingValidator {
    inner: Arc<LocalRegistry>,
    calls: AtomicUsize,
}

impl CountingValidator {
    fn new(inner: Arc<LocalRegistry>) -> Self {
        Self {
            inner,
            calls: AtomicUsize::new(0),
        }
    }

    fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl CredentialValidator for CountingValidator {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.validate(credential, presenter, now)
    }
}

struct CacheWorld {
    facts: Arc<FactStore<Value>>,
    login: Arc<OasisService>,
    hospital: Arc<OasisService>,
    validator: Arc<CountingValidator>,
}

/// login.logged_in is a prerequisite for hospital.doctor_on_duty; the
/// hospital validates login's credentials through a counting validator
/// and memoises successes for `ttl` ticks.
fn cache_world(ttl: u64) -> CacheWorld {
    let facts = FactStore::new();
    facts.define("password_ok", 1).unwrap();
    let facts = Arc::new(facts);
    let bus = EventBus::new();

    let login = OasisService::new(
        ServiceConfig::new("login").with_bus(bus.clone()),
        Arc::clone(&facts),
    );
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_bus(bus.clone())
            .with_validation_cache(ttl),
        Arc::clone(&facts),
    );
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    registry.register(&hospital);
    let validator = Arc::new(CountingValidator::new(registry));
    hospital.set_validator(Arc::clone(&validator) as Arc<dyn CredentialValidator>);

    CacheWorld {
        facts,
        login,
        hospital,
        validator,
    }
}

fn alice() -> PrincipalId {
    PrincipalId::new("alice")
}

#[test]
fn cache_hit_performs_no_validator_callback() {
    let w = cache_world(100);
    w.facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let rmc = w
        .login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(1),
        )
        .unwrap();
    let cred = Credential::Rmc(rmc);

    // First validation misses the cache and reaches the issuer.
    w.hospital.validate_credential(&cred, &alice(), 1).unwrap();
    assert_eq!(w.validator.calls(), 1);

    // Every validation within the TTL is served from the cache: the
    // counting validator must see no further callbacks.
    for now in 2..50 {
        w.hospital
            .validate_credential(&cred, &alice(), now)
            .unwrap();
    }
    assert_eq!(
        w.validator.calls(),
        1,
        "cache hit must not call the validator"
    );

    let stats = w.hospital.validation_cache_stats().unwrap();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 48);

    // Past the TTL the entry is stale and the issuer is consulted again.
    w.hospital
        .validate_credential(&cred, &alice(), 500)
        .unwrap();
    assert_eq!(w.validator.calls(), 2);
}

#[test]
fn cache_is_per_presenter() {
    let w = cache_world(100);
    w.facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let rmc = w
        .login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(1),
        )
        .unwrap();
    let cred = Credential::Rmc(rmc);

    w.hospital.validate_credential(&cred, &alice(), 1).unwrap();
    assert_eq!(w.validator.calls(), 1);

    // A different presenter must not be served by alice's cached success:
    // the MAC binds the certificate to its holder, and so must the cache.
    let mallory = PrincipalId::new("mallory");
    assert!(w.hospital.validate_credential(&cred, &mallory, 2).is_err());
    assert_eq!(w.validator.calls(), 2);
}

#[test]
fn revocation_evicts_cached_validation() {
    let w = cache_world(1_000);
    w.facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let rmc = w
        .login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(1),
        )
        .unwrap();
    let cred = Credential::Rmc(rmc.clone());

    w.hospital.validate_credential(&cred, &alice(), 1).unwrap();
    w.hospital.validate_credential(&cred, &alice(), 2).unwrap();
    assert_eq!(w.validator.calls(), 1);

    // Revoking at the issuer publishes `cred.revoked.login`; the
    // hospital's subscription must evict the cached entry immediately.
    assert!(w.login.revoke_certificate(rmc.crr.cert_id, "logout", 3));

    let err = w
        .hospital
        .validate_credential(&cred, &alice(), 4)
        .unwrap_err();
    assert!(
        matches!(err, OasisError::InvalidCredential { .. }),
        "revoked credential must fail closed, got {err:?}"
    );
    // The failure came from a real callback, not a stale cache entry.
    assert_eq!(w.validator.calls(), 2);

    let stats = w.hospital.validation_cache_stats().unwrap();
    assert!(
        stats.invalidations >= 1,
        "revocation must evict, stats {stats:?}"
    );
}

#[test]
fn cached_activation_still_collapses_on_revocation() {
    // End-to-end: activate through the cache, then revoke the
    // prerequisite — the dependent RMC must still be deactivated.
    let w = cache_world(1_000);
    w.facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let ctx = EnvContext::new(1);
    let login_rmc = w
        .login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
    // Warm the cache, then activate using the (cached) foreign credential.
    w.hospital
        .validate_credential(&Credential::Rmc(login_rmc.clone()), &alice(), 1)
        .unwrap();
    let duty_rmc = w
        .hospital
        .activate_role(
            &alice(),
            &RoleName::new("doctor_on_duty"),
            &[Value::id("alice")],
            &[Credential::Rmc(login_rmc.clone())],
            &ctx,
        )
        .unwrap();

    assert!(w
        .login
        .revoke_certificate(login_rmc.crr.cert_id, "logout", 2));

    let record = w.hospital.record(duty_rmc.crr.cert_id).unwrap();
    assert!(
        matches!(record.status, CredStatus::Revoked { .. }),
        "cascade must revoke the dependent RMC, got {:?}",
        record.status
    );
}

// ---------------------------------------------------------------------------
// Multi-threaded stress
// ---------------------------------------------------------------------------

const THREADS: usize = 8;
const ROUNDS: usize = 20;

#[test]
fn concurrent_activate_invoke_revoke_is_consistent() {
    let facts = FactStore::new();
    facts.define("password_ok", 1).unwrap();
    let facts = Arc::new(facts);
    let bus = EventBus::new();

    let login = OasisService::new(
        ServiceConfig::new("login").with_bus(bus.clone()),
        Arc::clone(&facts),
    );
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_bus(bus.clone())
            .with_validation_cache(10),
        Arc::clone(&facts),
    );
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();
    hospital.add_invocation_rule(
        "read_record",
        vec![Term::var("D")],
        vec![Atom::prereq("doctor_on_duty", vec![Term::var("D")])],
    );

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    registry.register(&hospital);
    login.set_validator(registry.clone());
    hospital.set_validator(registry.clone());

    for t in 0..THREADS {
        facts
            .insert("password_ok", vec![Value::id(format!("doc{t}"))])
            .unwrap();
    }

    let issued = Arc::new(AtomicUsize::new(0));
    let invoked = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let login = Arc::clone(&login);
        let hospital = Arc::clone(&hospital);
        let issued = Arc::clone(&issued);
        let invoked = Arc::clone(&invoked);
        handles.push(thread::spawn(move || {
            let me = PrincipalId::new(format!("doc{t}"));
            let arg = Value::id(format!("doc{t}"));
            for round in 0..ROUNDS {
                let now = (t * ROUNDS + round) as u64;
                let ctx = EnvContext::new(now);
                let login_rmc = login
                    .activate_role(
                        &me,
                        &RoleName::new("logged_in"),
                        std::slice::from_ref(&arg),
                        &[],
                        &ctx,
                    )
                    .expect("login activation");
                let duty_rmc = hospital
                    .activate_role(
                        &me,
                        &RoleName::new("doctor_on_duty"),
                        std::slice::from_ref(&arg),
                        &[Credential::Rmc(login_rmc.clone())],
                        &ctx,
                    )
                    .expect("duty activation");
                issued.fetch_add(2, Ordering::SeqCst);
                // Use the role while another thread may be revoking its own
                // chain: a thread only revokes its own certificates, so this
                // invocation must succeed.
                hospital
                    .invoke(
                        &me,
                        "read_record",
                        std::slice::from_ref(&arg),
                        &[Credential::Rmc(duty_rmc.clone())],
                        &ctx,
                    )
                    .expect("invoke with live role");
                invoked.fetch_add(1, Ordering::SeqCst);
                // Revoke the root: the cascade must take down the duty RMC
                // even while other threads are mid-activation.
                assert!(login.revoke_certificate(login_rmc.crr.cert_id, "logout", now));
            }
        }));
    }
    // A monitor thread exercises the cross-shard sweeps (stats, expiry,
    // session views) concurrently with the writers.
    let monitor_hospital = Arc::clone(&hospital);
    let monitor_login = Arc::clone(&login);
    let monitor = thread::spawn(move || {
        for i in 0..200u64 {
            let (active, revoked, _) = monitor_hospital.record_stats();
            // Counts are a snapshot; they only ever grow in total.
            let _ = active + revoked;
            let _ = monitor_login.active_records();
            let _ = monitor_hospital.expire_certificates(i % 7);
        }
    });
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    monitor.join().expect("monitor thread panicked");

    // Quiesce: every login certificate was revoked, and every dependent
    // hospital certificate must have been cascaded — no lost revocations.
    let (login_active, login_revoked, login_expired) = login.record_stats();
    assert_eq!(login_active, 0, "all login RMCs were revoked");
    assert_eq!(login_revoked + login_expired, THREADS * ROUNDS);

    let (hosp_active, hosp_revoked, hosp_expired) = hospital.record_stats();
    assert_eq!(
        hosp_active, 0,
        "revoking a login RMC must cascade to the dependent duty RMC"
    );
    assert_eq!(hosp_revoked + hosp_expired, THREADS * ROUNDS);

    assert_eq!(issued.load(Ordering::SeqCst), 2 * THREADS * ROUNDS);
    assert_eq!(invoked.load(Ordering::SeqCst), THREADS * ROUNDS);
    assert!(hospital.active_records().is_empty());
}

#[test]
fn concurrent_policy_reads_and_writes_do_not_block_certificates() {
    // Policy updates (write lock) interleaved with activations (read
    // lock + shard locks) must make progress on both sides.
    let facts = FactStore::new();
    facts.define("password_ok", 1).unwrap();
    let facts = Arc::new(facts);
    let svc = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    svc.define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();

    let writer_svc = Arc::clone(&svc);
    let writer = thread::spawn(move || {
        for i in 0..50 {
            writer_svc
                .define_role(format!("extra{i}"), &[("x", ValueType::Id)], false)
                .unwrap();
        }
    });
    let reader_svc = Arc::clone(&svc);
    let reader = thread::spawn(move || {
        let me = PrincipalId::new("alice");
        for i in 0..50u64 {
            let rmc = reader_svc
                .activate_role(
                    &me,
                    &RoleName::new("logged_in"),
                    &[Value::id("alice")],
                    &[],
                    &EnvContext::new(i),
                )
                .unwrap();
            reader_svc.revoke_certificate(rmc.crr.cert_id, "done", i);
        }
    });
    writer.join().unwrap();
    reader.join().unwrap();

    assert_eq!(svc.roles().len(), 51);
    let (active, revoked, _) = svc.record_stats();
    assert_eq!((active, revoked), (0, 50));
}
