//! Indexed in-memory fact store backing OASIS environmental predicates.
//!
//! Role activation rules in the paper include *environmental constraints*
//! that are "ascertained by database lookup at some service": whether a
//! doctor has a patient registered under their care, whether a user belongs
//! to a group, whether a patient has excluded a specific doctor from their
//! record. This crate provides the database those predicates query: a
//! relation/tuple store with per-column hash indexes, wildcard queries, and
//! change notification.
//!
//! Change notification matters for *active security*: the membership rule
//! of a role may retain an environmental predicate, so when the underlying
//! fact is retracted (the patient deregisters) the role must be deactivated
//! immediately. [`FactStore::watch`] delivers the retraction synchronously
//! to the session monitor.
//!
//! The store is generic over the column value type `V`, so `oasis-core` can
//! use its own parameter `Value` without a dependency cycle.
//!
//! # Example
//!
//! ```
//! use oasis_facts::FactStore;
//!
//! let store: FactStore<String> = FactStore::new();
//! store.define("registered", 2).unwrap();
//! store
//!     .insert("registered", vec!["dr-jones".into(), "pat-7".into()])
//!     .unwrap();
//! assert!(store
//!     .contains("registered", &["dr-jones".to_string(), "pat-7".to_string()])
//!     .unwrap());
//! // Wildcard query: every patient of dr-jones.
//! let rows = store
//!     .query("registered", &[Some("dr-jones".to_string()), None])
//!     .unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod relation;
mod store;

pub use error::FactError;
pub use store::{FactChange, FactStore, WatchId};
