//! Error types for the domain layer.

use oasis_core::{DomainId, ServiceId};

/// Errors reported by the domain layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// A domain id was not registered with the federation.
    UnknownDomain(DomainId),

    /// A service id could not be resolved to any domain.
    UnknownService(ServiceId),

    /// A cross-domain credential was presented without a covering SLA.
    NoAgreement {
        /// The domain refusing the credential.
        consumer: DomainId,
        /// The issuing service.
        issuer: ServiceId,
        /// The credential name.
        name: String,
    },

    /// The CIV service has no live replica able to answer.
    CivUnavailable(DomainId),

    /// A replica index was out of range.
    NoSuchReplica {
        /// Requested replica.
        index: usize,
        /// Configured replication factor.
        factor: usize,
    },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownDomain(x0) => write!(f, "unknown domain `{x0}`"),
            Self::UnknownService(x0) => write!(f, "service `{x0}` belongs to no registered domain"),
            Self::NoAgreement {
                consumer,
                issuer,
                name,
            } => write!(
                f,
                "no service-level agreement lets `{consumer}` accept `{name}` from `{issuer}`"
            ),
            Self::CivUnavailable(x0) => {
                write!(f, "CIV service for `{x0}` is unavailable (no live replica)")
            }
            Self::NoSuchReplica { index, factor } => {
                write!(f, "no replica {index} (replication factor {factor})")
            }
        }
    }
}

impl std::error::Error for DomainError {}
