//! TAB-H — quorum-replicated journal: append cost, failover time, and
//! recovery gap vs replica count.
//!
//! The paper's ref [10] assumes the Certificate Issuing & Validation
//! service survives node loss. PR 6 makes the journal a replicated log:
//! every append is quorum-committed (`floor(n/2)+1` acks) before the
//! caller proceeds. This table quantifies the robustness bill across
//! cluster sizes 1 (unreplicated baseline), 3, and 5:
//!
//! * **append** — wall-clock cost of one quorum-committed journal
//!   append through `ReplicatedStore` (in-process `LocalMesh`
//!   transport, so the number measures protocol + fan-out cost, not
//!   the network).
//! * **failover** — virtual milliseconds from leader kill to a new
//!   leader among the survivors (heartbeat 50ms, election timeout
//!   150ms + deterministic per-id skew; driven on a 25ms tick grid).
//! * **recovery gap** — quorum-acked entries missing on the promoted
//!   leader after failover. The election restriction (vote quorum ∩
//!   commit quorum ≠ ∅) makes this provably zero; the bench asserts
//!   it stays zero across every trial.
//!
//! Reported (also emitted to `BENCH_replication.json`): append p50/p99
//! per cluster size, failover p50/max, and the gap.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::store::{LocalMesh, ReplicaConfig, ReplicaNode, ReplicatedStore, StorageBackend};
use oasis_bench::{percentile, table_header};

/// Fixed record size so the journal length counts acked entries.
const RECORD: &[u8] = b"0123456789abcdef";

fn cluster(n: usize) -> (LocalMesh, Vec<Arc<ReplicaNode>>) {
    cluster_with(n, |_| {})
}

fn cluster_with(
    n: usize,
    tweak: impl Fn(&mut ReplicaConfig),
) -> (LocalMesh, Vec<Arc<ReplicaNode>>) {
    let mesh = LocalMesh::new();
    let ids: Vec<String> = (0..n).map(|i| format!("civ{i}")).collect();
    let nodes: Vec<Arc<ReplicaNode>> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let peers = ids.iter().filter(|p| *p != id).cloned().collect();
            let mut cfg = ReplicaConfig::new(id.clone(), peers, format!("10.0.0.{i}:7450"));
            tweak(&mut cfg);
            let node = Arc::new(ReplicaNode::new(cfg, Arc::new(mesh.clone())));
            mesh.register(Arc::clone(&node));
            node
        })
        .collect();
    (mesh, nodes)
}

fn settle(mesh: &LocalMesh) -> (Arc<ReplicaNode>, u64) {
    let from = mesh.now();
    for _ in 0..400 {
        mesh.step(25);
        if let Some(leader) = mesh.live_leader() {
            return (leader, mesh.now() - from);
        }
    }
    panic!("no leader elected after 400 steps");
}

fn leader_store(n: usize) -> (LocalMesh, Arc<ReplicaNode>, ReplicatedStore) {
    let (mesh, _nodes) = cluster(n);
    let (leader, _) = settle(&mesh);
    let store = leader.replicated("journal");
    (mesh, leader, store)
}

/// One failover trial on a fresh `n`-node cluster: commit `pre`
/// entries, kill the leader, and measure virtual time until a survivor
/// leads, plus how many acked entries it is missing (the gap).
fn failover_trial(n: usize, pre: usize) -> (u64, u64) {
    let (mesh, leader, store) = leader_store(n);
    for _ in 0..pre {
        mesh.step(5);
        store.append(RECORD).expect("healthy append commits");
    }
    mesh.kill(leader.id());
    let (new_leader, failover_ms) = settle(&mesh);
    let present = new_leader.region("journal").read().unwrap().len() / RECORD.len();
    let gap = pre.saturating_sub(present) as u64;
    (failover_ms, gap)
}

struct Series {
    replicas: usize,
    quorum: usize,
    append_p50_us: f64,
    append_p99_us: f64,
    failover_p50_ms: Option<u64>,
    failover_max_ms: Option<u64>,
    recovery_gap_max: u64,
    trials: usize,
}

fn replication_table() -> String {
    const APPENDS: usize = 200;
    const TRIALS: usize = 9;

    table_header(
        "TAB-H replicated journal: append cost, failover, recovery gap",
        "quorum commit makes acked writes node-loss-safe at bounded cost",
        "replicas  quorum  append p50  append p99  failover p50  gap",
    );

    let us = |ns: u64| ns as f64 / 1_000.0;
    let mut series = Vec::new();
    for n in [1usize, 3, 5] {
        let (_mesh, leader, store) = leader_store(n);
        let mut lat: Vec<u64> = (0..APPENDS)
            .map(|_| {
                let start = Instant::now();
                store.append(RECORD).expect("append commits");
                start.elapsed().as_nanos() as u64
            })
            .collect();
        lat.sort_unstable();
        assert_eq!(leader.stats().committed, APPENDS as u64);

        // Failover is meaningless at n=1: the only node IS the data.
        let (failovers, gaps): (Vec<u64>, Vec<u64>) = if n > 1 {
            (0..TRIALS).map(|t| failover_trial(n, 4 + t)).unzip()
        } else {
            (Vec::new(), Vec::new())
        };
        let gap_max = gaps.iter().copied().max().unwrap_or(0);
        assert_eq!(
            gap_max, 0,
            "{n} replicas: a quorum-acked entry went missing after failover"
        );
        let mut sorted_failovers = failovers.clone();
        sorted_failovers.sort_unstable();

        let s = Series {
            replicas: n,
            quorum: n / 2 + 1,
            append_p50_us: us(percentile(&lat, 50.0)),
            append_p99_us: us(percentile(&lat, 99.0)),
            failover_p50_ms: (!sorted_failovers.is_empty())
                .then(|| percentile(&sorted_failovers, 50.0)),
            failover_max_ms: sorted_failovers.last().copied(),
            recovery_gap_max: gap_max,
            trials: failovers.len(),
        };
        println!(
            "{:>8} {:>7} {:>9.1}us {:>9.1}us {:>11} {:>4}",
            s.replicas,
            s.quorum,
            s.append_p50_us,
            s.append_p99_us,
            s.failover_p50_ms
                .map_or("n/a".to_string(), |ms| format!("{ms}ms")),
            s.recovery_gap_max,
        );
        series.push(s);
    }

    let json_series = series
        .iter()
        .map(|s| {
            let fmt_opt = |v: Option<u64>| v.map_or("null".to_string(), |ms| ms.to_string());
            format!(
                "    {{\"replicas\": {}, \"quorum\": {}, \"append_p50_us\": {:.2}, \
                 \"append_p99_us\": {:.2}, \"failover_p50_ms\": {}, \
                 \"failover_max_ms\": {}, \"recovery_gap_max\": {}, \"failover_trials\": {}}}",
                s.replicas,
                s.quorum,
                s.append_p50_us,
                s.append_p99_us,
                fmt_opt(s.failover_p50_ms),
                fmt_opt(s.failover_max_ms),
                s.recovery_gap_max,
                s.trials,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"table_replication\",\n  \"appends_per_series\": {},\n  \"series\": [\n{}\n  ]\n}}\n",
        APPENDS, json_series,
    )
}

/// One lag-heal trial: a follower is cut off while `lag` entries land
/// (on top of `pre_fill` already replicated), the link heals, and we
/// measure the virtual ms to convergence plus the bytes each recovery
/// path shipped. `retain` decides the path: a tail longer than the lag
/// heals via entry repair, a compacted one forces a full-state sync.
fn lag_heal_trial(pre_fill: usize, lag: usize, retain: usize) -> (u64, u64, u64) {
    let (mesh, nodes) = cluster_with(3, |cfg| cfg.retain_entries = retain);
    let (leader, _) = settle(&mesh);
    let follower = nodes
        .iter()
        .find(|n| n.id() != leader.id())
        .expect("a follower")
        .clone();
    let store = leader.replicated("journal");
    for _ in 0..pre_fill {
        mesh.step(5);
        store.append(RECORD).expect("healthy append commits");
    }
    mesh.partition(leader.id(), follower.id());
    for _ in 0..lag {
        mesh.step(5);
        store.append(RECORD).expect("majority append commits");
    }
    let repair_before = leader.stats().repair_bytes_served;
    let sync_before = leader.stats().sync_bytes_sent;
    mesh.heal_partition(leader.id(), follower.id());
    let healed_from = mesh.now();
    for _ in 0..400 {
        if follower.last_index() == leader.last_index() {
            break;
        }
        mesh.step(25);
    }
    assert_eq!(
        follower.last_index(),
        leader.last_index(),
        "lagging follower must converge after the heal"
    );
    (
        mesh.now() - healed_from,
        leader.stats().repair_bytes_served - repair_before,
        leader.stats().sync_bytes_sent - sync_before,
    )
}

/// Election churn under a full isolation window, with or without
/// pre-vote: returns `(elections_started, leader_depositions)` summed
/// over the isolated node / old leader after the heal settles.
fn isolation_churn_trial(pre_vote: bool) -> (u64, u64) {
    let (mesh, nodes) = cluster_with(3, |cfg| cfg.pre_vote = pre_vote);
    let (leader, _) = settle(&mesh);
    let isolated = nodes
        .iter()
        .find(|n| n.id() != leader.id())
        .expect("a follower")
        .clone();
    for peer in nodes.iter().filter(|n| n.id() != isolated.id()) {
        mesh.partition(isolated.id(), peer.id());
    }
    for _ in 0..30 {
        mesh.step(25);
    }
    for peer in nodes.iter().filter(|n| n.id() != isolated.id()) {
        mesh.heal_partition(isolated.id(), peer.id());
    }
    for _ in 0..40 {
        mesh.step(25);
    }
    (
        isolated.stats().elections_started,
        leader.stats().step_downs,
    )
}

struct HealSeries {
    path: &'static str,
    retain: usize,
    heal_p50_ms: u64,
    heal_p99_ms: u64,
    repair_bytes: u64,
    sync_bytes: u64,
    trials: usize,
}

/// TAB-H addendum — partition hardening: entry repair vs full sync at
/// the same lag, and election churn with/without pre-vote. Returns the
/// JSON fragment spliced into `BENCH_replication.json`.
fn repair_table() -> String {
    const PRE_FILL: usize = 64;
    const LAG: usize = 32;
    const TRIALS: usize = 9;

    table_header(
        "TAB-H addendum: lag healing path and pre-vote churn",
        "entry repair ships the delta; full sync ships the world; pre-vote ships nothing",
        "path          retain  heal p50  heal p99  repair bytes  sync bytes",
    );

    let mut series = Vec::new();
    // retain 512: the 32-entry lag sits inside the tail — entry repair.
    // retain 2: the tail compacted past the lag — chunked full sync.
    for (path, retain) in [("entry-repair", 512usize), ("full-sync", 2)] {
        let trials: Vec<(u64, u64, u64)> = (0..TRIALS)
            .map(|_| lag_heal_trial(PRE_FILL, LAG, retain))
            .collect();
        let mut heals: Vec<u64> = trials.iter().map(|t| t.0).collect();
        heals.sort_unstable();
        let repair_bytes = trials.iter().map(|t| t.1).max().unwrap_or(0);
        let sync_bytes = trials.iter().map(|t| t.2).max().unwrap_or(0);
        if path == "entry-repair" {
            assert_eq!(
                sync_bytes, 0,
                "within-tail lag must never ship a full-state sync"
            );
            assert!(repair_bytes > 0, "repair path must actually serve entries");
        } else {
            assert!(sync_bytes > 0, "compacted tail must ship a sync");
        }
        let s = HealSeries {
            path,
            retain,
            heal_p50_ms: percentile(&heals, 50.0),
            heal_p99_ms: percentile(&heals, 99.0),
            repair_bytes,
            sync_bytes,
            trials: TRIALS,
        };
        println!(
            "{:<13} {:>6} {:>7}ms {:>7}ms {:>13} {:>11}",
            s.path, s.retain, s.heal_p50_ms, s.heal_p99_ms, s.repair_bytes, s.sync_bytes
        );
        series.push(s);
    }

    let (elections_pv, depositions_pv) = isolation_churn_trial(true);
    let (elections_raw, depositions_raw) = isolation_churn_trial(false);
    assert_eq!(
        depositions_pv, 0,
        "pre-vote must absorb the isolation without a deposition"
    );
    assert!(
        depositions_raw >= 1,
        "without pre-vote the isolation must depose the leader (the contrast)"
    );
    println!(
        "pre-vote on : elections_started={elections_pv} depositions={depositions_pv}\n\
         pre-vote off: elections_started={elections_raw} depositions={depositions_raw}"
    );

    let heal_json = series
        .iter()
        .map(|s| {
            format!(
                "    {{\"path\": \"{}\", \"retain_entries\": {}, \"lag_entries\": {}, \
                 \"heal_p50_ms\": {}, \"heal_p99_ms\": {}, \"repair_bytes\": {}, \
                 \"sync_bytes\": {}, \"trials\": {}}}",
                s.path,
                s.retain,
                LAG,
                s.heal_p50_ms,
                s.heal_p99_ms,
                s.repair_bytes,
                s.sync_bytes,
                s.trials
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "  \"lag_heal\": [\n{heal_json}\n  ],\n  \"isolation_churn\": {{\n    \
         \"with_pre_vote\": {{\"elections_started\": {elections_pv}, \"depositions\": {depositions_pv}}},\n    \
         \"without_pre_vote\": {{\"elections_started\": {elections_raw}, \"depositions\": {depositions_raw}}}\n  }}"
    )
}

fn bench_replication(c: &mut Criterion) {
    let json = replication_table();
    let repair = repair_table();
    let json = json.replacen(
        "\n  \"series\": [",
        &format!("\n{repair},\n  \"series\": ["),
        1,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    std::fs::write(out, json).expect("write BENCH_replication.json");
    println!("wrote {out}");

    let mut group = c.benchmark_group("replication");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [1usize, 3, 5] {
        group.bench_function(BenchmarkId::new("quorum_append", n), |b| {
            let (_mesh, _leader, store) = leader_store(n);
            b.iter(|| store.append(RECORD).expect("append commits"));
        });
    }
    group.bench_function(BenchmarkId::new("failover", 3), |b| {
        b.iter(|| failover_trial(3, 5));
    });
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
