//! Minimal, dependency-free replacement for the `rand` crate (0.9 API).
//!
//! Provides the trait surface this workspace uses — [`RngCore`], [`Rng`]
//! (`random_range`, `random_bool`), [`SeedableRng`] — plus [`rng()`]
//! returning a thread-local xoshiro256++ generator seeded from the OS.
//! Output streams are *not* bit-compatible with upstream rand; the workspace
//! only relies on same-seed-same-run determinism and statistical quality.

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes (upstream's `Rng::fill` for byte
    /// slices — the only instantiation this workspace uses).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

// ---------------------------------------------------------------------------
// Thread-local generator
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_RNG_STATE: Cell<[u64; 4]> = Cell::new(os_seeded_state());
}

fn os_seeded_state() -> [u64; 4] {
    use std::io::Read as _;
    let mut bytes = [0u8; 32];
    // NB: must bound the read — /dev/urandom has no EOF, so a whole-file
    // read (`std::fs::read`) would never return.
    let read_ok = std::fs::File::open("/dev/urandom")
        .and_then(|mut f| f.read_exact(&mut bytes))
        .is_ok();
    if !read_ok {
        // Fallback entropy: time and a stack address, stretched by SplitMix64.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let addr = &bytes as *const _ as u64;
        let mut state = t ^ addr.rotate_left(32);
        for chunk in bytes.chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    let mut s = [word(0), word(1), word(2), word(3)];
    if s == [0; 4] {
        s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
    }
    s
}

/// Handle to the calling thread's generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct ThreadRng(());

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG_STATE.with(|cell| {
            let [mut s0, mut s1, mut s2, mut s3] = cell.get();
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            cell.set([s0, s1, s2, s3]);
            result
        })
    }
}

/// Access the thread-local generator (rand 0.9's `rand::rng()`).
pub fn rng() -> ThreadRng {
    ThreadRng(())
}

pub mod rngs {
    pub use super::ThreadRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = rng();
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to stay all-zero.
        let mut buf2 = [0u8; 13];
        r.fill_bytes(&mut buf2);
        assert_ne!(buf, buf2);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = r.random_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = r.random_range(0usize..5);
            assert!(w < 5);
            let x = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = rng();
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(7).0, S::seed_from_u64(7).0);
        assert_ne!(S::seed_from_u64(7).0, S::seed_from_u64(8).0);
    }
}
