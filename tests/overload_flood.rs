//! Overload flood: a saturating validation storm hits the login issuer
//! while revocations arrive concurrently, and the revocations must still
//! collapse the dependent role subtree at the relying hospital *within
//! their deadline* — the active-security property (Sect. 5, "revocation
//! takes effect immediately") under the worst load the transport allows.
//!
//! The admission controller runs on a virtual clock synced to simulation
//! ticks (1 tick = 1 ms), so queueing, shedding, and deadline expiry are
//! exact and the whole run is deterministic per seed. Two configurations
//! share the same total worker capacity:
//!
//! * **shedding on** — priority lanes: revocations ride the Control lane
//!   past the flooded Validation lane, excess validations are shed with a
//!   retry hint, and every request carries a deadline budget.
//! * **FIFO emulation** — the pre-overload-control server: one lane, an
//!   effectively unbounded accept queue, no priorities, no deadlines.
//!   Revocations wait behind the whole validation backlog.
//!
//! Asserted invariants (the ISSUE acceptance criteria):
//!
//! 1. With shedding on, every revocation-to-deactivation latency is
//!    within its propagated budget.
//! 2. No admitted request ever *starts executing* after its deadline.
//! 3. p99 revocation latency under FIFO is at least 10x worse than with
//!    shedding on — the number the overload subsystem exists to buy.
//!
//! Each run writes a JSONL trace to `target/chaos/overload-*.jsonl`
//! (uploaded by the CI overload-soak job), ending with the controller's
//! own stats snapshot. `OVERLOAD_SOAK_MS` turns the scenario into a
//! soak: derived seeds are run back-to-back until the wall-clock budget
//! is spent, failing if any revocation misses its deadline.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use oasis::sim::{chaos_seed, write_lines, Histogram, Latency, LinkConfig, SimNet, Simulation};
use oasis_core::cert::Rmc;
use oasis_core::{
    AdmissionController, Atom, CertId, Clock, CredStatus, Credential, Deadline, EnvContext, Lane,
    LaneConfig, LocalRegistry, ManualClock, OasisService, OverloadConfig, Permit, PollOutcome,
    PrincipalId, RoleName, ServiceConfig, Submission, Term, Ticket, Value, ValueType,
};
use oasis_facts::FactStore;

/// Doctors logged in at t=0, each with a dependent on-duty role at the
/// hospital; one revocation per doctor arrives during the flood.
const PRINCIPALS: usize = 20;
/// Virtual ms an admitted request occupies a worker.
const SERVICE_TICKS: u64 = 4;
/// The validation storm lasts this many ticks...
const FLOOD_TICKS: u64 = 1_000;
/// ...at this arrival rate — 3/tick against 1/tick of total capacity.
const VALIDATIONS_PER_TICK: usize = 3;
/// Deadline budget propagated with each validation (shedding mode).
const VALIDATION_BUDGET: u64 = 50;
/// Deadline budget for each revocation: arrival at the issuer to duty
/// revoked at the hospital must fit inside it.
const REVOCATION_BUDGET: u64 = 100;
/// Revocation arrivals: ticks 100, 140, ..., 860.
const REVOCATION_START: u64 = 100;
const REVOCATION_STEP: u64 = 40;
/// Drivers run past the flood until the FIFO backlog fully drains.
const T_END: u64 = 4_200;

enum Work {
    /// Validation callback for principal `i % PRINCIPALS`'s login cert.
    Validate(usize),
    /// Revocation of principal `i`'s login cert.
    Revoke(usize),
}

struct PendingReq {
    ticket: Ticket,
    deadline: Deadline,
    arrived: u64,
    work: Work,
}

struct RunningReq {
    finish_at: u64,
    /// Held for the execution window; dropped on completion.
    permit: Option<Permit>,
    work: Work,
}

#[derive(Default)]
struct Metrics {
    validations_answered: u64,
    validations_shed: u64,
    validations_expired: u64,
    revocations_shed: u64,
    revocations_expired: u64,
    /// Grants observed with an already-lapsed deadline — must stay 0.
    started_after_deadline: u64,
    /// Tick the hospital duty cert was observed revoked, per principal.
    deactivated_at: Vec<Option<u64>>,
}

struct World {
    login: Arc<OasisService>,
    hospital: Arc<OasisService>,
    login_certs: Vec<Rmc>,
    duty_certs: Vec<CertId>,
}

fn build_world() -> World {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    for i in 0..PRINCIPALS {
        facts
            .insert("password_ok", vec![Value::id(format!("dr-{i}"))])
            .unwrap();
    }

    let login = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(ServiceConfig::new("hospital"), Arc::clone(&facts));
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    hospital.set_validator(registry);

    let mut login_certs = Vec::with_capacity(PRINCIPALS);
    let mut duty_certs = Vec::with_capacity(PRINCIPALS);
    for i in 0..PRINCIPALS {
        let who = PrincipalId::new(format!("dr-{i}"));
        let rmc = login
            .activate_role(
                &who,
                &RoleName::new("logged_in"),
                &[Value::id(format!("dr-{i}"))],
                &[],
                &EnvContext::new(0),
            )
            .unwrap();
        let duty = hospital
            .activate_role(
                &who,
                &RoleName::new("doctor_on_duty"),
                &[Value::id(format!("dr-{i}"))],
                &[Credential::Rmc(rmc.clone())],
                &EnvContext::new(0),
            )
            .unwrap();
        login_certs.push(rmc);
        duty_certs.push(duty.crr.cert_id);
    }
    World {
        login,
        hospital,
        login_certs,
        duty_certs,
    }
}

/// The overloaded server's admission config. Both modes get the same
/// total worker capacity (4 concurrent, SERVICE_TICKS each → 1/tick);
/// only the lane structure differs.
fn flood_config(shedding: bool) -> OverloadConfig {
    let mut cfg = OverloadConfig::default();
    if shedding {
        *cfg.lane_mut(Lane::Control) = LaneConfig::fixed(2, 256, 1_000);
        *cfg.lane_mut(Lane::Validation) = LaneConfig::fixed(2, 16, 1_000);
        *cfg.lane_mut(Lane::Issuance) = LaneConfig::fixed(1, 8, 1_000);
    } else {
        // FIFO emulation of the pre-overload-control server: one lane,
        // a practically unbounded queue, no deadline enforcement.
        *cfg.lane_mut(Lane::Control) = LaneConfig::fixed(4, 1_000_000, 1_000_000);
    }
    cfg
}

struct FloodOutcome {
    trace: Vec<String>,
    /// Revocation-to-deactivation latency (arrival at issuer → duty cert
    /// revoked at hospital), per principal, in virtual ms.
    latencies: Vec<u64>,
    p99: u64,
    validations_answered: u64,
    validations_shed: u64,
    started_after_deadline: u64,
    revocations_shed: u64,
    revocations_expired: u64,
}

fn revocation_arrival(i: usize) -> u64 {
    REVOCATION_START + i as u64 * REVOCATION_STEP
}

#[allow(clippy::too_many_lines)]
fn run_flood(seed: u64, shedding: bool) -> FloodOutcome {
    let world = Rc::new(build_world());
    let clock = Arc::new(ManualClock::new(0));
    let ctrl = AdmissionController::with_clock(
        flood_config(shedding),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );

    let mut sim = Simulation::new(seed);
    let net = Rc::new(RefCell::new(SimNet::new(LinkConfig {
        latency: Latency::Constant(1),
        loss: 0.0,
        duplicate: 0.0,
        jitter: 1,
    })));

    let trace = Rc::new(RefCell::new(Vec::<String>::new()));
    let log = {
        let trace = Rc::clone(&trace);
        move |tick: u64, event: &str| {
            trace
                .borrow_mut()
                .push(format!("{{\"tick\":{tick},\"event\":\"{event}\"}}"));
        }
    };

    let metrics = Rc::new(RefCell::new(Metrics {
        deactivated_at: vec![None; PRINCIPALS],
        ..Metrics::default()
    }));
    let pending = Rc::new(RefCell::new(Vec::<PendingReq>::new()));
    let running = Rc::new(RefCell::new(Vec::<RunningReq>::new()));
    let feed = Rc::new(world.login.bus().subscribe("cred.revoked.#").unwrap());

    let lane_for = move |work: &Work| -> Lane {
        if !shedding {
            return Lane::Control;
        }
        match work {
            Work::Validate(_) => Lane::Validation,
            Work::Revoke(_) => Lane::Control,
        }
    };
    let deadline_for = move |work: &Work, now: u64| -> Deadline {
        if !shedding {
            return Deadline::none();
        }
        let budget = match work {
            Work::Validate(_) => VALIDATION_BUDGET,
            Work::Revoke(_) => REVOCATION_BUDGET,
        };
        Deadline::from_budget(now, Some(budget))
    };

    let mut next_validation = 0usize;
    for t in 1..=T_END {
        let world = Rc::clone(&world);
        let clock = Arc::clone(&clock);
        let ctrl = Arc::clone(&ctrl);
        let net = Rc::clone(&net);
        let metrics = Rc::clone(&metrics);
        let pending = Rc::clone(&pending);
        let running = Rc::clone(&running);
        let feed = Rc::clone(&feed);
        let log = log.clone();

        // This tick's arrivals, decided up front so the schedule is a
        // pure function of the constants (the seed only drives the net).
        let mut arrivals: Vec<Work> = Vec::new();
        if t <= FLOOD_TICKS {
            for _ in 0..VALIDATIONS_PER_TICK {
                arrivals.push(Work::Validate(next_validation % PRINCIPALS));
                next_validation += 1;
            }
        }
        for i in 0..PRINCIPALS {
            if revocation_arrival(i) == t {
                arrivals.push(Work::Revoke(i));
            }
        }

        sim.schedule_at(t, move |sim| {
            let now = sim.now();
            clock.set(now);

            // 1. Completions: requests whose execution window ended this
            // tick run their engine call and release the worker.
            let finished: Vec<RunningReq> = {
                let mut run = running.borrow_mut();
                let mut done = Vec::new();
                let mut i = 0;
                while i < run.len() {
                    if run[i].finish_at <= now {
                        done.push(run.remove(i));
                    } else {
                        i += 1;
                    }
                }
                done
            };
            for mut req in finished {
                match req.work {
                    Work::Validate(i) => {
                        let who = PrincipalId::new(format!("dr-{}", i % PRINCIPALS));
                        let cred = Credential::Rmc(world.login_certs[i % PRINCIPALS].clone());
                        let _ = world.login.validate_own(&cred, &who, now);
                        metrics.borrow_mut().validations_answered += 1;
                    }
                    Work::Revoke(i) => {
                        world.login.revoke_certificate(
                            world.login_certs[i].crr.cert_id,
                            "credential compromised",
                            now,
                        );
                        log(now, &format!("revocation {i} executed at issuer"));
                    }
                }
                drop(req.permit.take());
            }

            // 2. Queue polls, FIFO order: grants start an execution
            // window; expired tickets die in place.
            {
                let mut pend = pending.borrow_mut();
                let mut i = 0;
                while i < pend.len() {
                    match ctrl.poll(&pend[i].ticket) {
                        PollOutcome::Waiting => i += 1,
                        PollOutcome::Ready(permit) => {
                            let req = pend.remove(i);
                            if req.deadline.expired(now) {
                                metrics.borrow_mut().started_after_deadline += 1;
                            }
                            running.borrow_mut().push(RunningReq {
                                finish_at: now + SERVICE_TICKS,
                                permit: Some(permit),
                                work: req.work,
                            });
                        }
                        PollOutcome::Expired => {
                            let req = pend.remove(i);
                            let mut m = metrics.borrow_mut();
                            match req.work {
                                Work::Validate(_) => m.validations_expired += 1,
                                Work::Revoke(n) => {
                                    m.revocations_expired += 1;
                                    log(now, &format!("revocation {n} EXPIRED in queue"));
                                }
                            }
                            drop(m);
                            let _ = req.arrived;
                        }
                    }
                }
            }

            // 3. Arrivals: submit through the admission controller.
            for work in arrivals {
                let lane = lane_for(&work);
                let deadline = deadline_for(&work, now);
                match ctrl.submit(lane, deadline) {
                    Submission::Admitted(permit) => {
                        if let Work::Revoke(i) = work {
                            log(now, &format!("revocation {i} admitted instantly"));
                        }
                        running.borrow_mut().push(RunningReq {
                            finish_at: now + SERVICE_TICKS,
                            permit: Some(permit),
                            work,
                        });
                    }
                    Submission::Queued(ticket) => pending.borrow_mut().push(PendingReq {
                        ticket,
                        deadline,
                        arrived: now,
                        work,
                    }),
                    Submission::Shed { .. } => {
                        let mut m = metrics.borrow_mut();
                        match work {
                            Work::Validate(_) => m.validations_shed += 1,
                            Work::Revoke(n) => {
                                m.revocations_shed += 1;
                                drop(m);
                                log(now, &format!("revocation {n} SHED"));
                            }
                        }
                    }
                    Submission::Expired => {
                        let mut m = metrics.borrow_mut();
                        match work {
                            Work::Validate(_) => m.validations_expired += 1,
                            Work::Revoke(_) => m.revocations_expired += 1,
                        }
                    }
                }
            }

            // 4. Pump revocation events issuer → hospital over the net.
            for ev in feed.drain() {
                let hospital = Arc::clone(&world.hospital);
                let topic = ev.topic.clone();
                net.borrow_mut().send(sim, "login", "hospital", move |sim| {
                    hospital.bus().publish_at(&topic, ev.payload, sim.now());
                });
            }

            // 5. Detection: the moment each duty cert is observed revoked
            // at the hospital (the cascade landed), record the latency.
            {
                let mut m = metrics.borrow_mut();
                for i in 0..PRINCIPALS {
                    if m.deactivated_at[i].is_some() || revocation_arrival(i) > now {
                        continue;
                    }
                    let revoked = world
                        .hospital
                        .record(world.duty_certs[i])
                        .map(|r| matches!(r.status, CredStatus::Revoked { .. }))
                        .unwrap_or(false);
                    if revoked {
                        m.deactivated_at[i] = Some(now);
                        drop(m);
                        log(
                            now,
                            &format!(
                                "duty {i} deactivated, latency {} ticks",
                                now - revocation_arrival(i)
                            ),
                        );
                        m = metrics.borrow_mut();
                    }
                }
            }
        });
    }

    sim.run();

    let m = metrics.borrow();
    let mode = if shedding { "shedding" } else { "fifo" };
    let mut latencies = Vec::with_capacity(PRINCIPALS);
    let mut hist = Histogram::new();
    for i in 0..PRINCIPALS {
        let done = m.deactivated_at[i].unwrap_or_else(|| {
            panic!("[{mode}] revocation {i} never deactivated the duty cert by tick {T_END}")
        });
        let latency = done - revocation_arrival(i);
        latencies.push(latency);
        hist.record(latency);
    }
    let p99 = hist.quantile(0.99).unwrap();
    trace.borrow_mut().push(format!(
        "{{\"tick\":{T_END},\"mode\":\"{mode}\",\"p99_revocation_ticks\":{p99},\
         \"validations_answered\":{},\"validations_shed\":{},\"validations_expired\":{},\
         \"stats\":{}}}",
        m.validations_answered,
        m.validations_shed,
        m.validations_expired,
        ctrl.stats().trace_json(),
    ));

    let trace = trace.borrow().clone();
    FloodOutcome {
        trace,
        latencies,
        p99,
        validations_answered: m.validations_answered,
        validations_shed: m.validations_shed,
        started_after_deadline: m.started_after_deadline,
        revocations_shed: m.revocations_shed,
        revocations_expired: m.revocations_expired,
    }
}

/// Asserts the shedding-mode invariants of one run; returns its p99.
fn assert_shedding_invariants(out: &FloodOutcome, seed: u64) -> u64 {
    assert_eq!(
        out.started_after_deadline, 0,
        "seed {seed}: a request started executing after its deadline"
    );
    assert_eq!(
        out.revocations_shed, 0,
        "seed {seed}: the Control lane shed a revocation"
    );
    assert_eq!(
        out.revocations_expired, 0,
        "seed {seed}: a revocation expired before executing"
    );
    for (i, latency) in out.latencies.iter().enumerate() {
        assert!(
            *latency <= REVOCATION_BUDGET,
            "seed {seed}: revocation {i} took {latency} ticks, budget {REVOCATION_BUDGET}"
        );
    }
    assert!(
        out.validations_shed > 0,
        "seed {seed}: the flood was supposed to saturate the validation lane"
    );
    assert!(
        out.validations_answered > 0,
        "seed {seed}: shedding must preserve goodput, not eliminate it"
    );
    out.p99
}

#[test]
fn flood_shedding_bounds_revocation_latency_10x_over_fifo() {
    let seed = chaos_seed();

    let shed = run_flood(seed, true);
    let _ = write_lines("overload-shed", seed, &shed.trace);
    let shed_p99 = assert_shedding_invariants(&shed, seed);

    let fifo = run_flood(seed, false);
    let _ = write_lines("overload-fifo", seed, &fifo.trace);
    assert_eq!(fifo.started_after_deadline, 0);
    assert_eq!(
        fifo.validations_shed, 0,
        "the FIFO emulation must not shed — that is the point of it"
    );

    // The acceptance number: priority lanes + shedding buy at least 10x
    // on p99 revocation-to-deactivation latency under the same flood.
    assert!(
        fifo.p99 >= 10 * shed_p99.max(1),
        "FIFO p99 {} vs shedding p99 {}: less than 10x apart",
        fifo.p99,
        shed.p99
    );
}

#[test]
fn flood_is_deterministic_per_seed() {
    let seed = chaos_seed();
    let a = run_flood(seed, true);
    let b = run_flood(seed, true);
    assert_eq!(a.trace, b.trace, "same seed must replay identically");
}

/// Soak mode for CI: run the shedding scenario on derived seeds until
/// `OVERLOAD_SOAK_MS` of wall clock is spent, failing the job if any
/// revocation misses its deadline on any seed. A no-op without the env
/// var, so local `cargo test` stays fast.
#[test]
fn overload_soak() {
    let Some(budget_ms) = std::env::var("OVERLOAD_SOAK_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    let started = std::time::Instant::now();
    let base = chaos_seed();
    let mut seed = base;
    let mut runs = 0u64;
    let mut last_trace = Vec::new();
    while runs == 0 || started.elapsed().as_millis() < u128::from(budget_ms) {
        let out = run_flood(seed, true);
        assert_shedding_invariants(&out, seed);
        last_trace = out.trace;
        runs += 1;
        seed = seed
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
    }
    last_trace.push(format!(
        "{{\"event\":\"soak complete\",\"runs\":{runs},\"base_seed\":{base}}}"
    ));
    let _ = write_lines("overload-soak", base, &last_trace);
}
