//! Event-based middleware substrate for OASIS active security.
//!
//! The OASIS architecture (Bacon, Moody, Yao; Middleware 2001) assumes an
//! *active* middleware platform — the Cambridge Event Architecture of
//! ref \[2\] — through which services are notified of relevant changes in
//! their environment without polling. Two mechanisms from the paper are
//! modelled here:
//!
//! * **Event channels** (Fig 1, Fig 5): when service *C* issues a role
//!   membership certificate whose activation depended on credentials issued
//!   by services *A* and *B*, it subscribes to channels on which *A* and *B*
//!   publish revocation or change events. Should a supporting credential be
//!   invalidated, *C* learns immediately and can collapse the dependent role
//!   subtree.
//! * **Heartbeats** (Fig 5): issuers emit periodic heartbeats; a verifier
//!   that misses heartbeats treats cached validation results as stale.
//!
//! The crate is deliberately generic: [`EventBus`] carries any message type,
//! and time is *virtual* (caller-supplied `u64` ticks) so that the
//! deterministic simulator in `oasis-sim` and the benchmarks can drive it
//! reproducibly.
//!
//! # Overflow self-events (`bus.overflow.<topic>`)
//!
//! A bounded mailbox that overflows silently would turn a dropped
//! revocation notice into an invisible security hole. The bus therefore
//! *announces every drop*: when a bounded subscription on topic `t`
//! discards an event, the discarded payload is republished on
//! `bus.overflow.t` (the [`OVERFLOW_TOPIC_PREFIX`]). Monitors subscribe
//! to `bus.overflow.#` to observe exactly which events were lost, and
//! [`BusStats::overflow_events`] counts the announcements. Drops on an
//! overflow topic itself are counted but never re-announced, so the
//! announcement stream cannot amplify its own losses.
//!
//! # Retained rings and catch-up replay
//!
//! Delivery alone cannot serve a subscriber that was *down* when an
//! event was published — exactly the crash window durable services must
//! close. [`EventBus::retain`] keeps a bounded per-topic ring of recent
//! events; a restarting subscriber compares its persisted
//! [`DeliveredEvent::topic_seq`] watermark against
//! [`EventBus::topic_seq`] and replays the gap with
//! [`EventBus::replay_after`], which also reports whether the replay is
//! gap-free or the ring has already evicted part of the range
//! ([`BusStats::retained_evictions`]).
//!
//! # Example
//!
//! ```
//! use oasis_events::{EventBus, Topic};
//!
//! let bus: EventBus<String> = EventBus::new();
//! let sub = bus.subscribe("cred.revoked.*").unwrap();
//! bus.publish(&Topic::new("cred.revoked.hospital"), "rmc-42".to_string());
//! let event = sub.try_recv().unwrap();
//! assert_eq!(event.payload, "rmc-42");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod channel;
mod error;
mod heartbeat;
mod load;
mod stats;
mod topic;

pub use bus::{
    CallbackId, DeliveredEvent, EventBus, OverflowPolicy, Subscription, SubscriptionId,
    OVERFLOW_TOPIC_PREFIX,
};
pub use channel::{channel, ChannelReceiver, ChannelSender};
pub use error::EventError;
pub use heartbeat::{HeartbeatMonitor, SourceHealth, SourceId};
pub use load::LoadTracker;
pub use stats::BusStats;
pub use topic::{Topic, TopicPattern};
