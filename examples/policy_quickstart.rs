//! The quickstart scenario again — but this time the entire access
//! control configuration comes from a policy *document*, the "formal
//! expression of policy and its automatic deployment" the paper calls
//! essential for large-scale use (Sect. 1).
//!
//! Run with `cargo run --example policy_quickstart`.
//! See `docs/LANGUAGE.md` for the language reference, and try the
//! bundled tool on the same text:
//! `cargo run -p oasis-policy --bin policyc -- describe <file>`.

use std::sync::Arc;

use oasis::prelude::*;

const HOSPITAL_POLICY: &str = r#"
service hospital {
  initial role logged_in(user: id);
  role treating_doctor(doctor: id, patient: id);

  rule logged_in(U) <- env password_ok(U);

  # Default membership: every condition is retained, so deregistration
  # or a new exclusion deactivates the role immediately.
  rule treating_doctor(D, P) <-
      prereq logged_in(D),
      env registered(D, P),
      env not excluded(P, D);

  invoke read_record(P) <- prereq treating_doctor(_, P);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = Policy::parse(HOSPITAL_POLICY)?;
    println!("parsed policy for services: {:?}", policy.service_names());
    println!("canonical form:\n{}", policy.to_text());

    let facts = Arc::new(FactStore::new());
    let hospital = OasisService::new(ServiceConfig::new("hospital"), Arc::clone(&facts));
    policy.apply_to(&hospital)?;
    // The compiler declared password_ok/registered/excluded for us.
    facts.insert("password_ok", vec![Value::id("dr-jones")])?;
    facts.insert(
        "registered",
        vec![Value::id("dr-jones"), Value::id("pat-1")],
    )?;

    for warning in hospital.policy_warnings() {
        println!("warning: {warning}");
    }

    let dr = PrincipalId::new("dr-jones");
    let ctx = EnvContext::new(0);
    let login = hospital.activate_role(
        &dr,
        &RoleName::new("logged_in"),
        &[Value::id("dr-jones")],
        &[],
        &ctx,
    )?;
    let treating = hospital.activate_role(
        &dr,
        &RoleName::new("treating_doctor"),
        &[Value::id("dr-jones"), Value::id("pat-1")],
        &[Credential::Rmc(login)],
        &ctx,
    )?;
    hospital.invoke(
        &dr,
        "read_record",
        &[Value::id("pat-1")],
        &[Credential::Rmc(treating.clone())],
        &ctx,
    )?;
    println!("record read under policy-defined rules");

    // The patient files an exclusion; the policy's negated condition is
    // part of the (default) membership rule, so access dies immediately.
    facts.insert("excluded", vec![Value::id("pat-1"), Value::id("dr-jones")])?;
    let denied = hospital.invoke(
        &dr,
        "read_record",
        &[Value::id("pat-1")],
        &[Credential::Rmc(treating)],
        &ctx,
    );
    println!("after exclusion: {}", denied.unwrap_err());
    Ok(())
}
