//! The error type for durable storage.

use std::fmt;

/// Errors reported by the journal and snapshot stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O operation failed (file backends only).
    Io(String),

    /// A record or snapshot failed to serialise or deserialise.
    Codec(String),

    /// A snapshot blob was present but failed its checksum — it is
    /// ignored rather than trusted, and recovery falls back to a full
    /// journal replay.
    CorruptSnapshot {
        /// Why the blob was rejected.
        reason: String,
    },

    /// A replicated write was submitted to a node that is not the
    /// current leader. The caller should re-dial `hint` (the leader's
    /// client address) when known, or retry with backoff while an
    /// election settles.
    NotLeader {
        /// The current leader's client address, if this node knows it.
        hint: Option<String>,
    },

    /// A replicated write could not reach a majority of nodes. The
    /// write is *not* acknowledged — it may exist on a minority and
    /// will be overwritten by the next leader sync.
    NoQuorum {
        /// Acks required for commit (`floor(n/2)+1`).
        needed: usize,
        /// Acks actually collected (the writer included).
        acked: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "storage I/O: {e}"),
            Self::Codec(e) => write!(f, "journal codec: {e}"),
            Self::CorruptSnapshot { reason } => {
                write!(f, "snapshot rejected: {reason}")
            }
            Self::NotLeader { hint } => match hint {
                Some(hint) => write!(f, "not the leader (leader at {hint})"),
                None => write!(f, "not the leader (no leader known)"),
            },
            Self::NoQuorum { needed, acked } => {
                write!(f, "no quorum: {acked}/{needed} acks")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl From<oasis_json::JsonError> for StoreError {
    fn from(e: oasis_json::JsonError) -> Self {
        Self::Codec(e.to_string())
    }
}
