//! Deterministic discrete-event simulation of distributed OASIS
//! deployments.
//!
//! The paper's system ran on the authors' middleware over a real network;
//! reproducing the *distributed* behaviours (cross-domain callback
//! validation, revocation propagation, heartbeat staleness) on one
//! machine calls for a simulator: virtual time, seeded randomness, latency
//! models, message loss and partitions. Everything is deterministic for a
//! given seed, so experiments are exactly repeatable.
//!
//! * [`Simulation`] — the event loop: schedule closures at virtual times.
//! * [`Latency`] / [`LinkConfig`] / [`SimNet`] — network modelling with
//!   per-link latency distributions, loss, duplication, jitter,
//!   partitions, and node crashes.
//! * [`FaultPlan`] — scripted chaos: partitions, crashes, heartbeat
//!   pauses, clock skews, and Byzantine CIV turns applied at fixed
//!   virtual times.
//! * [`Trace`] — canonical sorted-key JSONL event traces, the shared
//!   recorder behind the conformance harness's byte-identical replay
//!   parity.
//! * [`chaos_seed`] / [`derive_seed`] / [`scenario_seed`] — unified
//!   seed plumbing (`CONFORMANCE_SEED` / `CHAOS_SEED`) for every
//!   deterministic suite.
//! * [`Histogram`] — metric collection for the benchmark harness.
//!
//! # Example
//!
//! ```
//! use oasis_sim::Simulation;
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut sim = Simulation::new(42);
//! let fired = Rc::new(Cell::new(0u64));
//! let f = Rc::clone(&fired);
//! sim.schedule_in(10, move |sim| {
//!     f.set(sim.now());
//! });
//! sim.run();
//! assert_eq!(fired.get(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod histogram;
mod latency;
mod net;
mod seed;
mod sim;
mod trace;

pub use fault::{Fault, FaultPlan, JournalDamage};
pub use histogram::Histogram;
pub use latency::Latency;
pub use net::{LinkConfig, NodeId, SimNet};
pub use seed::{chaos_seed, derive_seed, scenario_seed, seed_from_env};
pub use sim::Simulation;
pub use trace::{escape_json, write_lines, Trace, TraceValue};
