//! The publish/subscribe event bus.
//!
//! [`EventBus`] is the in-process stand-in for the active middleware
//! platform the paper relies on (ref \[2\]). Services subscribe with a
//! [`TopicPattern`]; publishers address a concrete [`Topic`]. Two
//! subscription styles are offered:
//!
//! * **Queued** ([`EventBus::subscribe`]) — events are copied into a
//!   per-subscriber mailbox and consumed with `recv`/`try_recv`. This models
//!   a service that processes notifications on its own schedule.
//! * **Callback** ([`EventBus::subscribe_fn`]) — a closure runs inline on
//!   the publisher's thread. This models the *active security* requirement:
//!   a revocation event must collapse dependent roles immediately, before
//!   the publisher proceeds.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::error::EventError;
use crate::stats::{BusStats, StatsCounters};
use crate::topic::{Topic, TopicPattern};

/// Identifier of a queued subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// Identifier of a callback subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallbackId(pub u64);

impl fmt::Display for CallbackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cb-{}", self.0)
    }
}

/// Topic prefix under which the bus announces mailbox-overflow drops:
/// a payload discarded from a bounded mailbox subscribed to topic `t` is
/// republished on `bus.overflow.t` (see [`EventBus::publish_at`]).
pub const OVERFLOW_TOPIC_PREFIX: &str = "bus.overflow";

/// An event as delivered to a subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredEvent<M> {
    /// The concrete topic the event was published on.
    pub topic: Topic,
    /// Per-topic sequence number (starts at 1 and increases by 1 for each
    /// publication on the same topic).
    pub topic_seq: u64,
    /// Bus-wide sequence number, totally ordering all publications.
    pub global_seq: u64,
    /// Virtual timestamp supplied by the publisher (0 when unspecified).
    pub timestamp: u64,
    /// The message itself.
    pub payload: M,
    /// Causal trace context captured from the publisher's ambient scope
    /// (`oasis_obs::current()`), so a subscriber can parent its own span
    /// on the publication that caused it. `None` when the publisher was
    /// not inside a traced request.
    pub trace: Option<oasis_obs::TraceCtx>,
}

/// What a bounded mailbox does when a new event arrives while full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Discard the incoming event (the subscriber keeps the oldest backlog).
    #[default]
    DropNewest,
    /// Discard the oldest queued event to make room (subscriber keeps the
    /// freshest view — appropriate for heartbeat-style topics).
    DropOldest,
}

struct Mailbox<M> {
    queue: Mutex<VecDeque<DeliveredEvent<M>>>,
    available: Condvar,
    capacity: Option<usize>,
    policy: OverflowPolicy,
    closed: AtomicBool,
}

impl<M> Mailbox<M> {
    fn new(capacity: Option<usize>, policy: OverflowPolicy) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity,
            policy,
            closed: AtomicBool::new(false),
        }
    }

    /// Pushes an event, returning the event an overflow discarded (the
    /// incoming one under [`OverflowPolicy::DropNewest`], the oldest
    /// queued one under [`OverflowPolicy::DropOldest`]), or `None` when
    /// nothing was dropped.
    fn push(&self, event: DeliveredEvent<M>) -> Option<DeliveredEvent<M>> {
        let mut queue = self.queue.lock();
        let mut dropped = None;
        if let Some(cap) = self.capacity {
            if queue.len() >= cap {
                match self.policy {
                    OverflowPolicy::DropNewest => {
                        return Some(event);
                    }
                    OverflowPolicy::DropOldest => {
                        dropped = queue.pop_front();
                    }
                }
            }
        }
        queue.push_back(event);
        drop(queue);
        self.available.notify_one();
        dropped
    }

    fn try_recv(&self) -> Result<DeliveredEvent<M>, EventError> {
        let mut queue = self.queue.lock();
        match queue.pop_front() {
            Some(e) => Ok(e),
            None if self.closed.load(Ordering::Acquire) => Err(EventError::Disconnected),
            None => Err(EventError::Empty),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<DeliveredEvent<M>, EventError> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(e) = queue.pop_front() {
                return Ok(e);
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(EventError::Disconnected);
            }
            if self.available.wait_for(&mut queue, timeout).timed_out() {
                return Err(EventError::Empty);
            }
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.available.notify_all();
    }

    fn len(&self) -> usize {
        self.queue.lock().len()
    }
}

struct QueuedSub<M> {
    pattern: TopicPattern,
    mailbox: Arc<Mailbox<M>>,
}

type Callback<M> = Box<dyn Fn(&DeliveredEvent<M>) + Send + Sync>;

struct CallbackSub<M> {
    pattern: TopicPattern,
    callback: Callback<M>,
}

/// One retention rule: topics matching `pattern` keep their last
/// `capacity` events in a replayable ring.
struct RetentionCfg {
    pattern: TopicPattern,
    capacity: usize,
}

struct Inner<M> {
    queued: RwLock<HashMap<SubscriptionId, QueuedSub<M>>>,
    callbacks: RwLock<HashMap<CallbackId, CallbackSub<M>>>,
    topic_seq: Mutex<HashMap<Topic, u64>>,
    retention: RwLock<Vec<RetentionCfg>>,
    rings: Mutex<HashMap<Topic, VecDeque<DeliveredEvent<M>>>>,
    next_sub: AtomicU64,
    next_cb: AtomicU64,
    global_seq: AtomicU64,
    stats: StatsCounters,
}

/// A topic-based publish/subscribe bus carrying messages of type `M`.
///
/// Cloning an `EventBus` produces another handle to the same bus. The bus is
/// thread-safe; publications from different threads are totally ordered by
/// [`DeliveredEvent::global_seq`].
///
/// # Example
///
/// ```
/// use oasis_events::{EventBus, Topic};
///
/// let bus: EventBus<u32> = EventBus::new();
/// let sub = bus.subscribe("alerts.#").unwrap();
/// bus.publish(&Topic::new("alerts.fire"), 7);
/// assert_eq!(sub.try_recv().unwrap().payload, 7);
/// ```
pub struct EventBus<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for EventBus<M> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> fmt::Debug for EventBus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("queued_subscriptions", &self.inner.queued.read().len())
            .field("callback_subscriptions", &self.inner.callbacks.read().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<M> Default for EventBus<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventBus<M> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                queued: RwLock::new(HashMap::new()),
                callbacks: RwLock::new(HashMap::new()),
                topic_seq: Mutex::new(HashMap::new()),
                retention: RwLock::new(Vec::new()),
                rings: Mutex::new(HashMap::new()),
                next_sub: AtomicU64::new(1),
                next_cb: AtomicU64::new(1),
                global_seq: AtomicU64::new(0),
                stats: StatsCounters::default(),
            }),
        }
    }

    /// Subscribes with an unbounded mailbox.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidTopic`] if `pattern` does not parse.
    pub fn subscribe(&self, pattern: impl AsRef<str>) -> Result<Subscription<M>, EventError> {
        self.subscribe_with(pattern, None, OverflowPolicy::default())
    }

    /// Subscribes with a bounded mailbox of `capacity` events and the given
    /// overflow policy.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidTopic`] if `pattern` does not parse.
    pub fn subscribe_bounded(
        &self,
        pattern: impl AsRef<str>,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Result<Subscription<M>, EventError> {
        self.subscribe_with(pattern, Some(capacity), policy)
    }

    fn subscribe_with(
        &self,
        pattern: impl AsRef<str>,
        capacity: Option<usize>,
        policy: OverflowPolicy,
    ) -> Result<Subscription<M>, EventError> {
        let pattern = TopicPattern::parse(pattern.as_ref())?;
        let id = SubscriptionId(self.inner.next_sub.fetch_add(1, Ordering::Relaxed));
        let mailbox = Arc::new(Mailbox::new(capacity, policy));
        self.inner.queued.write().insert(
            id,
            QueuedSub {
                pattern,
                mailbox: Arc::clone(&mailbox),
            },
        );
        Ok(Subscription {
            id,
            mailbox,
            bus: Arc::downgrade(&self.inner),
        })
    }

    /// Registers a callback that runs *inline on the publisher's thread* for
    /// every event matching `pattern`.
    ///
    /// Inline delivery is what gives OASIS its "active" quality: a
    /// revocation callback has completed — and the dependent role subtree
    /// has collapsed — before the publisher's `publish` call returns.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidTopic`] if `pattern` does not parse.
    pub fn subscribe_fn(
        &self,
        pattern: impl AsRef<str>,
        callback: impl Fn(&DeliveredEvent<M>) + Send + Sync + 'static,
    ) -> Result<CallbackId, EventError> {
        let pattern = TopicPattern::parse(pattern.as_ref())?;
        let id = CallbackId(self.inner.next_cb.fetch_add(1, Ordering::Relaxed));
        self.inner.callbacks.write().insert(
            id,
            CallbackSub {
                pattern,
                callback: Box::new(callback),
            },
        );
        Ok(id)
    }

    /// Removes a callback subscription.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnknownSubscription`] if `id` is not live.
    pub fn remove_callback(&self, id: CallbackId) -> Result<(), EventError> {
        self.inner
            .callbacks
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or(EventError::UnknownSubscription(id.0))
    }

    /// Publishes an event with timestamp 0; see [`EventBus::publish_at`].
    pub fn publish(&self, topic: &Topic, payload: M) -> usize
    where
        M: Clone,
    {
        self.publish_at(topic, payload, 0)
    }

    /// Publishes an event carrying a caller-supplied virtual `timestamp`,
    /// returning the number of subscribers it was delivered to (queued
    /// mailboxes that accepted it plus callbacks invoked).
    ///
    /// Events matching no subscription are counted as dead letters in
    /// [`BusStats`].
    ///
    /// # Overflow self-events
    ///
    /// When a bounded mailbox overflows, the discarded payload is
    /// republished on [`OVERFLOW_TOPIC_PREFIX`]`.<original topic>` so
    /// monitors (and tests) can observe exactly what was lost — a dropped
    /// revocation notice is a safety event, not a statistic. Self-events
    /// are counted in [`BusStats::overflow_events`] and are never
    /// themselves re-announced: a drop on a `bus.overflow.*` topic only
    /// increments [`BusStats::dropped_overflow`].
    pub fn publish_at(&self, topic: &Topic, payload: M, timestamp: u64) -> usize
    where
        M: Clone,
    {
        self.publish_at_tracked(topic, payload, timestamp).2
    }

    /// Like [`EventBus::publish_at`], but also returns the sequence
    /// numbers the publication was assigned: `(topic_seq, global_seq,
    /// delivered)`. Durable publishers journal these so a restarted
    /// (or failed-over) node can restore its retained ring with the
    /// *original* numbering and serve gap-free replays.
    pub fn publish_at_tracked(&self, topic: &Topic, payload: M, timestamp: u64) -> (u64, u64, usize)
    where
        M: Clone,
    {
        let global_seq = self.inner.global_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let topic_seq = {
            let mut seqs = self.inner.topic_seq.lock();
            let entry = seqs.entry(topic.clone()).or_insert(0);
            *entry += 1;
            *entry
        };
        let event = DeliveredEvent {
            topic: topic.clone(),
            topic_seq,
            global_seq,
            timestamp,
            payload,
            trace: oasis_obs::current(),
        };
        // Retain before delivery so a subscriber that resyncs from
        // inside an inline callback already sees this event.
        self.retain_event(&event);

        let mut delivered = 0;
        let mut overflowed: Vec<DeliveredEvent<M>> = Vec::new();
        {
            // read_recursive: a callback may itself publish (revocation
            // cascades re-enter the bus on the publisher's thread); a plain
            // read() could deadlock against a parked writer.
            let queued = self.inner.queued.read_recursive();
            for sub in queued.values() {
                if sub.pattern.matches(topic) {
                    if let Some(dropped) = sub.mailbox.push(event.clone()) {
                        self.inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                        overflowed.push(dropped);
                    }
                    delivered += 1;
                }
            }
        }
        {
            let callbacks = self.inner.callbacks.read_recursive();
            for sub in callbacks.values() {
                if sub.pattern.matches(topic) {
                    (sub.callback)(&event);
                    delivered += 1;
                }
            }
        }

        self.inner.stats.published.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .delivered
            .fetch_add(delivered as u64, Ordering::Relaxed);
        if delivered == 0 {
            self.inner
                .stats
                .dead_letters
                .fetch_add(1, Ordering::Relaxed);
        }
        // Announce drops after the delivery loops (no locks held), unless
        // the drop happened on an overflow topic itself — the announcement
        // stream must not amplify its own losses.
        if !topic.as_str().starts_with(OVERFLOW_TOPIC_PREFIX) {
            for dropped in overflowed {
                self.inner
                    .stats
                    .overflow_events
                    .fetch_add(1, Ordering::Relaxed);
                self.publish_at(
                    &Topic::new(format!(
                        "{OVERFLOW_TOPIC_PREFIX}.{}",
                        dropped.topic.as_str()
                    )),
                    dropped.payload,
                    timestamp,
                );
            }
        }
        (topic_seq, global_seq, delivered)
    }

    /// Copies `event` into the retained ring of its topic, if any
    /// retention rule matches, evicting the oldest retained event when
    /// the ring is at capacity.
    fn retain_event(&self, event: &DeliveredEvent<M>)
    where
        M: Clone,
    {
        let retention = self.inner.retention.read();
        let Some(cfg) = retention.iter().find(|c| c.pattern.matches(&event.topic)) else {
            return;
        };
        let capacity = cfg.capacity;
        drop(retention);
        let mut rings = self.inner.rings.lock();
        let ring = rings.entry(event.topic.clone()).or_default();
        if ring.len() >= capacity {
            ring.pop_front();
            self.inner
                .stats
                .retained_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event.clone());
    }

    /// Enables bounded retention for topics matching `pattern`: each
    /// matching topic keeps its most recent `capacity` events in a ring
    /// replayable through [`EventBus::replay_after`]. Evicted events
    /// count in [`BusStats::retained_evictions`]; a subscriber whose
    /// watermark predates the ring learns its catch-up is incomplete.
    ///
    /// The first matching rule wins when several patterns overlap.
    /// Events published before retention was enabled are not retained.
    ///
    /// # Errors
    ///
    /// [`EventError::InvalidTopic`] if `pattern` does not parse, or
    /// [`EventError::InvalidCapacity`] for a zero capacity.
    pub fn retain(&self, pattern: impl AsRef<str>, capacity: usize) -> Result<(), EventError> {
        if capacity == 0 {
            return Err(EventError::InvalidCapacity);
        }
        let pattern = TopicPattern::parse(pattern.as_ref())?;
        self.inner
            .retention
            .write()
            .push(RetentionCfg { pattern, capacity });
        Ok(())
    }

    /// Replays the retained events of `topic` with `topic_seq >
    /// after_topic_seq`, oldest first. The second component is `true`
    /// when the replay is *gap-free*: every event published on the
    /// topic after the watermark is included. `false` means the ring
    /// has already evicted part of the range (or retention was not
    /// active for it) — the caller must treat its derived state as
    /// unverifiable and rebuild it from an authoritative source.
    pub fn replay_after(
        &self,
        topic: &Topic,
        after_topic_seq: u64,
    ) -> (Vec<DeliveredEvent<M>>, bool)
    where
        M: Clone,
    {
        let current = self.inner.topic_seq.lock().get(topic).copied().unwrap_or(0);
        if current <= after_topic_seq {
            return (Vec::new(), true);
        }
        let rings = self.inner.rings.lock();
        let events: Vec<DeliveredEvent<M>> = rings
            .get(topic)
            .map(|ring| {
                ring.iter()
                    .filter(|e| e.topic_seq > after_topic_seq)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        drop(rings);
        let expected = current - after_topic_seq;
        let complete = events.len() as u64 == expected
            && events.first().map(|e| e.topic_seq) == Some(after_topic_seq + 1);
        (events, complete)
    }

    /// Restores a previously published event into its topic's retained
    /// ring with its *original* sequence numbers, without delivering it
    /// to any subscriber. Used by recovery: a restarted or failed-over
    /// publisher replays its journalled publications through here so
    /// [`EventBus::replay_after`] serves the same gap-free window the
    /// lost node did.
    ///
    /// Idempotent (an event already in the ring is skipped) and
    /// order-insensitive (events are inserted in `topic_seq` order).
    /// The per-topic and global sequence counters are raised to cover
    /// the event so later publications continue the numbering; this
    /// happens even when no retention rule matches the topic.
    pub fn restore_retained(&self, event: DeliveredEvent<M>)
    where
        M: Clone,
    {
        {
            let mut seqs = self.inner.topic_seq.lock();
            let entry = seqs.entry(event.topic.clone()).or_insert(0);
            if event.topic_seq > *entry {
                *entry = event.topic_seq;
            }
        }
        self.inner
            .global_seq
            .fetch_max(event.global_seq, Ordering::Relaxed);
        let retention = self.inner.retention.read();
        let Some(cfg) = retention.iter().find(|c| c.pattern.matches(&event.topic)) else {
            return;
        };
        let capacity = cfg.capacity;
        drop(retention);
        let mut rings = self.inner.rings.lock();
        let ring = rings.entry(event.topic.clone()).or_default();
        if ring.iter().any(|e| e.topic_seq == event.topic_seq) {
            return;
        }
        let pos = ring.partition_point(|e| e.topic_seq < event.topic_seq);
        ring.insert(pos, event);
        while ring.len() > capacity {
            ring.pop_front();
            self.inner
                .stats
                .retained_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many events the retained ring of `topic` currently holds.
    pub fn retained_len(&self, topic: &Topic) -> usize {
        self.inner
            .rings
            .lock()
            .get(topic)
            .map(VecDeque::len)
            .unwrap_or(0)
    }

    /// The current per-topic sequence number of `topic` (0 if nothing
    /// was ever published on it). A durable subscriber compares this
    /// with its persisted watermark to detect missed events.
    pub fn topic_seq(&self, topic: &Topic) -> u64 {
        self.inner.topic_seq.lock().get(topic).copied().unwrap_or(0)
    }

    /// Number of live subscriptions (queued + callback).
    pub fn subscription_count(&self) -> usize {
        self.inner.queued.read().len() + self.inner.callbacks.read().len()
    }

    /// A snapshot of delivery statistics.
    pub fn stats(&self) -> BusStats {
        self.inner.stats.snapshot()
    }

    /// Registers this bus's stats as a snapshot source named `name` on
    /// `recorder`, so one `Recorder::snapshot_json` call covers the bus
    /// alongside every other subsystem.
    pub fn register_obs(&self, recorder: &dyn oasis_obs::Recorder, name: &str)
    where
        M: Send + Sync + 'static,
    {
        let inner = Arc::clone(&self.inner);
        recorder.register_source(name, Box::new(move || inner.stats.snapshot().trace_json()));
    }
}

/// A queued subscription handle; dropping it unsubscribes.
pub struct Subscription<M> {
    id: SubscriptionId,
    mailbox: Arc<Mailbox<M>>,
    bus: std::sync::Weak<Inner<M>>,
}

impl<M> fmt::Debug for Subscription<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("pending", &self.mailbox.len())
            .finish()
    }
}

impl<M> Subscription<M> {
    /// This subscription's identifier.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Pops the next pending event without blocking.
    ///
    /// # Errors
    ///
    /// [`EventError::Empty`] if no event is pending, or
    /// [`EventError::Disconnected`] if the bus has been dropped and the
    /// backlog is exhausted.
    pub fn try_recv(&self) -> Result<DeliveredEvent<M>, EventError> {
        self.mailbox.try_recv()
    }

    /// Blocks up to `timeout` for the next event.
    ///
    /// # Errors
    ///
    /// [`EventError::Empty`] on timeout, [`EventError::Disconnected`] if the
    /// bus has been dropped and the backlog is exhausted.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<DeliveredEvent<M>, EventError> {
        self.mailbox.recv_timeout(timeout)
    }

    /// Drains every currently pending event.
    pub fn drain(&self) -> Vec<DeliveredEvent<M>> {
        let mut out = Vec::new();
        while let Ok(e) = self.try_recv() {
            out.push(e);
        }
        out
    }

    /// Number of events waiting in the mailbox.
    pub fn pending(&self) -> usize {
        self.mailbox.len()
    }
}

impl<M> Drop for Subscription<M> {
    fn drop(&mut self) {
        if let Some(inner) = self.bus.upgrade() {
            inner.queued.write().remove(&self.id);
        }
        self.mailbox.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_matching_subscriber() {
        let bus: EventBus<&'static str> = EventBus::new();
        let sub = bus.subscribe("a.b").unwrap();
        let n = bus.publish(&Topic::new("a.b"), "hello");
        assert_eq!(n, 1);
        assert_eq!(sub.try_recv().unwrap().payload, "hello");
    }

    #[test]
    fn publish_skips_non_matching_subscriber() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("a.b").unwrap();
        let n = bus.publish(&Topic::new("a.c"), 1);
        assert_eq!(n, 0);
        assert_eq!(sub.try_recv(), Err(EventError::Empty));
    }

    #[test]
    fn wildcard_subscription_sees_all_children() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("cred.revoked.*").unwrap();
        bus.publish(&Topic::new("cred.revoked.hospital"), 1);
        bus.publish(&Topic::new("cred.revoked.clinic"), 2);
        bus.publish(&Topic::new("cred.issued.clinic"), 3);
        let got: Vec<u8> = sub.drain().into_iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn per_topic_sequence_numbers_increase() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("#").unwrap();
        bus.publish(&Topic::new("x"), 0);
        bus.publish(&Topic::new("y"), 0);
        bus.publish(&Topic::new("x"), 0);
        let events = sub.drain();
        assert_eq!(events[0].topic_seq, 1); // x #1
        assert_eq!(events[1].topic_seq, 1); // y #1
        assert_eq!(events[2].topic_seq, 2); // x #2
        assert!(events[0].global_seq < events[1].global_seq);
        assert!(events[1].global_seq < events[2].global_seq);
    }

    #[test]
    fn callback_runs_inline() {
        let bus: EventBus<u8> = EventBus::new();
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        bus.subscribe_fn("r.#", move |e| {
            hits2.fetch_add(u64::from(e.payload), Ordering::Relaxed);
        })
        .unwrap();
        bus.publish(&Topic::new("r.a"), 5);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn removed_callback_no_longer_fires() {
        let bus: EventBus<u8> = EventBus::new();
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        let id = bus
            .subscribe_fn("r", move |_| {
                hits2.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        bus.publish(&Topic::new("r"), 0);
        bus.remove_callback(id).unwrap();
        bus.publish(&Topic::new("r"), 0);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(
            bus.remove_callback(id),
            Err(EventError::UnknownSubscription(id.0))
        );
    }

    #[test]
    fn dropping_subscription_unsubscribes() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("t").unwrap();
        assert_eq!(bus.subscription_count(), 1);
        drop(sub);
        assert_eq!(bus.subscription_count(), 0);
        assert_eq!(bus.publish(&Topic::new("t"), 1), 0);
    }

    #[test]
    fn bounded_drop_newest_keeps_oldest() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus
            .subscribe_bounded("t", 2, OverflowPolicy::DropNewest)
            .unwrap();
        for i in 0..4 {
            bus.publish(&Topic::new("t"), i);
        }
        let got: Vec<u8> = sub.drain().into_iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![0, 1]);
        assert_eq!(bus.stats().dropped_overflow, 2);
    }

    #[test]
    fn bounded_drop_oldest_keeps_newest() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus
            .subscribe_bounded("t", 2, OverflowPolicy::DropOldest)
            .unwrap();
        for i in 0..4 {
            bus.publish(&Topic::new("t"), i);
        }
        let got: Vec<u8> = sub.drain().into_iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn overflow_publishes_self_event_with_dropped_payload() {
        let bus: EventBus<u8> = EventBus::new();
        let monitor = bus.subscribe("bus.overflow.#").unwrap();
        let _narrow = bus
            .subscribe_bounded("t", 1, OverflowPolicy::DropNewest)
            .unwrap();
        bus.publish(&Topic::new("t"), 1);
        bus.publish(&Topic::new("t"), 2);
        let lost = monitor.drain();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].topic.as_str(), "bus.overflow.t");
        assert_eq!(lost[0].payload, 2, "DropNewest discards the incoming event");
        let stats = bus.stats();
        assert_eq!(stats.dropped_overflow, 1);
        assert_eq!(stats.overflow_events, 1);
    }

    #[test]
    fn overflow_self_event_carries_oldest_under_drop_oldest() {
        let bus: EventBus<u8> = EventBus::new();
        let monitor = bus.subscribe("bus.overflow.#").unwrap();
        let sub = bus
            .subscribe_bounded("t", 1, OverflowPolicy::DropOldest)
            .unwrap();
        bus.publish_at(&Topic::new("t"), 1, 7);
        bus.publish_at(&Topic::new("t"), 2, 8);
        let lost = monitor.drain();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].payload, 1, "DropOldest discards the queued event");
        assert_eq!(lost[0].timestamp, 8, "stamped with the drop-time publish");
        assert_eq!(sub.try_recv().unwrap().payload, 2);
    }

    #[test]
    fn overflow_of_the_overflow_topic_does_not_recurse() {
        let bus: EventBus<u8> = EventBus::new();
        // A monitor so congested it loses the announcements themselves.
        let monitor = bus
            .subscribe_bounded("bus.overflow.#", 1, OverflowPolicy::DropNewest)
            .unwrap();
        let _narrow = bus
            .subscribe_bounded("t", 1, OverflowPolicy::DropNewest)
            .unwrap();
        for i in 0..4 {
            bus.publish(&Topic::new("t"), i);
        }
        // 3 drops on `t` → 3 announcements, of which the monitor kept 1
        // and dropped 2; those 2 drops are counted but not re-announced.
        assert_eq!(monitor.pending(), 1);
        let stats = bus.stats();
        assert_eq!(stats.overflow_events, 3);
        assert_eq!(stats.dropped_overflow, 5);
    }

    #[test]
    fn retained_ring_replays_after_watermark() {
        let bus: EventBus<u8> = EventBus::new();
        bus.retain("cred.revoked.*", 8).unwrap();
        let topic = Topic::new("cred.revoked.login");
        for i in 0..5 {
            bus.publish_at(&topic, i, u64::from(i));
        }
        let (events, complete) = bus.replay_after(&topic, 2);
        assert!(complete);
        let got: Vec<u8> = events.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(events[0].topic_seq, 3);
        // Watermark at the head: nothing to replay, still complete.
        let (none, complete) = bus.replay_after(&topic, 5);
        assert!(none.is_empty());
        assert!(complete);
    }

    #[test]
    fn eviction_makes_replay_incomplete_and_is_counted() {
        let bus: EventBus<u8> = EventBus::new();
        bus.retain("t", 2).unwrap();
        let topic = Topic::new("t");
        for i in 0..5 {
            bus.publish(&topic, i);
        }
        assert_eq!(bus.stats().retained_evictions, 3);
        assert_eq!(bus.retained_len(&topic), 2);
        // Events 1..=3 are gone; a subscriber at watermark 0 cannot be
        // made whole from the ring.
        let (events, complete) = bus.replay_after(&topic, 0);
        assert!(!complete);
        assert_eq!(events.len(), 2);
        // A subscriber whose watermark is inside the ring is fine.
        let (events, complete) = bus.replay_after(&topic, 3);
        assert!(complete);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn unretained_topic_with_history_replays_incomplete() {
        let bus: EventBus<u8> = EventBus::new();
        let topic = Topic::new("t");
        bus.publish(&topic, 1);
        bus.retain("t", 4).unwrap();
        bus.publish(&topic, 2);
        // Seq 1 predates retention: replay from 0 must admit the gap.
        let (events, complete) = bus.replay_after(&topic, 0);
        assert!(!complete);
        assert_eq!(events.len(), 1);
        assert_eq!(bus.topic_seq(&topic), 2);
    }

    #[test]
    fn zero_capacity_retention_rejected() {
        let bus: EventBus<u8> = EventBus::new();
        assert_eq!(bus.retain("t", 0), Err(EventError::InvalidCapacity));
    }

    #[test]
    fn dead_letters_counted() {
        let bus: EventBus<u8> = EventBus::new();
        bus.publish(&Topic::new("nobody.home"), 1);
        let stats = bus.stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.dead_letters, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn recv_timeout_times_out_when_idle() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("t").unwrap();
        let res = sub.recv_timeout(Duration::from_millis(10));
        assert_eq!(res, Err(EventError::Empty));
    }

    #[test]
    fn recv_timeout_wakes_on_publish_from_other_thread() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("t").unwrap();
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            bus2.publish(&Topic::new("t"), 9);
        });
        let event = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(event.payload, 9);
        handle.join().unwrap();
    }

    #[test]
    fn timestamps_are_carried() {
        let bus: EventBus<u8> = EventBus::new();
        let sub = bus.subscribe("t").unwrap();
        bus.publish_at(&Topic::new("t"), 1, 12_345);
        assert_eq!(sub.try_recv().unwrap().timestamp, 12_345);
    }

    #[test]
    fn concurrent_publishers_totally_ordered() {
        let bus: EventBus<u64> = EventBus::new();
        let sub = bus.subscribe("#").unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let bus = bus.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    bus.publish(&Topic::new(format!("p{t}")), i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = sub.drain();
        assert_eq!(events.len(), 400);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.global_seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "global sequence numbers must be unique");
    }

    #[test]
    fn restore_retained_rebuilds_gap_free_replay() {
        let topic = Topic::new("cred.revoked.civ");
        // Original bus publishes three retained events.
        let bus: EventBus<u8> = EventBus::new();
        bus.retain("cred.revoked.#", 16).unwrap();
        let mut published = Vec::new();
        for i in 1..=3u8 {
            let (ts, gs, _) = bus.publish_at_tracked(&topic, i, u64::from(i) * 10);
            published.push((ts, gs));
        }
        let (retained, complete) = bus.replay_after(&topic, 0);
        assert!(complete);
        // A failed-over bus restores from the journalled publications,
        // delivered out of order and with one duplicate.
        let promoted: EventBus<u8> = EventBus::new();
        promoted.retain("cred.revoked.#", 16).unwrap();
        promoted.restore_retained(retained[2].clone());
        promoted.restore_retained(retained[0].clone());
        promoted.restore_retained(retained[1].clone());
        promoted.restore_retained(retained[1].clone());
        let (replayed, complete) = promoted.replay_after(&topic, 0);
        assert!(complete, "restored ring must serve a gap-free replay");
        assert_eq!(replayed.len(), 3);
        assert_eq!(
            replayed.iter().map(|e| e.topic_seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Counters resumed: the next publication continues the numbering.
        let (ts, gs, _) = promoted.publish_at_tracked(&topic, 9, 99);
        assert_eq!(ts, 4);
        assert!(gs > published[2].1);
    }

    #[test]
    fn restore_retained_raises_counters_without_retention_rule() {
        let topic = Topic::new("plain.topic");
        let bus: EventBus<u8> = EventBus::new();
        bus.restore_retained(DeliveredEvent {
            topic: topic.clone(),
            topic_seq: 7,
            global_seq: 40,
            timestamp: 0,
            payload: 1,
            trace: None,
        });
        assert_eq!(bus.topic_seq(&topic), 7);
        assert_eq!(bus.retained_len(&topic), 0);
        let (ts, gs, _) = bus.publish_at_tracked(&topic, 2, 0);
        assert_eq!(ts, 8);
        assert!(gs > 40);
    }
}
