//! TAB-D — validation latency under issuer failure: circuit breaker
//! open vs closed.
//!
//! Sect. 4's validation callback is a network round trip, and when the
//! issuer is down every callback burns its full deadline — once per
//! retry. The [`ResilientValidator`] breaker exists to convert that
//! repeated deadline-burning into an immediate local refusal after the
//! first few failures. This table measures exactly that trade on the
//! full service hot path (`validate_credential` with a heartbeat-watched
//! issuer):
//!
//! * `healthy_hit` — issuer healthy, entry cached: the fast path.
//! * `outage_no_breaker` — issuer down, breaker disabled: every
//!   validation pays the modelled deadline once per retry attempt.
//! * `outage_breaker_open` — issuer down, breaker open: validations
//!   fast-fail with [`CircuitOpen`](oasis::core::OasisError::CircuitOpen)
//!   without touching the network.
//!
//! Reported (also emitted to `BENCH_degradation.json`): p50/p99 latency
//! per series and the open-breaker speedup over the no-breaker outage
//! path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::core::retry::RetryPolicy;
use oasis::core::{BreakerConfig, HeartbeatConfig, ResilientValidator};
use oasis::prelude::*;
use oasis_bench::{percentile, table_header};

/// Modelled issuer round trip — and, symmetrically, the deadline an
/// attempt burns when the issuer is down.
const CALLBACK_LATENCY: Duration = Duration::from_micros(500);

/// Attempts per validation (first try + retries) when the issuer is down.
const ATTEMPTS: u32 = 3;

/// A registry-backed issuer endpoint that answers after the modelled
/// round trip while up, and burns the same deadline before timing out
/// while down.
struct FlakyIssuer {
    inner: Arc<LocalRegistry>,
    up: AtomicBool,
}

impl CredentialValidator for FlakyIssuer {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        thread::sleep(CALLBACK_LATENCY);
        if self.up.load(Ordering::Relaxed) {
            self.inner.validate(credential, presenter, now)
        } else {
            Err(OasisError::IssuerTimeout(credential.issuer().clone()))
        }
    }
}

struct World {
    #[allow(dead_code)]
    login: Arc<oasis::core::OasisService>,
    hospital: Arc<oasis::core::OasisService>,
    issuer: Arc<FlakyIssuer>,
    resilient: Arc<ResilientValidator>,
    cred: Credential,
    doctor: PrincipalId,
}

/// login.logged_in feeds a heartbeat-watching hospital whose validator is
/// a [`ResilientValidator`] over the flaky issuer endpoint.
fn world(breaker: BreakerConfig) -> World {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();

    let login = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    login
        .define_role("logged_in", &[("u", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_validation_cache(1_000_000)
            .with_heartbeats(HeartbeatConfig::default()),
        Arc::clone(&facts),
    );

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    let issuer = Arc::new(FlakyIssuer {
        inner: registry,
        up: AtomicBool::new(true),
    });
    let resilient = Arc::new(
        ResilientValidator::new(issuer.clone() as Arc<dyn CredentialValidator>)
            .with_retry(RetryPolicy::immediate(ATTEMPTS))
            .with_breaker(breaker),
    );
    hospital.set_validator(resilient.clone());
    hospital.watch_issuer(&ServiceId::new("login"), 10, 0);

    let doctor = PrincipalId::new("alice");
    let rmc = login
        .activate_role(
            &doctor,
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(0),
        )
        .unwrap();

    World {
        login,
        hospital,
        issuer,
        resilient,
        cred: Credential::Rmc(rmc),
        doctor,
    }
}

/// Runs `samples` validations at virtual time `now` and returns the
/// sorted per-call latencies in nanoseconds.
fn measure(w: &World, now: u64, samples: usize) -> Vec<u64> {
    let mut lat: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = w.hospital.validate_credential(&w.cred, &w.doctor, now);
            start.elapsed().as_nanos() as u64
        })
        .collect();
    lat.sort_unstable();
    lat
}

struct Series {
    name: &'static str,
    p50_us: f64,
    p99_us: f64,
    samples: usize,
}

fn degradation_table() -> String {
    const SAMPLES: usize = 300;

    table_header(
        "TAB-D validation latency under issuer failure",
        "the breaker converts per-call deadline burning into local refusal",
        "series               p50        p99",
    );

    // Healthy, cached: beat now, validate once to populate, then measure
    // hits at the same tick.
    let w = world(BreakerConfig::default());
    w.hospital.issuer_beat(&ServiceId::new("login"), 1);
    w.hospital
        .validate_credential(&w.cred, &w.doctor, 1)
        .unwrap();
    let healthy = measure(&w, 2, SAMPLES);

    // Outage without a breaker (threshold effectively infinite): the
    // issuer has gone silent (late from tick 11), every validation is
    // suspect and pays the deadline once per attempt.
    let w = world(BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown_ticks: 1,
    });
    w.issuer.up.store(false, Ordering::Relaxed);
    let no_breaker = measure(&w, 50, SAMPLES);

    // Outage with the breaker open: prime it past the threshold, then
    // measure fast-fails inside the cooldown window.
    let w = world(BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 1_000_000,
    });
    w.issuer.up.store(false, Ordering::Relaxed);
    let _ = w.hospital.validate_credential(&w.cred, &w.doctor, 50);
    assert_eq!(w.resilient.breaker_state(&ServiceId::new("login")), "open");
    let open = measure(&w, 51, SAMPLES);
    assert!(
        w.resilient.stats().breaker_fast_fails >= SAMPLES as u64,
        "open-breaker series must be answered by fast-fails"
    );

    let us = |ns: u64| ns as f64 / 1_000.0;
    let series = [
        ("healthy_hit", &healthy),
        ("outage_no_breaker", &no_breaker),
        ("outage_breaker_open", &open),
    ]
    .map(|(name, lat)| Series {
        name,
        p50_us: us(percentile(lat, 50.0)),
        p99_us: us(percentile(lat, 99.0)),
        samples: lat.len(),
    });

    for s in &series {
        println!("{:<20} {:>7.1}us  {:>7.1}us", s.name, s.p50_us, s.p99_us);
    }
    let speedup = series[1].p50_us / series[2].p50_us.max(0.001);
    println!("open-breaker speedup over no-breaker outage p50: {speedup:.0}x");
    assert!(
        series[2].p99_us < series[1].p50_us,
        "an open breaker must fast-fail well under the no-breaker outage \
         p50: {:.1}us vs {:.1}us",
        series[2].p99_us,
        series[1].p50_us
    );

    let json_series = series
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"samples\": {}}}",
                s.name, s.p50_us, s.p99_us, s.samples
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"table_degradation\",\n  \"callback_latency_us\": {},\n  \"attempts_per_validation\": {},\n  \"series\": [\n{}\n  ],\n  \"open_breaker_speedup_p50\": {:.1}\n}}\n",
        CALLBACK_LATENCY.as_micros(),
        ATTEMPTS,
        json_series,
        speedup,
    )
}

fn bench_degradation(c: &mut Criterion) {
    let json = degradation_table();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_degradation.json");
    std::fs::write(out, json).expect("write BENCH_degradation.json");
    println!("wrote {out}");

    let mut group = c.benchmark_group("degraded_validation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("breaker", "closed_healthy"), |b| {
        let w = world(BreakerConfig::default());
        w.hospital.issuer_beat(&ServiceId::new("login"), 1);
        w.hospital
            .validate_credential(&w.cred, &w.doctor, 1)
            .unwrap();
        b.iter(|| w.hospital.validate_credential(&w.cred, &w.doctor, 2));
    });
    group.bench_function(BenchmarkId::new("breaker", "open_fast_fail"), |b| {
        let w = world(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 1_000_000,
        });
        w.issuer.up.store(false, Ordering::Relaxed);
        let _ = w.hospital.validate_credential(&w.cred, &w.doctor, 50);
        b.iter(|| w.hospital.validate_credential(&w.cred, &w.doctor, 51));
    });
    group.finish();
}

criterion_group!(benches, bench_degradation);
criterion_main!(benches);
