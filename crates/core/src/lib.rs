//! OASIS role-based access control: the model and engine of
//! *Access Control and Trust in the Use of Widely Distributed Services*
//! (Bacon, Moody, Yao; Middleware 2001).
//!
//! OASIS differs from classical RBAC in ways this crate implements
//! directly:
//!
//! * **Roles are service-specific and parametrised** — an
//!   [`OasisService`] defines its own client roles ([`RoleDef`]) such as
//!   `treating_doctor(doctor_id, patient_id)`; there is no global role
//!   administration.
//! * **Credential-based role activation** — each role is guarded by
//!   [`ActivationRule`]s in Horn-clause form whose conditions are
//!   prerequisite roles, appointment certificates, and environmental
//!   constraints, evaluated with full unification over role parameters.
//! * **Sessions and active security** — activating an *initial role*
//!   starts a [`Session`]; further activations build a dependency forest.
//!   The *membership rule* (a subset of the activation conditions) is
//!   monitored continuously: when a supporting credential is revoked or an
//!   environmental fact is retracted, the role is deactivated at once and
//!   the dependent subtree collapses (Fig 5 of the paper), driven by the
//!   `oasis-events` bus rather than polling.
//! * **Appointment, not delegation** — roles may carry the privilege of
//!   issuing long-lived [`AppointmentCertificate`]s
//!   (qualifications, employment, membership) which other rules accept as
//!   credentials. The appointer need not hold the privileges conferred.
//! * **Protected certificates** — role membership certificates
//!   ([`Rmc`](cert::Rmc)) are MAC-protected and principal-specific
//!   (`F(principal_id, fields, SECRET)`, Fig 4) and carry a credential
//!   record reference ([`Crr`]) for validation by callback to the issuer.
//!
//! # Quick start
//!
//! ```
//! use oasis_core::{
//!     Atom, EnvContext, OasisService, RoleName, ServiceConfig, Term, Value,
//! };
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), oasis_core::OasisError> {
//! let facts = Arc::new(oasis_facts::FactStore::new());
//! let service = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
//!
//! // An initial role: no prerequisites, so activating it starts a session.
//! service.define_role("logged_in_user", &[("user", oasis_core::ValueType::Id)], true)?;
//! service.add_activation_rule(
//!     "logged_in_user",
//!     vec![Term::var("U")],
//!     vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
//!     vec![],
//! )?;
//!
//! facts.define("password_ok", 1).ok();
//! facts.insert("password_ok", vec![Value::id("alice")]).unwrap();
//!
//! let ctx = EnvContext::new(0);
//! let rmc = service.activate_role(
//!     &"alice".into(),
//!     &RoleName::new("logged_in_user"),
//!     &[Value::id("alice")],
//!     &[],
//!     &ctx,
//! )?;
//! assert_eq!(rmc.role.as_str(), "logged_in_user");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cert;
pub mod durable;
pub mod env;
mod error;
pub mod ids;
mod json;
pub mod overload;
pub mod pattern;
pub mod plan;
pub mod resilient;
pub mod retry;
pub mod role;
pub mod rule;
pub mod service;
pub mod session;
pub mod validate;
pub mod value;

pub use audit::{AuditEntry, AuditKind, AuditLog};
pub use cert::{
    AppointmentCertificate, CertEvent, CertEventKind, CredRecord, CredStatus, Credential,
    CredentialKind, Crr,
};
pub use durable::{
    CatchUpReport, RecoveryReport, SecurityEvent, ServiceJournal, ServiceSnapshot, SnapshotRecord,
    Watermark,
};
pub use env::{CmpOp, EnvContext};
pub use error::OasisError;
pub use ids::{CertId, DomainId, PrincipalId, RoleName, ServiceId, SessionId};
pub use overload::{
    AdmissionController, AdmitError, Clock, Deadline, Lane, LaneConfig, LaneSnapshot, ManualClock,
    OverloadConfig, OverloadStats, Permit, PollOutcome, Submission, Ticket, WallClock,
};
pub use pattern::{Bindings, Term, VarName};
pub use plan::{CheckPlan, CredIndex, PlanStats, RulePlan};
pub use resilient::{
    classify_error, BreakerConfig, ErrorClass, ResilientStats, ResilientValidator,
};
pub use retry::{Backoff, RetryPolicy};
pub use role::{ParamSchema, RoleDef};
pub use rule::{ActivationRule, Atom, InvocationRule, RuleId};
pub use service::{
    ActivationOutcome, DegradationPolicy, DegradationStats, HeartbeatConfig, OasisService,
    ServiceConfig, ValidationCacheStats,
};
pub use session::{Session, SessionView};
pub use validate::{CredentialValidator, LocalRegistry, ValidationOutcome};
pub use value::{Value, ValueType};
