//! Causal spans: `TraceCtx` propagation plus a deterministic span sink.
//!
//! A [`TraceCtx`] is three integers — `trace_id`, `parent_span`, `hop` —
//! small enough to ride in the wire envelope next to the deadline frame,
//! inside an admission ticket, or in a delivered event. Each subsystem
//! that does causally significant work calls [`SpanSink::emit`] with the
//! incoming context; the sink allocates the next sequential span id,
//! records one sorted-key JSON line, and returns the *child* context
//! (hop+1, parented on the new span) for the caller to pass downstream.
//! Under a virtual clock the whole chain — ids, timestamps, field order —
//! is byte-deterministic, so span logs can sit inside replay-compared
//! conformance traces.
//!
//! Cross-subsystem boundaries that cannot thread a parameter (the
//! journal's `StorageBackend` trait, synchronous event-bus callbacks) use
//! the *ambient* context instead: [`scope`] pins a context to the current
//! thread for a lexical region and [`current`] reads it back. This works
//! because the replicated CIV's `LocalMesh` and the event bus both run
//! their downstream work synchronously on the caller's thread.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::encode::kv_json;

/// A causal trace context: which end-to-end request this work belongs
/// to, which span caused it, and how many causal hops deep it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// End-to-end request id; every span of one causal chain shares it.
    pub trace_id: u64,
    /// Span id of the causing span (0 for a root).
    pub parent_span: u64,
    /// Causal depth: 0 at the client, +1 per emitted span.
    pub hop: u32,
}

impl TraceCtx {
    /// A root context (hop 0, no parent).
    pub fn root(trace_id: u64) -> Self {
        Self {
            trace_id,
            parent_span: 0,
            hop: 0,
        }
    }

    /// The context downstream work should carry after `span_id` was
    /// emitted for this one.
    pub fn child(&self, span_id: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            parent_span: span_id,
            hop: self.hop.saturating_add(1),
        }
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    lines: Mutex<Vec<String>>,
    next: AtomicU64,
}

/// A shared span recorder. The no-op variant ([`SpanSink::noop`]) makes
/// every `emit` a branch + copy, so instrumented code paths pay nothing
/// measurable when tracing is off.
#[derive(Debug, Clone, Default)]
pub struct SpanSink(Option<Arc<SinkInner>>);

impl SpanSink {
    /// A sink that records nothing; `emit` still returns child contexts
    /// (span id 0) so call sites need no branching.
    pub fn noop() -> Self {
        Self(None)
    }

    /// A recording sink with sequential span ids starting at 1.
    pub fn recording() -> Self {
        Self(Some(Arc::new(SinkInner::default())))
    }

    /// Whether spans are actually recorded.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Records one span for work `op` on `node` over `[t0, t1]` caused
    /// by `ctx`, and returns the context downstream work should carry.
    pub fn emit(&self, ctx: TraceCtx, node: &str, op: &str, t0: u64, t1: u64) -> TraceCtx {
        let Some(inner) = &self.0 else {
            return ctx.child(0);
        };
        let span = inner.next.fetch_add(1, Ordering::Relaxed) + 1;
        let line = kv_json(&[
            ("hop", ctx.hop.into()),
            ("node", node.into()),
            ("op", op.into()),
            ("parent", ctx.parent_span.into()),
            ("span", span.into()),
            ("t0", t0.into()),
            ("t1", t1.into()),
            ("trace", ctx.trace_id.into()),
        ]);
        inner.lines.lock().push(line);
        ctx.child(span)
    }

    /// Snapshot of the recorded span lines (empty for a no-op sink).
    pub fn lines(&self) -> Vec<String> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.lines.lock().clone(),
        }
    }

    /// Takes the recorded span lines, leaving the sink empty (span ids
    /// keep counting — determinism depends on emission order, not on
    /// when lines are collected).
    pub fn drain(&self) -> Vec<String> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => std::mem::take(&mut *inner.lines.lock()),
        }
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        match &self.0 {
            None => 0,
            Some(inner) => inner.lines.lock().len(),
        }
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// The innermost ambient context pinned to this thread by [`scope`].
pub fn current() -> Option<TraceCtx> {
    AMBIENT.with(|stack| stack.borrow().last().copied())
}

/// Pins `ctx` as this thread's ambient context until the returned guard
/// drops. Scopes nest (inner wins) and the guard is not `Send`.
pub fn scope(ctx: TraceCtx) -> ScopeGuard {
    AMBIENT.with(|stack| stack.borrow_mut().push(ctx));
    ScopeGuard {
        _not_send: PhantomData,
    }
}

/// Guard returned by [`scope`]; pops the ambient context on drop.
#[must_use = "the ambient context lasts only while the guard lives"]
#[derive(Debug)]
pub struct ScopeGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_chains_hops_and_parents() {
        let sink = SpanSink::recording();
        let root = TraceCtx::root(42);
        let after_client = sink.emit(root, "client", "revoke.request", 0, 1);
        assert_eq!(after_client.hop, 1);
        assert_eq!(after_client.parent_span, 1);
        let after_leader = sink.emit(after_client, "n0", "civ.append", 1, 3);
        assert_eq!(after_leader.hop, 2);
        assert_eq!(after_leader.parent_span, 2);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"hop":0,"node":"client","op":"revoke.request","parent":0,"span":1,"t0":0,"t1":1,"trace":42}"#
        );
        assert_eq!(
            lines[1],
            r#"{"hop":1,"node":"n0","op":"civ.append","parent":1,"span":2,"t0":1,"t1":3,"trace":42}"#
        );
    }

    #[test]
    fn noop_sink_records_nothing_but_still_chains() {
        let sink = SpanSink::noop();
        let ctx = sink.emit(TraceCtx::root(7), "n", "op", 0, 0);
        assert_eq!(ctx.hop, 1);
        assert!(!sink.is_recording());
        assert!(sink.is_empty());
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn identical_emission_sequences_are_byte_identical() {
        let run = |sink: &SpanSink| {
            let mut ctx = TraceCtx::root(9);
            for (i, op) in ["a", "b", "c"].iter().enumerate() {
                ctx = sink.emit(ctx, "n", op, i as u64, i as u64 + 1);
            }
        };
        let (a, b) = (SpanSink::recording(), SpanSink::recording());
        run(&a);
        run(&b);
        assert_eq!(a.lines(), b.lines());
    }

    #[test]
    fn ambient_scopes_nest_and_unwind() {
        assert_eq!(current(), None);
        let outer = scope(TraceCtx::root(1));
        assert_eq!(current().unwrap().trace_id, 1);
        {
            let _inner = scope(TraceCtx::root(2));
            assert_eq!(current().unwrap().trace_id, 2);
        }
        assert_eq!(current().unwrap().trace_id, 1);
        drop(outer);
        assert_eq!(current(), None);
    }

    #[test]
    fn drain_takes_lines_and_ids_keep_counting() {
        let sink = SpanSink::recording();
        sink.emit(TraceCtx::root(1), "n", "a", 0, 0);
        assert_eq!(sink.drain().len(), 1);
        assert!(sink.is_empty());
        sink.emit(TraceCtx::root(1), "n", "b", 0, 0);
        assert!(sink.lines()[0].contains(r#""span":2"#));
    }
}
