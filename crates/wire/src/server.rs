//! The server side: an [`OasisService`] behind a TCP listener, with
//! overload control.
//!
//! # Overload behaviour
//!
//! Connections are accepted into a bounded queue and served by a fixed
//! worker pool (no thread-per-connection: a connection flood cannot
//! exhaust threads). When the accept queue is full, new connections are
//! dropped at accept time and counted in
//! [`OverloadStats::conns_shed`](oasis_core::OverloadStats).
//!
//! Every request then passes the service's
//! [`AdmissionController`]: it is classified into a priority lane
//! ([`Request::lane`]) — revocation/resync/ping above validation above
//! issuance — and either granted an execution permit, queued in its
//! lane's bounded queue, shed with [`Response::Overloaded`] carrying a
//! `retry_after_ms` hint, or dropped with [`Response::DeadlineExceeded`]
//! if its propagated deadline passed first. A request is *never* executed
//! after its deadline.
//!
//! Transient `accept()` failures (connection resets, fd exhaustion) are
//! retried with capped backoff and recorded through the audit hook
//! (`transport_fault` entries); only fatal listener errors stop the serve
//! loop.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use oasis_core::{
    AdmissionController, AdmitError, AuditKind, CertId, Deadline, EnvContext, OasisService,
    OverloadConfig, RoleName,
};
use parking_lot::Mutex;

use crate::error::WireError;
use crate::frame::{read_frame, write_frame};
use crate::proto::{Envelope, Request, Response};

/// Builds the evaluation context for a given client-supplied virtual
/// time. Servers install ambient values and custom predicates here.
pub type ContextFactory = Arc<dyn Fn(u64) -> EnvContext + Send + Sync>;

/// Hosts one OASIS service over TCP.
pub struct WireServer {
    service: Arc<OasisService>,
    listener: TcpListener,
    context: ContextFactory,
    controller: Arc<AdmissionController>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("service", self.service.id())
            .finish()
    }
}

impl WireServer {
    /// Binds to `addr` and prepares to serve `service` with a default
    /// context (no ambient values or predicates) and the default
    /// [`OverloadConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound.
    pub fn bind(service: Arc<OasisService>, addr: &str) -> Result<Self, WireError> {
        Self::bind_with_context(service, addr, Arc::new(EnvContext::new))
    }

    /// As [`WireServer::bind`], with a custom [`ContextFactory`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound.
    pub fn bind_with_context(
        service: Arc<OasisService>,
        addr: &str,
        context: ContextFactory,
    ) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        let controller = AdmissionController::new(OverloadConfig::default());
        service.set_overload(Arc::clone(&controller));
        Ok(Self {
            service,
            listener,
            context,
            controller,
        })
    }

    /// Replaces the overload configuration (worker-pool size, accept
    /// queue bound, per-lane limits; or [`OverloadConfig::unlimited`] to
    /// emulate the legacy shed-nothing server). The fresh controller is
    /// installed into the service so its stats stay reachable via
    /// [`OasisService::overload_stats`].
    #[must_use]
    pub fn with_overload(mut self, config: OverloadConfig) -> Self {
        self.controller = AdmissionController::new(config);
        self.service.set_overload(Arc::clone(&self.controller));
        self
    }

    /// The admission controller guarding this server. Grab a clone before
    /// [`serve`](Self::serve) consumes the server if you need live stats.
    pub fn controller(&self) -> Arc<AdmissionController> {
        Arc::clone(&self.controller)
    }

    /// The actual bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket refuses to report it.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, WireError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts and serves connections until a fatal listener error.
    /// Connections are queued (bounded) to a fixed worker pool; a
    /// protocol error terminates only its own connection. Transient
    /// `accept` failures are retried with capped backoff and audited;
    /// only fatal errors return.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] carrying the fatal `accept` error.
    pub fn serve(self) -> Result<(), WireError> {
        let config = self.controller.config().clone();
        let (tx, rx) = sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            let context = Arc::clone(&self.context);
            let controller = Arc::clone(&self.controller);
            std::thread::spawn(move || worker_loop(&rx, &service, &context, &controller));
        }

        let mut consecutive_errors: u32 = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    consecutive_errors = 0;
                    match tx.try_send(stream) {
                        Ok(()) => self.controller.note_conn_accepted(),
                        Err(TrySendError::Full(stream)) => {
                            // Accept queue at its bound: shed the whole
                            // connection rather than buffering unboundedly.
                            self.controller.note_conn_shed();
                            drop(stream);
                        }
                        // All workers gone — nothing can serve.
                        Err(TrySendError::Disconnected(_)) => return Ok(()),
                    }
                }
                Err(e) if transient_accept_error(&e) => {
                    self.audit_fault("accept", &e);
                    let backoff =
                        Duration::from_millis((1u64 << consecutive_errors.min(7)).min(100));
                    consecutive_errors = consecutive_errors.saturating_add(1);
                    std::thread::sleep(backoff);
                }
                Err(e) => {
                    self.audit_fault("accept-fatal", &e);
                    return Err(WireError::Io(e));
                }
            }
        }
    }

    /// Spawns [`serve`](Self::serve) on a background thread and returns
    /// the bound address — the common pattern for tests and examples.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket refuses to report its address.
    pub fn serve_in_background(self) -> Result<std::net::SocketAddr, WireError> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.serve();
        });
        Ok(addr)
    }

    fn audit_fault(&self, op: &str, error: &std::io::Error) {
        self.service.audit().record(
            self.service.last_seen_now(),
            AuditKind::TransportFault {
                op: op.to_string(),
                detail: error.to_string(),
            },
        );
    }
}

/// Whether an `accept()` error is worth retrying. Resets of a pending
/// connection, interrupted syscalls, and resource exhaustion (fd or
/// buffer limits, which drain as connections close) are transient;
/// anything else (e.g. the listener socket itself is gone) is fatal.
fn transient_accept_error(e: &std::io::Error) -> bool {
    if matches!(
        e.kind(),
        ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::Interrupted
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
    ) {
        return true;
    }
    // Linux errnos not (portably) covered by ErrorKind: ENFILE (23),
    // EMFILE (24), ENOBUFS (105), ENOMEM (12) — load-induced, retryable.
    matches!(e.raw_os_error(), Some(12) | Some(23) | Some(24) | Some(105))
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    service: &Arc<OasisService>,
    context: &ContextFactory,
    controller: &Arc<AdmissionController>,
) {
    loop {
        // One idle worker at a time parks inside recv() holding the lock;
        // it releases as soon as a connection arrives.
        let stream = {
            let guard = rx.lock();
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                // Connection errors are expected (clients hang up); they
                // must not take the worker down.
                let _ = handle_connection(stream, service, context, controller);
            }
            Err(_) => return, // acceptor shut down
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &Arc<OasisService>,
    context: &ContextFactory,
    controller: &Arc<AdmissionController>,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    loop {
        let Some(envelope) = read_frame::<_, Envelope>(&mut stream)? else {
            return Ok(()); // clean disconnect
        };
        let response = admit_and_handle(service, context, controller, envelope);
        write_frame(&mut stream, &response)?;
    }
}

/// Admission gate for one request: compute the absolute deadline at read
/// time (so queueing counts against the client's budget), classify into a
/// lane, and only execute under a granted, still-live permit.
fn admit_and_handle(
    service: &Arc<OasisService>,
    context: &ContextFactory,
    controller: &Arc<AdmissionController>,
    envelope: Envelope,
) -> Response {
    let lane = envelope.request.lane();
    let deadline = Deadline::from_budget(controller.now_ms(), envelope.deadline_ms);
    match controller.admit(lane, deadline) {
        Err(AdmitError::Shed { retry_after_ms }) => Response::Overloaded { retry_after_ms },
        Err(AdmitError::Expired) => Response::DeadlineExceeded,
        Ok(permit) => {
            // The permit may have been granted in the same instant the
            // deadline lapsed; re-check so no request ever executes past
            // its deadline.
            if deadline.expired(controller.now_ms()) {
                controller.note_expired_after_admit(lane);
                drop(permit);
                return Response::DeadlineExceeded;
            }
            let response = handle_request(service, context, envelope.request);
            drop(permit);
            response
        }
    }
}

fn handle_request(
    service: &Arc<OasisService>,
    context: &ContextFactory,
    request: Request,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Activate {
            principal,
            role,
            args,
            credentials,
            now,
        } => {
            let ctx = context(now);
            match service.activate_role(&principal, &RoleName::new(role), &args, &credentials, &ctx)
            {
                Ok(rmc) => Response::Activated { rmc: Box::new(rmc) },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Invoke {
            principal,
            method,
            args,
            credentials,
            now,
        } => {
            let ctx = context(now);
            match service.invoke(&principal, &method, &args, &credentials, &ctx) {
                Ok(invocation) => Response::Invoked {
                    used: invocation.used,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Validate {
            credential,
            presenter,
            now,
        } => match service.validate_own(&credential, &presenter, now) {
            Ok(()) => Response::Valid,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Revoke {
            cert_id,
            reason,
            now,
        } => Response::Revoked {
            was_active: service.revoke_certificate(CertId(cert_id), &reason, now),
        },
        Request::Resync {
            topic,
            after_topic_seq,
        } => {
            let (events, complete) = service.replay_retained(&topic, after_topic_seq);
            Response::Resynced {
                events: events.into_iter().map(Into::into).collect(),
                complete,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_error_classification() {
        for kind in [
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionReset,
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
        ] {
            assert!(
                transient_accept_error(&std::io::Error::new(kind, "x")),
                "{kind:?} should be transient"
            );
        }
        // EMFILE: per-process fd limit hit — drains as connections close.
        assert!(transient_accept_error(&std::io::Error::from_raw_os_error(
            24
        )));
        // EBADF: the listener itself is broken — fatal.
        assert!(!transient_accept_error(&std::io::Error::from_raw_os_error(
            9
        )));
        assert!(!transient_accept_error(&std::io::Error::new(
            ErrorKind::PermissionDenied,
            "x"
        )));
    }
}
