//! Recursive-descent parser for the policy language.

use oasis_core::{CmpOp, Term, Value, ValueType};

use crate::ast::*;
use crate::error::{PolicyError, Pos};
use crate::lexer::{lex, Spanned, Tok};

pub(crate) fn parse(source: &str) -> Result<PolicyAst, PolicyError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, idx: 0 };
    p.policy()
}

struct Parser {
    tokens: Vec<Spanned>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.tokens[self.idx]
    }

    fn next(&mut self) -> Spanned {
        let t = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, PolicyError> {
        Err(PolicyError::Unexpected {
            pos: self.peek().pos,
            expected: expected.to_string(),
            found: self.peek().tok.to_string(),
        })
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Pos, PolicyError> {
        if &self.peek().tok == tok {
            Ok(self.next().pos)
        } else {
            self.unexpected(what)
        }
    }

    /// Accepts an identifier token, returning its text.
    fn ident(&mut self, what: &str) -> Result<(String, Pos), PolicyError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let pos = self.next().pos;
                Ok((s, pos))
            }
            _ => self.unexpected(what),
        }
    }

    /// Accepts a specific keyword (an identifier with fixed text).
    fn keyword(&mut self, kw: &str) -> Result<Pos, PolicyError> {
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => Ok(self.next().pos),
            _ => self.unexpected(&format!("`{kw}`")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    /// A possibly dotted name: `a`, `a.b.c`.
    fn dotted_name(&mut self, what: &str) -> Result<(String, Pos), PolicyError> {
        let (mut name, pos) = self.ident(what)?;
        while self.peek().tok == Tok::Dot {
            self.next();
            let (part, _) = self.ident("name segment after `.`")?;
            name.push('.');
            name.push_str(&part);
        }
        Ok((name, pos))
    }

    fn policy(&mut self) -> Result<PolicyAst, PolicyError> {
        let mut services = Vec::new();
        while self.peek().tok != Tok::Eof {
            services.push(self.service_block()?);
        }
        Ok(PolicyAst { services })
    }

    fn service_block(&mut self) -> Result<ServiceBlock, PolicyError> {
        let pos = self.keyword("service")?;
        let (name, _) = self.dotted_name("service name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut block = ServiceBlock {
            name,
            pos,
            roles: Vec::new(),
            appointments: Vec::new(),
            appointers: Vec::new(),
            rules: Vec::new(),
            invocations: Vec::new(),
        };
        loop {
            match &self.peek().tok {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(kw) => match kw.as_str() {
                    "role" | "initial" => block.roles.push(self.role_decl()?),
                    "appointment" => block.appointments.push(self.appointment_decl()?),
                    "appointer" => block.appointers.push(self.appointer_decl()?),
                    "rule" => block.rules.push(self.rule_decl()?),
                    "invoke" => block.invocations.push(self.invoke_decl()?),
                    _ => return self.unexpected(
                        "`role`, `initial`, `appointment`, `appointer`, `rule`, `invoke`, or `}`",
                    ),
                },
                _ => {
                    return self.unexpected(
                        "`role`, `initial`, `appointment`, `appointer`, `rule`, `invoke`, or `}`",
                    )
                }
            }
        }
        Ok(block)
    }

    fn role_decl(&mut self) -> Result<RoleDecl, PolicyError> {
        let initial = if self.at_keyword("initial") {
            self.next();
            true
        } else {
            false
        };
        let pos = self.keyword("role")?;
        let (name, _) = self.ident("role name")?;
        let params = self.param_list()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(RoleDecl {
            name,
            params,
            initial,
            pos,
        })
    }

    fn appointment_decl(&mut self) -> Result<AppointmentDecl, PolicyError> {
        let pos = self.keyword("appointment")?;
        let (name, _) = self.ident("appointment name")?;
        let params = self.param_list()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(AppointmentDecl { name, params, pos })
    }

    fn appointer_decl(&mut self) -> Result<AppointerDecl, PolicyError> {
        let pos = self.keyword("appointer")?;
        let (role, _) = self.ident("role name")?;
        self.keyword("may")?;
        self.keyword("issue")?;
        let (appointment, _) = self.ident("appointment name")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(AppointerDecl {
            role,
            appointment,
            pos,
        })
    }

    /// `(name: type, …)` — possibly empty.
    fn param_list(&mut self) -> Result<Vec<(String, ValueType)>, PolicyError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                let (pname, _) = self.ident("parameter name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let (tname, tpos) = self.ident("parameter type")?;
                let ptype: ValueType = tname.parse().map_err(|_| PolicyError::Unexpected {
                    pos: tpos,
                    expected: "a type (id, str, int, bool, time)".into(),
                    found: tname.clone(),
                })?;
                params.push((pname, ptype));
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(params)
    }

    fn rule_decl(&mut self) -> Result<RuleDecl, PolicyError> {
        let pos = self.keyword("rule")?;
        let (role, _) = self.ident("role name")?;
        let head_args = self.term_list()?;
        self.expect(&Tok::Arrow, "`<-`")?;
        let conditions = self.conditions()?;
        let membership = if self.at_keyword("membership") {
            self.next();
            Some(self.index_list()?)
        } else {
            None
        };
        self.expect(&Tok::Semi, "`;`")?;
        Ok(RuleDecl {
            role,
            head_args,
            conditions,
            membership,
            pos,
        })
    }

    fn invoke_decl(&mut self) -> Result<InvokeDecl, PolicyError> {
        let pos = self.keyword("invoke")?;
        let (method, _) = self.ident("method name")?;
        let head_args = self.term_list()?;
        self.expect(&Tok::Arrow, "`<-`")?;
        let conditions = self.conditions()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(InvokeDecl {
            method,
            head_args,
            conditions,
            pos,
        })
    }

    /// Zero or more comma-separated conditions, ending before
    /// `membership` or `;`.
    fn conditions(&mut self) -> Result<Vec<Condition>, PolicyError> {
        let mut out = Vec::new();
        if self.peek().tok == Tok::Semi || self.at_keyword("membership") {
            return Ok(out);
        }
        loop {
            out.push(self.condition()?);
            if self.peek().tok == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn condition(&mut self) -> Result<Condition, PolicyError> {
        let pos = self.pos();
        if self.at_keyword("prereq") {
            self.next();
            let (service, role) = self.qualified_name("role name")?;
            let args = self.term_list()?;
            return Ok(Condition {
                kind: ConditionKind::Prereq {
                    service,
                    role,
                    args,
                },
                pos,
            });
        }
        if self.at_keyword("appointment") {
            self.next();
            let (service, name) = self.qualified_name("appointment name")?;
            let args = self.term_list()?;
            return Ok(Condition {
                kind: ConditionKind::Appointment {
                    service,
                    name,
                    args,
                },
                pos,
            });
        }
        if self.at_keyword("env") {
            self.next();
            // `env not rel(args)`
            if self.at_keyword("not") {
                self.next();
                let (relation, _) = self.ident("relation name")?;
                let args = self.term_list()?;
                return Ok(Condition {
                    kind: ConditionKind::Fact {
                        relation,
                        args,
                        negated: true,
                    },
                    pos,
                });
            }
            // `env ?pred(args)`
            if self.peek().tok == Tok::Question {
                self.next();
                let (name, _) = self.ident("predicate name")?;
                let args = self.term_list()?;
                return Ok(Condition {
                    kind: ConditionKind::Predicate { name, args },
                    pos,
                });
            }
            // Either `env rel(args)` or `env term op term`. Disambiguate:
            // an identifier followed by `(` is a relation.
            if matches!(&self.peek().tok, Tok::Ident(_))
                && self.tokens.get(self.idx + 1).map(|s| &s.tok) == Some(&Tok::LParen)
            {
                let (relation, _) = self.ident("relation name")?;
                let args = self.term_list()?;
                return Ok(Condition {
                    kind: ConditionKind::Fact {
                        relation,
                        args,
                        negated: false,
                    },
                    pos,
                });
            }
            let left = self.term()?;
            let op = self.cmp_op()?;
            let right = self.term()?;
            return Ok(Condition {
                kind: ConditionKind::Compare { left, op, right },
                pos,
            });
        }
        self.unexpected("`prereq`, `appointment`, or `env`")
    }

    /// `name` or `svc::name` (service part may be dotted).
    fn qualified_name(&mut self, what: &str) -> Result<(Option<String>, String), PolicyError> {
        let (first, _) = self.dotted_name(what)?;
        if self.peek().tok == Tok::ColonColon {
            self.next();
            let (name, _) = self.ident(what)?;
            Ok((Some(first), name))
        } else {
            Ok((None, first))
        }
    }

    /// `(term, …)` — possibly empty.
    fn term_list(&mut self) -> Result<Vec<Term>, PolicyError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut terms = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                terms.push(self.term()?);
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(terms)
    }

    fn term(&mut self) -> Result<Term, PolicyError> {
        match self.peek().tok.clone() {
            Tok::Variable(v) => {
                self.next();
                Ok(Term::var(v))
            }
            Tok::Underscore => {
                self.next();
                Ok(Term::Wildcard)
            }
            Tok::Int(i) => {
                self.next();
                Ok(Term::Const(Value::Int(i)))
            }
            Tok::Time(t) => {
                self.next();
                Ok(Term::Const(Value::Time(t)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Term::Const(Value::Str(s)))
            }
            Tok::Ident(s) if s == "true" => {
                self.next();
                Ok(Term::Const(Value::Bool(true)))
            }
            Tok::Ident(s) if s == "false" => {
                self.next();
                Ok(Term::Const(Value::Bool(false)))
            }
            Tok::Ident(s) => {
                self.next();
                Ok(Term::Const(Value::Id(s)))
            }
            _ => self.unexpected("a term (variable, `_`, or literal)"),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, PolicyError> {
        let op = match self.peek().tok {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return self.unexpected("a comparison operator"),
        };
        self.next();
        Ok(op)
    }

    /// `[0, 2, …]` — possibly empty.
    fn index_list(&mut self) -> Result<Vec<usize>, PolicyError> {
        self.expect(&Tok::LBracket, "`[`")?;
        let mut out = Vec::new();
        if self.peek().tok != Tok::RBracket {
            loop {
                match self.peek().tok {
                    Tok::Int(i) if i >= 0 => {
                        out.push(i as usize);
                        self.next();
                    }
                    _ => return self.unexpected("a non-negative index"),
                }
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBracket, "`]`")?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> PolicyAst {
        parse(src).unwrap()
    }

    #[test]
    fn empty_service_block() {
        let ast = parse_ok("service s { }");
        assert_eq!(ast.services.len(), 1);
        assert_eq!(ast.services[0].name, "s");
    }

    #[test]
    fn dotted_service_name() {
        let ast = parse_ok("service hospital.records { }");
        assert_eq!(ast.services[0].name, "hospital.records");
    }

    #[test]
    fn role_declarations() {
        let ast = parse_ok(
            "service s {
               initial role logged_in(user: id);
               role doctor(d: id, level: int);
             }",
        );
        let roles = &ast.services[0].roles;
        assert_eq!(roles.len(), 2);
        assert!(roles[0].initial);
        assert_eq!(roles[0].params, vec![("user".to_string(), ValueType::Id)]);
        assert!(!roles[1].initial);
        assert_eq!(roles[1].params.len(), 2);
    }

    #[test]
    fn full_rule_with_membership() {
        let ast = parse_ok(
            "service hospital {
               role treating_doctor(d: id, p: id);
               role doctor_on_duty(d: id);
               appointment assigned(d: id, p: id);
               rule treating_doctor(D, P) <-
                   prereq doctor_on_duty(D),
                   appointment assigned(D, P),
                   env registered(D, P),
                   env not excluded(P, D)
                   membership [0, 2, 3];
             }",
        );
        let rule = &ast.services[0].rules[0];
        assert_eq!(rule.role, "treating_doctor");
        assert_eq!(rule.conditions.len(), 4);
        assert_eq!(rule.membership, Some(vec![0, 2, 3]));
        assert!(matches!(
            rule.conditions[3].kind,
            ConditionKind::Fact { negated: true, .. }
        ));
    }

    #[test]
    fn default_membership_is_all() {
        let ast = parse_ok(
            "service s {
               role r(x: id);
               rule r(X) <- env f(X), env g(X);
             }",
        );
        assert_eq!(ast.services[0].rules[0].membership, None);
        assert_eq!(ast.services[0].rules[0].effective_membership(), vec![0, 1]);
    }

    #[test]
    fn cross_service_prereq_and_appointment() {
        let ast = parse_ok(
            "service research {
               role visiting_doctor(d: id);
               rule visiting_doctor(D) <-
                   appointment hospital.admin::employed_as_doctor(D, _);
             }",
        );
        match &ast.services[0].rules[0].conditions[0].kind {
            ConditionKind::Appointment {
                service,
                name,
                args,
            } => {
                assert_eq!(service.as_deref(), Some("hospital.admin"));
                assert_eq!(name, "employed_as_doctor");
                assert_eq!(args.len(), 2);
                assert_eq!(args[1], Term::Wildcard);
            }
            other => panic!("wrong condition: {other:?}"),
        }
    }

    #[test]
    fn compare_and_predicate_conditions() {
        let ast = parse_ok(
            "service clinic {
               role paid_up_patient(m: id);
               rule paid_up_patient(M) <-
                   appointment membership_card(M, Expiry),
                   env $now <= Expiry,
                   env ?on_site();
             }",
        );
        let conds = &ast.services[0].rules[0].conditions;
        assert!(matches!(
            conds[1].kind,
            ConditionKind::Compare { op: CmpOp::Le, .. }
        ));
        assert!(
            matches!(&conds[2].kind, ConditionKind::Predicate { name, .. } if name == "on_site")
        );
    }

    #[test]
    fn invoke_rules() {
        let ast = parse_ok(
            "service s {
               role r(p: id);
               rule r(P) <- ;
               invoke read_record(P) <- prereq r(P), env not excluded(P);
             }",
        );
        let inv = &ast.services[0].invocations[0];
        assert_eq!(inv.method, "read_record");
        assert_eq!(inv.conditions.len(), 2);
    }

    #[test]
    fn appointer_grants() {
        let ast = parse_ok(
            "service s {
               role nurse(n: id);
               appointment standin(d: id);
               appointer nurse may issue standin;
             }",
        );
        let grant = &ast.services[0].appointers[0];
        assert_eq!(grant.role, "nurse");
        assert_eq!(grant.appointment, "standin");
    }

    #[test]
    fn literals_in_terms() {
        let ast = parse_ok(
            "service s {
               role r(a: id, b: int, c: bool, d: time, e: str);
               rule r(fred, -3, true, @99, \"note\") <- ;
             }",
        );
        let head = &ast.services[0].rules[0].head_args;
        assert_eq!(head[0], Term::Const(Value::id("fred")));
        assert_eq!(head[1], Term::Const(Value::Int(-3)));
        assert_eq!(head[2], Term::Const(Value::Bool(true)));
        assert_eq!(head[3], Term::Const(Value::Time(99)));
        assert_eq!(head[4], Term::Const(Value::Str("note".into())));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("service s {\n  bogus thing;\n}").unwrap_err();
        match err {
            PolicyError::Unexpected { pos, .. } => {
                assert_eq!(pos.line, 2);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_reported() {
        assert!(matches!(
            parse("service s { role r() }"),
            Err(PolicyError::Unexpected { .. })
        ));
    }

    #[test]
    fn multiple_services() {
        let ast = parse_ok("service a { } service b { }");
        assert_eq!(ast.services.len(), 2);
    }
}
