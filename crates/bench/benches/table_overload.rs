//! TAB-F — overload: goodput and revocation latency, shedding on vs off.
//!
//! A validation storm arrives at 3x the service's total capacity while
//! revocations trickle in. The pre-overload-control server (one FIFO
//! queue, no priorities, no deadlines) eventually answers everything —
//! but a revocation queued behind the whole backlog takes effect *after*
//! the flood, which is exactly the window an attacker with a stolen
//! credential wants (Sect. 5: revocation must take effect immediately).
//! The overload subsystem's priority lanes + shedding keep the Control
//! lane clear, so revocation-to-deactivation latency stays flat no
//! matter how hard validation floods.
//!
//! Both series run the same deterministic simulated flood (virtual
//! clock, seed 42) with the same total worker capacity; only the lane
//! structure differs:
//!
//! * `shedding_on` — Control/Validation/Issuance lanes, bounded queues,
//!   deadline budgets; excess validations shed with a retry hint.
//! * `shedding_off_fifo` — one lane, unbounded queue, no deadlines.
//!
//! Reported (also emitted to `BENCH_overload.json`): per-series goodput
//! (validations answered within their budget), sheds, p99
//! revocation-to-deactivation latency, and the shedding speedup — the
//! ISSUE acceptance criterion asserts the speedup is at least 10x. A
//! small criterion group prices the admission hot path itself.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::core::cert::Rmc;
use oasis::core::{
    AdmissionController, CertId, Clock, Deadline, Lane, LaneConfig, ManualClock, OverloadConfig,
    Permit, PollOutcome, Submission, Ticket,
};
use oasis::prelude::*;
use oasis::sim::{Histogram, Latency, LinkConfig, SimNet, Simulation};
use oasis_bench::table_header;

const PRINCIPALS: usize = 20;
/// Virtual ms an admitted request occupies a worker.
const SERVICE_TICKS: u64 = 4;
const FLOOD_TICKS: u64 = 1_000;
/// 3 arrivals/tick against 1/tick of capacity: a 3x overload.
const VALIDATIONS_PER_TICK: usize = 3;
const VALIDATION_BUDGET: u64 = 50;
const REVOCATION_BUDGET: u64 = 100;
const REVOCATION_START: u64 = 100;
const REVOCATION_STEP: u64 = 40;
const T_END: u64 = 4_200;
const SEED: u64 = 42;

enum Work {
    Validate(usize),
    Revoke(usize),
}

struct PendingReq {
    ticket: Ticket,
    arrived: u64,
    work: Work,
}

struct RunningReq {
    finish_at: u64,
    arrived: u64,
    permit: Option<Permit>,
    work: Work,
}

struct World {
    login: Arc<OasisService>,
    hospital: Arc<OasisService>,
    login_certs: Vec<Rmc>,
    duty_certs: Vec<CertId>,
}

fn build_world() -> World {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    for i in 0..PRINCIPALS {
        facts
            .insert("password_ok", vec![Value::id(format!("dr-{i}"))])
            .unwrap();
    }

    let login = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(ServiceConfig::new("hospital"), Arc::clone(&facts));
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    hospital.set_validator(registry);

    let mut login_certs = Vec::with_capacity(PRINCIPALS);
    let mut duty_certs = Vec::with_capacity(PRINCIPALS);
    for i in 0..PRINCIPALS {
        let who = PrincipalId::new(format!("dr-{i}"));
        let rmc = login
            .activate_role(
                &who,
                &RoleName::new("logged_in"),
                &[Value::id(format!("dr-{i}"))],
                &[],
                &EnvContext::new(0),
            )
            .unwrap();
        let duty = hospital
            .activate_role(
                &who,
                &RoleName::new("doctor_on_duty"),
                &[Value::id(format!("dr-{i}"))],
                &[Credential::Rmc(rmc.clone())],
                &EnvContext::new(0),
            )
            .unwrap();
        login_certs.push(rmc);
        duty_certs.push(duty.crr.cert_id);
    }
    World {
        login,
        hospital,
        login_certs,
        duty_certs,
    }
}

/// Same total capacity (4 workers) either way; only the lane structure
/// differs. Mirrors `tests/overload_flood.rs`.
fn flood_config(shedding: bool) -> OverloadConfig {
    let mut cfg = OverloadConfig::default();
    if shedding {
        *cfg.lane_mut(Lane::Control) = LaneConfig::fixed(2, 256, 1_000);
        *cfg.lane_mut(Lane::Validation) = LaneConfig::fixed(2, 16, 1_000);
        *cfg.lane_mut(Lane::Issuance) = LaneConfig::fixed(1, 8, 1_000);
    } else {
        *cfg.lane_mut(Lane::Control) = LaneConfig::fixed(4, 1_000_000, 1_000_000);
    }
    cfg
}

#[derive(Default)]
struct FloodResult {
    /// Validations answered within VALIDATION_BUDGET of arrival.
    goodput: u64,
    answered: u64,
    shed: u64,
    p99_revocation: u64,
    revocations_within_budget: usize,
}

fn revocation_arrival(i: usize) -> u64 {
    REVOCATION_START + i as u64 * REVOCATION_STEP
}

fn run_flood(shedding: bool) -> FloodResult {
    let world = Rc::new(build_world());
    let clock = Arc::new(ManualClock::new(0));
    let ctrl = AdmissionController::with_clock(
        flood_config(shedding),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );

    let mut sim = Simulation::new(SEED);
    let net = Rc::new(RefCell::new(SimNet::new(LinkConfig {
        latency: Latency::Constant(1),
        loss: 0.0,
        duplicate: 0.0,
        jitter: 1,
    })));

    let result = Rc::new(RefCell::new(FloodResult::default()));
    let deactivated = Rc::new(RefCell::new(vec![None::<u64>; PRINCIPALS]));
    let pending = Rc::new(RefCell::new(Vec::<PendingReq>::new()));
    let running = Rc::new(RefCell::new(Vec::<RunningReq>::new()));
    let feed = Rc::new(world.login.bus().subscribe("cred.revoked.#").unwrap());

    let mut next_validation = 0usize;
    for t in 1..=T_END {
        let world = Rc::clone(&world);
        let clock = Arc::clone(&clock);
        let ctrl = Arc::clone(&ctrl);
        let net = Rc::clone(&net);
        let result = Rc::clone(&result);
        let deactivated = Rc::clone(&deactivated);
        let pending = Rc::clone(&pending);
        let running = Rc::clone(&running);
        let feed = Rc::clone(&feed);

        let mut arrivals: Vec<Work> = Vec::new();
        if t <= FLOOD_TICKS {
            for _ in 0..VALIDATIONS_PER_TICK {
                arrivals.push(Work::Validate(next_validation % PRINCIPALS));
                next_validation += 1;
            }
        }
        for i in 0..PRINCIPALS {
            if revocation_arrival(i) == t {
                arrivals.push(Work::Revoke(i));
            }
        }

        sim.schedule_at(t, move |sim| {
            let now = sim.now();
            clock.set(now);

            // Completions.
            let finished: Vec<RunningReq> = {
                let mut run = running.borrow_mut();
                let mut done = Vec::new();
                let mut i = 0;
                while i < run.len() {
                    if run[i].finish_at <= now {
                        done.push(run.remove(i));
                    } else {
                        i += 1;
                    }
                }
                done
            };
            for mut req in finished {
                match req.work {
                    Work::Validate(i) => {
                        let who = PrincipalId::new(format!("dr-{i}"));
                        let cred = Credential::Rmc(world.login_certs[i].clone());
                        let _ = world.login.validate_own(&cred, &who, now);
                        let mut r = result.borrow_mut();
                        r.answered += 1;
                        if now - req.arrived <= VALIDATION_BUDGET {
                            r.goodput += 1;
                        }
                    }
                    Work::Revoke(i) => {
                        world.login.revoke_certificate(
                            world.login_certs[i].crr.cert_id,
                            "credential compromised",
                            now,
                        );
                    }
                }
                drop(req.permit.take());
            }

            // Queue polls (FIFO).
            {
                let mut pend = pending.borrow_mut();
                let mut i = 0;
                while i < pend.len() {
                    match ctrl.poll(&pend[i].ticket) {
                        PollOutcome::Waiting => i += 1,
                        PollOutcome::Ready(permit) => {
                            let req = pend.remove(i);
                            running.borrow_mut().push(RunningReq {
                                finish_at: now + SERVICE_TICKS,
                                arrived: req.arrived,
                                permit: Some(permit),
                                work: req.work,
                            });
                        }
                        PollOutcome::Expired => {
                            pend.remove(i);
                        }
                    }
                }
            }

            // Arrivals.
            for work in arrivals {
                let (lane, deadline) = if shedding {
                    match &work {
                        Work::Validate(_) => (
                            Lane::Validation,
                            Deadline::from_budget(now, Some(VALIDATION_BUDGET)),
                        ),
                        Work::Revoke(_) => (
                            Lane::Control,
                            Deadline::from_budget(now, Some(REVOCATION_BUDGET)),
                        ),
                    }
                } else {
                    (Lane::Control, Deadline::none())
                };
                match ctrl.submit(lane, deadline) {
                    Submission::Admitted(permit) => running.borrow_mut().push(RunningReq {
                        finish_at: now + SERVICE_TICKS,
                        arrived: now,
                        permit: Some(permit),
                        work,
                    }),
                    Submission::Queued(ticket) => pending.borrow_mut().push(PendingReq {
                        ticket,
                        arrived: now,
                        work,
                    }),
                    Submission::Shed { .. } => result.borrow_mut().shed += 1,
                    Submission::Expired => {}
                }
            }

            // Pump revocation events issuer → hospital.
            for ev in feed.drain() {
                let hospital = Arc::clone(&world.hospital);
                let topic = ev.topic.clone();
                net.borrow_mut().send(sim, "login", "hospital", move |sim| {
                    hospital.bus().publish_at(&topic, ev.payload, sim.now());
                });
            }

            // Detect duty deactivations.
            let mut d = deactivated.borrow_mut();
            for i in 0..PRINCIPALS {
                if d[i].is_some() || revocation_arrival(i) > now {
                    continue;
                }
                let revoked = world
                    .hospital
                    .record(world.duty_certs[i])
                    .map(|r| matches!(r.status, CredStatus::Revoked { .. }))
                    .unwrap_or(false);
                if revoked {
                    d[i] = Some(now);
                }
            }
        });
    }

    sim.run();

    let mut hist = Histogram::new();
    let mut within = 0usize;
    for (i, done) in deactivated.borrow().iter().enumerate() {
        let done = done.unwrap_or_else(|| panic!("revocation {i} never took effect"));
        let latency = done - revocation_arrival(i);
        if latency <= REVOCATION_BUDGET {
            within += 1;
        }
        hist.record(latency);
    }
    let mut out = result.borrow().clone_lite();
    out.p99_revocation = hist.quantile(0.99).unwrap();
    out.revocations_within_budget = within;
    out
}

impl FloodResult {
    fn clone_lite(&self) -> FloodResult {
        FloodResult {
            goodput: self.goodput,
            answered: self.answered,
            shed: self.shed,
            p99_revocation: self.p99_revocation,
            revocations_within_budget: self.revocations_within_budget,
        }
    }
}

fn overload_table() -> String {
    table_header(
        "TAB-F overload: priority lanes + shedding vs FIFO",
        "revocation latency must stay flat while validation floods",
        "series            goodput     shed   p99_revocation  within_budget",
    );

    let on = run_flood(true);
    let off = run_flood(false);

    for (name, s) in [("shedding_on", &on), ("shedding_off_fifo", &off)] {
        println!(
            "{:<17} {:>7} {:>8} {:>11} ticks  {:>7}/{}",
            name, s.goodput, s.shed, s.p99_revocation, s.revocations_within_budget, PRINCIPALS
        );
    }
    let speedup = off.p99_revocation as f64 / on.p99_revocation.max(1) as f64;
    println!("shedding p99 revocation speedup over FIFO: {speedup:.0}x");

    // The ISSUE acceptance criteria, asserted where the numbers are made.
    assert!(
        speedup >= 10.0,
        "shedding must improve p99 revocation latency by at least 10x \
         (got {:.1}x: {} vs {} ticks)",
        speedup,
        off.p99_revocation,
        on.p99_revocation
    );
    assert_eq!(
        on.revocations_within_budget, PRINCIPALS,
        "with shedding on, every revocation must land within its budget"
    );
    assert!(on.shed > 0, "the flood must actually shed");

    let series = [("shedding_on", &on), ("shedding_off_fifo", &off)]
        .iter()
        .map(|(name, s)| {
            format!(
                "    {{\"name\": \"{}\", \"goodput\": {}, \"answered\": {}, \"shed\": {}, \
                 \"p99_revocation_ticks\": {}, \"revocations_within_budget\": {}}}",
                name, s.goodput, s.answered, s.shed, s.p99_revocation, s.revocations_within_budget
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"table_overload\",\n  \"seed\": {SEED},\n  \"flood_ticks\": {FLOOD_TICKS},\n  \"validations_per_tick\": {VALIDATIONS_PER_TICK},\n  \"service_ticks\": {SERVICE_TICKS},\n  \"revocation_budget_ticks\": {REVOCATION_BUDGET},\n  \"series\": [\n{series}\n  ],\n  \"p99_revocation_speedup\": {speedup:.1}\n}}\n",
    )
}

fn bench_overload(c: &mut Criterion) {
    let json = overload_table();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    std::fs::write(out, json).expect("write BENCH_overload.json");
    println!("wrote {out}");

    // The price of admission itself: what every request now pays on the
    // uncontended hot path, and what a shed costs under saturation.
    let mut group = c.benchmark_group("admission");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("submit", "uncontended_grant"), |b| {
        let ctrl = AdmissionController::new(OverloadConfig::default());
        b.iter(|| {
            let s = ctrl.submit(Lane::Validation, Deadline::none());
            assert!(matches!(s, Submission::Admitted(_)));
        });
    });
    group.bench_function(BenchmarkId::new("submit", "saturated_shed"), |b| {
        let mut cfg = OverloadConfig::default();
        *cfg.lane_mut(Lane::Validation) = LaneConfig::fixed(1, 0, 1_000);
        let ctrl = AdmissionController::new(cfg);
        let _hold = match ctrl.submit(Lane::Validation, Deadline::none()) {
            Submission::Admitted(p) => p,
            _ => unreachable!(),
        };
        b.iter(|| {
            let s = ctrl.submit(Lane::Validation, Deadline::none());
            assert!(matches!(s, Submission::Shed { .. }));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overload);
criterion_main!(benches);
