//! TAB-E — crash-recovery time vs journal length, and the snapshot
//! trade-off.
//!
//! Sect. 7's active security makes a service's in-memory credential
//! state authoritative — so after a crash that state must be rebuilt
//! before the service answers anything. The durability layer offers two
//! knobs: replay the whole security-event journal, or load a periodic
//! snapshot and replay only the tail. This table measures cold-start
//! [`recover()`](oasis::core::OasisService::recover) wall time on the
//! full service (records, dependency edges, watermarks, validation
//! cache) as the journal grows:
//!
//! * `replay_1k` — 1 000-event journal, no snapshot: pure replay.
//! * `replay_10k` — 10 000-event journal, no snapshot: pure replay.
//! * `snapshot_10k` — the same 10 000 events, but a snapshot covers all
//!   except a 100-event tail: load + short replay.
//!
//! The event mix mirrors a live relying service: validation grants
//! dominate (the Sect. 4 hot path journals one `ValidationGranted` per
//! cache fill), with issuance and revocation churn layered in. That mix
//! is exactly where snapshots pay: cache-fill events vastly outnumber
//! the bounded record state they rebuild, so truncating them shrinks
//! the restart from O(journal) to O(state + tail).
//!
//! Reported (also emitted to `BENCH_recovery.json`): p50/p99 recovery
//! time per series and the snapshot speedup over full 10k replay.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::core::ServiceJournal;
use oasis::prelude::*;
use oasis::store::MemBackend;
use oasis_bench::{percentile, table_header};

/// One doctor activation (a `CertIssued` event) per this many journal
/// events; the rest are validation-grant churn.
const ISSUE_EVERY: u64 = 8;

/// One revocation (cascade + edge removal on replay) per this many
/// journal events.
const REVOKE_EVERY: u64 = 64;

struct World {
    login: Arc<OasisService>,
    journal: MemBackend,
    snapshot: MemBackend,
    facts: Arc<FactStore<Value>>,
    /// Journal events written while populating.
    events: u64,
}

/// The relying hospital, cold-started over the world's backends: the
/// recovery subject. Policy is reinstalled on every start.
fn service(w: &World) -> Arc<OasisService> {
    let store = ServiceJournal::open(Arc::new(w.journal.clone()), Arc::new(w.snapshot.clone()))
        .expect("journal opens");
    let svc = OasisService::new(
        ServiceConfig::new("hospital")
            .with_validation_cache(100_000)
            .with_journal(store),
        Arc::clone(&w.facts),
    );
    let registry = Arc::new(LocalRegistry::new());
    registry.register(&w.login);
    svc.set_validator(registry);
    svc.define_role("doctor_on_duty", &[("d", ValueType::Id)], false)
        .unwrap();
    svc.add_activation_rule(
        "doctor_on_duty",
        vec![Term::var("D")],
        vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
        vec![0],
    )
    .unwrap();
    svc
}

/// Builds a hospital journal holding exactly `events` security events
/// — validation grants, issues, and revocations — optionally
/// snapshotting so that only `tail` events remain to replay.
fn world(events: u64, snapshot_tail: Option<u64>) -> World {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let login = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    login
        .define_role("logged_in", &[("u", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();
    let w = World {
        login,
        journal: MemBackend::new(),
        snapshot: MemBackend::new(),
        facts,
        events,
    };
    let svc = service(&w);
    let alice = PrincipalId::new("alice");
    let appended = || svc.journal_stats().expect("journalled").appended;
    let mut cut = false;
    let mut last_doctor = None;
    let mut i = 0u64;
    while appended() < events {
        // Snapshot once so that at most `tail` events follow it.
        if let Some(tail) = snapshot_tail {
            if !cut && appended() >= events - tail {
                svc.snapshot().expect("snapshot succeeds");
                cut = true;
            }
        }
        // Each login session is a fresh credential: validating it at
        // the hospital misses the cache, calls back, and journals one
        // `ValidationGranted`.
        let rmc = w
            .login
            .activate_role(
                &alice,
                &RoleName::new("logged_in"),
                &[Value::id("alice")],
                &[],
                &EnvContext::new(i),
            )
            .expect("login issuance");
        let cred = Credential::Rmc(rmc);
        svc.validate_credential(&cred, &alice, i)
            .expect("populate validation");
        if i.is_multiple_of(ISSUE_EVERY) && appended() < events {
            last_doctor = Some(
                svc.activate_role(
                    &alice,
                    &RoleName::new("doctor_on_duty"),
                    &[Value::id("alice")],
                    &[cred],
                    &EnvContext::new(i),
                )
                .expect("populate issuance")
                .crr
                .cert_id,
            );
        }
        if i.is_multiple_of(REVOKE_EVERY) && appended() < events {
            if let Some(cert) = last_doctor.take() {
                svc.revoke_certificate(cert, "bench churn", i);
            }
        }
        i += 1;
    }
    w
}

/// Cold-starts a fresh service over the world's backends `samples`
/// times, timing each full `recover()`; returns sorted nanoseconds and
/// the last recovery report for sanity checks.
fn measure(w: &World, samples: usize) -> (Vec<u64>, oasis::core::RecoveryReport) {
    let mut last = None;
    let mut lat: Vec<u64> = (0..samples)
        .map(|_| {
            let svc = service(w);
            let start = Instant::now();
            let report = svc.recover(1_000_000).expect("recovery succeeds");
            let elapsed = start.elapsed().as_nanos() as u64;
            last = Some(report);
            elapsed
        })
        .collect();
    lat.sort_unstable();
    (lat, last.unwrap())
}

struct Series {
    name: &'static str,
    events_in_journal: u64,
    events_replayed: u64,
    records_restored: u64,
    p50_ms: f64,
    p99_ms: f64,
    samples: usize,
}

fn recovery_table() -> String {
    const SAMPLES: usize = 15;
    const TAIL: u64 = 100;

    table_header(
        "TAB-E crash-recovery time vs journal length",
        "snapshots turn O(journal) restarts into O(tail) restarts",
        "series          journal   replayed       p50        p99",
    );

    let ms = |ns: u64| ns as f64 / 1_000_000.0;
    let mut series = Vec::new();
    for (name, events, tail) in [
        ("replay_1k", 1_000u64, None),
        ("replay_10k", 10_000, None),
        ("snapshot_10k", 10_000, Some(TAIL)),
    ] {
        let w = world(events, tail);
        let (lat, report) = measure(&w, SAMPLES);
        assert!(
            report.records_restored > 0,
            "{name}: recovery must restore records"
        );
        if tail.is_some() {
            assert!(
                report.snapshot_covered_seq > 0 && report.events_replayed <= TAIL,
                "{name}: snapshot must shorten the replay \
                 (covered {}, replayed {})",
                report.snapshot_covered_seq,
                report.events_replayed
            );
        } else {
            assert_eq!(
                report.events_replayed, w.events,
                "{name}: pure replay covers the whole journal"
            );
        }
        let s = Series {
            name,
            events_in_journal: w.events,
            events_replayed: report.events_replayed,
            records_restored: report.records_restored,
            p50_ms: ms(percentile(&lat, 50.0)),
            p99_ms: ms(percentile(&lat, 99.0)),
            samples: lat.len(),
        };
        println!(
            "{:<15} {:>7} {:>10} {:>8.2}ms {:>8.2}ms",
            s.name, s.events_in_journal, s.events_replayed, s.p50_ms, s.p99_ms
        );
        series.push(s);
    }

    let speedup = series[1].p50_ms / series[2].p50_ms.max(0.000_001);
    println!("snapshot speedup over full 10k replay p50: {speedup:.1}x");
    assert!(
        series[2].p50_ms < series[1].p50_ms,
        "a snapshot-covered restart must beat full replay: {:.2}ms vs {:.2}ms",
        series[2].p50_ms,
        series[1].p50_ms
    );

    let json_series = series
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"events_in_journal\": {}, \
                 \"events_replayed\": {}, \"records_restored\": {}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"samples\": {}}}",
                s.name,
                s.events_in_journal,
                s.events_replayed,
                s.records_restored,
                s.p50_ms,
                s.p99_ms,
                s.samples
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"table_recovery\",\n  \"revoke_every\": {},\n  \"snapshot_tail\": {},\n  \"series\": [\n{}\n  ],\n  \"snapshot_speedup_p50\": {:.1}\n}}\n",
        REVOKE_EVERY, TAIL, json_series, speedup,
    )
}

fn bench_recovery(c: &mut Criterion) {
    let json = recovery_table();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(out, json).expect("write BENCH_recovery.json");
    println!("wrote {out}");

    let mut group = c.benchmark_group("recovery");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("recover", "replay_1k"), |b| {
        let w = world(1_000, None);
        b.iter(|| {
            let svc = service(&w);
            svc.recover(1_000_000).expect("recovery succeeds")
        });
    });
    group.bench_function(BenchmarkId::new("recover", "snapshot_10k"), |b| {
        let w = world(10_000, Some(100));
        b.iter(|| {
            let svc = service(&w);
            svc.recover(1_000_000).expect("recovery succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
