//! Behavioural tests of the failure-aware validation layer: heartbeat
//! health driving cache trust, degradation policies, grace-period
//! deactivation, and issuer recovery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oasis_core::cert::Rmc;
use oasis_core::{
    Atom, Credential, CredentialValidator, DegradationPolicy, EnvContext, HeartbeatConfig,
    LocalRegistry, OasisError, OasisService, PrincipalId, RoleName, ServiceConfig, ServiceId, Term,
    Value, ValueType,
};
use oasis_events::SourceHealth;
use oasis_facts::FactStore;

/// A validator that answers through the registry while "up" and times out
/// while "down" — the unreachable-issuer switch for these tests.
struct GatedValidator {
    inner: Arc<LocalRegistry>,
    up: AtomicBool,
}

impl GatedValidator {
    fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::SeqCst);
    }
}

impl CredentialValidator for GatedValidator {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        if self.up.load(Ordering::SeqCst) {
            self.inner.validate(credential, presenter, now)
        } else {
            Err(OasisError::IssuerTimeout(credential.issuer().clone()))
        }
    }
}

fn alice() -> PrincipalId {
    PrincipalId::new("alice")
}

fn login_id() -> ServiceId {
    ServiceId::new("login")
}

struct World {
    login: Arc<OasisService>,
    hospital: Arc<OasisService>,
    gate: Arc<GatedValidator>,
    login_rmc: Rmc,
}

/// A login issuer and a failure-aware hospital watching it: cache TTL 100,
/// heartbeat interval 10, dead after 3 missed intervals (dead from tick
/// 31 with no beats), grace 10.
fn world(policy: DegradationPolicy) -> World {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();

    let login = OasisService::new(ServiceConfig::new("login"), Arc::clone(&facts));
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_validation_cache(100)
            .with_heartbeats(HeartbeatConfig {
                dead_after: 3,
                grace: 10,
                policy,
            }),
        Arc::clone(&facts),
    );
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    registry.register(&hospital);
    let gate = Arc::new(GatedValidator {
        inner: registry,
        up: AtomicBool::new(true),
    });
    hospital.set_validator(gate.clone());
    hospital.watch_issuer(&login_id(), 10, 0);

    let login_rmc = login
        .activate_role(
            &alice(),
            &RoleName::new("logged_in"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(0),
        )
        .unwrap();

    World {
        login,
        hospital,
        gate,
        login_rmc,
    }
}

#[test]
fn healthy_issuer_serves_cache_hits_without_callback() {
    let w = world(DegradationPolicy::FailSafe);
    let cred = Credential::Rmc(w.login_rmc.clone());
    assert!(w.hospital.validate_credential(&cred, &alice(), 1).is_ok());
    // With the issuer down but healthy (beating), the cache answers.
    w.gate.set_up(false);
    w.hospital.issuer_beat(&login_id(), 2);
    assert!(w.hospital.validate_credential(&cred, &alice(), 3).is_ok());
    let stats = w.hospital.validation_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(
        w.hospital
            .degradation_stats()
            .unwrap()
            .suspect_revalidations,
        0
    );
}

#[test]
fn late_issuer_forces_fresh_callback() {
    let w = world(DegradationPolicy::FailSafe);
    let cred = Credential::Rmc(w.login_rmc.clone());
    assert!(w.hospital.validate_credential(&cred, &alice(), 1).is_ok());
    // No beats: from tick 11 the issuer is late, so the cached success is
    // suspect and a callback happens even within the cache TTL.
    assert_eq!(
        w.hospital.issuer_health(&login_id(), 15),
        Some(SourceHealth::Late)
    );
    assert!(w.hospital.validate_credential(&cred, &alice(), 15).is_ok());
    let ds = w.hospital.degradation_stats().unwrap();
    assert_eq!(ds.suspect_revalidations, 1);

    // Late AND unreachable: fail-safe refuses despite the fresh cache.
    w.gate.set_up(false);
    let err = w
        .hospital
        .validate_credential(&cred, &alice(), 16)
        .unwrap_err();
    assert!(matches!(err, OasisError::IssuerTimeout(_)));
    let ds = w.hospital.degradation_stats().unwrap();
    assert_eq!((ds.stale_refused, ds.stale_served), (1, 0));
}

#[test]
fn fail_open_serves_bounded_staleness() {
    let w = world(DegradationPolicy::FailOpen {
        max_stale_ticks: 20,
    });
    let cred = Credential::Rmc(w.login_rmc.clone());
    assert!(w.hospital.validate_credential(&cred, &alice(), 1).is_ok());
    w.gate.set_up(false);
    // Late + unreachable, entry 14 ticks old: inside the bound, served.
    assert!(w.hospital.validate_credential(&cred, &alice(), 15).is_ok());
    assert_eq!(w.hospital.degradation_stats().unwrap().stale_served, 1);
    // Entry 24 ticks old: beyond the bound, refused.
    assert!(w.hospital.validate_credential(&cred, &alice(), 25).is_err());
    let ds = w.hospital.degradation_stats().unwrap();
    assert_eq!((ds.stale_served, ds.stale_refused), (1, 1));
}

#[test]
fn per_issuer_policy_override_wins() {
    let w = world(DegradationPolicy::FailSafe);
    w.hospital.set_issuer_policy(
        &login_id(),
        DegradationPolicy::FailOpen {
            max_stale_ticks: 50,
        },
    );
    let cred = Credential::Rmc(w.login_rmc.clone());
    assert!(w.hospital.validate_credential(&cred, &alice(), 1).is_ok());
    w.gate.set_up(false);
    assert!(
        w.hospital.validate_credential(&cred, &alice(), 15).is_ok(),
        "override to fail-open serves the suspect entry"
    );
}

#[test]
fn dead_issuer_evicts_cache_and_requires_live_answer() {
    let w = world(DegradationPolicy::FailSafe);
    let cred = Credential::Rmc(w.login_rmc.clone());
    assert!(w.hospital.validate_credential(&cred, &alice(), 1).is_ok());
    w.gate.set_up(false);
    // Tick 40: three intervals missed, the issuer is dead. The cached
    // entry (age 39, TTL 100) must not answer.
    assert_eq!(
        w.hospital.issuer_health(&login_id(), 40),
        Some(SourceHealth::Dead)
    );
    assert!(w.hospital.validate_credential(&cred, &alice(), 40).is_err());
    assert_eq!(w.hospital.degradation_stats().unwrap().dead_evictions, 1);
    // A live answer from a dead-looking issuer is fresh authority.
    w.gate.set_up(true);
    assert!(w.hospital.validate_credential(&cred, &alice(), 41).is_ok());
}

#[test]
fn fail_safe_degradation_revokes_dependents_after_grace() {
    let w = world(DegradationPolicy::FailSafe);
    let duty = w
        .hospital
        .activate_role(
            &alice(),
            &RoleName::new("doctor_on_duty"),
            &[Value::id("alice")],
            &[Credential::Rmc(w.login_rmc.clone())],
            &EnvContext::new(0),
        )
        .unwrap();

    // Dead from tick 31; first observed dead by the tick at 35, so the
    // grace clock (10) starts there.
    assert!(w.hospital.tick_heartbeats(30).is_empty(), "still late");
    assert!(
        w.hospital.tick_heartbeats(35).is_empty(),
        "dead, inside grace"
    );
    assert!(w.hospital.tick_heartbeats(44).is_empty(), "grace not over");
    let revoked = w.hospital.tick_heartbeats(45);
    assert_eq!(revoked, vec![duty.crr.clone()], "grace expired: degraded");
    assert!(w
        .hospital
        .validate_own(&Credential::Rmc(duty.clone()), &alice(), 46)
        .is_err());
    let ds = w.hospital.degradation_stats().unwrap();
    assert_eq!((ds.degraded_issuers, ds.degraded_certs), (1, 1));
    assert!(
        w.hospital.tick_heartbeats(60).is_empty(),
        "degradation runs once per death"
    );

    // Recovery: the issuer beats again, and the role can be re-activated
    // against live authority — degraded roles do not resurrect by
    // themselves.
    w.hospital.issuer_beat(&login_id(), 61);
    assert_eq!(
        w.hospital.issuer_health(&login_id(), 62),
        Some(SourceHealth::Healthy)
    );
    assert_eq!(w.hospital.degradation_stats().unwrap().issuer_recoveries, 1);
    let again = w
        .hospital
        .activate_role(
            &alice(),
            &RoleName::new("doctor_on_duty"),
            &[Value::id("alice")],
            &[Credential::Rmc(w.login_rmc.clone())],
            &EnvContext::new(62),
        )
        .unwrap();
    assert_ne!(again.crr, duty.crr);
    drop(w.login);
}

#[test]
fn fail_open_issuer_is_never_degraded() {
    let w = world(DegradationPolicy::FailOpen { max_stale_ticks: 5 });
    let _duty = w
        .hospital
        .activate_role(
            &alice(),
            &RoleName::new("doctor_on_duty"),
            &[Value::id("alice")],
            &[Credential::Rmc(w.login_rmc.clone())],
            &EnvContext::new(0),
        )
        .unwrap();
    assert!(w.hospital.tick_heartbeats(35).is_empty());
    assert!(
        w.hospital.tick_heartbeats(100).is_empty(),
        "fail-open never deactivates dependents"
    );
    // But dead-issuer cache eviction still applies.
    assert_eq!(w.hospital.degradation_stats().unwrap().degraded_issuers, 0);
}

#[test]
fn unwatched_issuer_keeps_plain_cache_semantics() {
    let w = world(DegradationPolicy::FailSafe);
    // Deregistering is not exposed; use a hospital that never watched.
    let facts = Arc::new(FactStore::new());
    let plain = OasisService::new(
        ServiceConfig::new("plain")
            .with_validation_cache(100)
            .with_heartbeats(HeartbeatConfig::default()),
        facts,
    );
    let registry = Arc::new(LocalRegistry::new());
    registry.register(&w.login);
    plain.set_validator(registry);
    let cred = Credential::Rmc(w.login_rmc.clone());
    assert!(plain.validate_credential(&cred, &alice(), 1).is_ok());
    assert!(
        plain.validate_credential(&cred, &alice(), 50).is_ok(),
        "no heartbeat watch: TTL alone governs the cache"
    );
    assert_eq!(plain.issuer_health(&login_id(), 50), None);
    assert_eq!(plain.validation_cache_stats().unwrap().hits, 1);
}

#[test]
fn heartbeat_api_is_inert_without_configuration() {
    let facts = Arc::new(FactStore::new());
    let svc = OasisService::new(ServiceConfig::new("bare"), facts);
    assert!(!svc.watch_issuer(&login_id(), 10, 0));
    assert!(!svc.issuer_beat(&login_id(), 1));
    assert!(!svc.set_issuer_policy(&login_id(), DegradationPolicy::FailSafe));
    assert_eq!(svc.issuer_health(&login_id(), 1), None);
    assert_eq!(svc.degradation_stats(), None);
    assert!(svc.tick_heartbeats(100).is_empty());
}
