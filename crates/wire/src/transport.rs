//! Replication over TCP, and a leader-following client.
//!
//! Two adapters that connect the transport-agnostic replication core in
//! `oasis-store` to real sockets:
//!
//! * [`WireTransport`] — the cluster-internal side: implements
//!   [`ReplicationTransport`] by dialling each peer's `WireServer` and
//!   exchanging [`Request::Peer`]/[`Response::PeerAck`] frames. Give one
//!   to [`ReplicaNode::new`](oasis_store::ReplicaNode::new) and the
//!   quorum-replicated journal works across processes and hosts.
//! * [`FailoverClient`] — the client side: wraps a [`WireClient`] over a
//!   list of candidate replica addresses, follows
//!   [`Response::NotLeader`] hints to the current leader, and retries
//!   through elections under a capped-backoff
//!   [`RetryPolicy`](oasis_core::retry::RetryPolicy), so a caller sees
//!   one logical service instead of N nodes.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};

use parking_lot::Mutex;

use oasis_core::cert::Rmc;
use oasis_core::durable::CatchUpReport;
use oasis_core::retry::{Backoff, RetryPolicy};
use oasis_core::{CertEvent, Credential, OasisService, PrincipalId, Value};
use oasis_events::DeliveredEvent;
use oasis_store::{PeerReply, PeerRequest, ReplicationTransport, StoreError};

use crate::client::{WireClient, WireTimeouts};
use crate::error::WireError;
use crate::proto::{Request, Response};

/// [`ReplicationTransport`] over TCP: resolves peer node ids to
/// addresses through a static directory and keeps one cached
/// [`WireClient`] per peer.
///
/// A transport error drops the cached connection (the peer may be
/// restarting) and surfaces as [`StoreError::Io`]; the replication core
/// treats the peer as unreachable for that round and the next round
/// re-dials. No retries happen here — the replication protocol already
/// tolerates lost rounds, and blocking a heartbeat fan-out on backoff
/// would slow every peer behind the broken one.
pub struct WireTransport {
    peers: HashMap<String, SocketAddr>,
    connections: Mutex<HashMap<String, WireClient>>,
    timeouts: WireTimeouts,
}

impl std::fmt::Debug for WireTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireTransport")
            .field("peers", &self.peers)
            .finish()
    }
}

impl WireTransport {
    /// Builds a transport over a `node id -> address` directory, using
    /// short per-operation deadlines (one second): replication rounds
    /// run on the leader's heartbeat cadence, so a slow peer must cost
    /// bounded time, not a default five-second stall per round.
    pub fn new(peers: impl IntoIterator<Item = (String, SocketAddr)>) -> Self {
        Self::with_timeouts(peers, WireTimeouts::all(std::time::Duration::from_secs(1)))
    }

    /// As [`WireTransport::new`] with explicit socket deadlines.
    pub fn with_timeouts(
        peers: impl IntoIterator<Item = (String, SocketAddr)>,
        timeouts: WireTimeouts,
    ) -> Self {
        Self {
            peers: peers.into_iter().collect(),
            connections: Mutex::new(HashMap::new()),
            timeouts,
        }
    }

    fn try_call(
        &self,
        peer: &str,
        addr: SocketAddr,
        req: &PeerRequest,
    ) -> Result<PeerReply, WireError> {
        let mut connections = self.connections.lock();
        let client = match connections.entry(peer.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(WireClient::connect_with(addr, self.timeouts)?)
            }
        };
        match client.call(&Request::Peer { req: req.clone() }) {
            Ok(Response::PeerAck { reply }) => Ok(reply),
            Ok(other) => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
            Err(e) => Err(e),
        }
    }
}

impl ReplicationTransport for WireTransport {
    fn call(&self, peer: &str, req: &PeerRequest) -> Result<PeerReply, StoreError> {
        let Some(addr) = self.peers.get(peer).copied() else {
            return Err(StoreError::Io(format!("unknown peer `{peer}`")));
        };
        self.try_call(peer, addr, req).map_err(|e| {
            // Whatever went wrong, the cached stream is suspect.
            self.connections.lock().remove(peer);
            StoreError::Io(format!("peer `{peer}`: {e}"))
        })
    }
}

/// A client over a replicated CIV cluster that always talks to the
/// leader.
///
/// Holds the candidate addresses of every replica. Each call dials (or
/// reuses) a connection; a [`WireError::NotLeader`] answer re-dials the
/// hinted leader address immediately, an unhinted one (mid-election)
/// rotates to the next candidate after a backoff delay, and transport
/// errors (dead node) likewise rotate. The whole chase is bounded by the
/// configured [`RetryPolicy`] — when the cluster genuinely has no
/// quorum, the caller gets the last error instead of an infinite loop.
pub struct FailoverClient {
    candidates: Vec<String>,
    /// Index into `candidates` to try next when no hint is available.
    cursor: usize,
    conn: Option<WireClient>,
    timeouts: WireTimeouts,
    retry: RetryPolicy,
    deadline_ms: Option<u64>,
    /// Seed for the per-chase backoff jitter. Defaults to an FNV-1a
    /// fold of the candidate list, so two clients pointed at the same
    /// cluster de-synchronise their chase delays while each client's
    /// own schedule stays reproducible.
    backoff_seed: Option<u64>,
    stats: FailoverStats,
}

/// Counters from a [`FailoverClient`]'s leader chase — the wire-side
/// trace hook: how many dials, hint follows, and candidate rotations a
/// scenario's failovers actually cost the client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverStats {
    /// Connection attempts (initial dials, re-dials, hint dials).
    pub dials: u64,
    /// `NotLeader` answers received from followers.
    pub not_leader_answers: u64,
    /// `NotLeader` hints successfully followed to a new leader.
    pub hint_follows: u64,
    /// Blind rotations to the next candidate (no usable hint).
    pub rotations: u64,
}

impl FailoverStats {
    /// Compact single-line JSON for chaos/conformance traces, keys
    /// sorted (shared `oasis-obs` encoder).
    pub fn trace_json(&self) -> String {
        oasis_obs::kv_json(&[
            ("dials", self.dials.into()),
            ("hint_follows", self.hint_follows.into()),
            ("not_leader_answers", self.not_leader_answers.into()),
            ("rotations", self.rotations.into()),
        ])
    }
}

impl std::fmt::Debug for FailoverClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverClient")
            .field("candidates", &self.candidates)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

impl FailoverClient {
    /// A client over `candidates` (replica client addresses, any order)
    /// with default timeouts and the default retry schedule.
    pub fn new(candidates: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Self {
            candidates: candidates.into_iter().map(Into::into).collect(),
            cursor: 0,
            conn: None,
            timeouts: WireTimeouts::default(),
            retry: RetryPolicy::default(),
            deadline_ms: None,
            backoff_seed: None,
            stats: FailoverStats::default(),
        }
    }

    /// A snapshot of the chase counters.
    pub fn stats(&self) -> FailoverStats {
        self.stats
    }

    /// Replaces the socket deadlines used when dialling.
    #[must_use]
    pub fn with_timeouts(mut self, timeouts: WireTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Replaces the retry schedule bounding each leader chase.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Propagates a deadline budget (ms) with every call.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Pins the jitter seed for the hint-chase backoff (tests and
    /// deterministic replays). Without this the seed derives from the
    /// candidate list.
    #[must_use]
    pub fn with_backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = Some(seed);
        self
    }

    /// The effective jitter seed: pinned, or FNV-1a over candidates.
    fn jitter_seed(&self) -> u64 {
        if let Some(seed) = self.backoff_seed {
            return seed;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for c in &self.candidates {
            for b in c.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Connects to `addr`, replacing any cached connection.
    fn dial(&mut self, addr: &str) -> Result<(), WireError> {
        self.stats.dials += 1;
        let mut client = WireClient::connect_with(addr, self.timeouts)?;
        client.set_deadline_ms(self.deadline_ms);
        self.conn = Some(client);
        Ok(())
    }

    /// The next candidate address in rotation.
    fn next_candidate(&mut self) -> String {
        self.stats.rotations += 1;
        let addr = self.candidates[self.cursor % self.candidates.len()].clone();
        self.cursor = (self.cursor + 1) % self.candidates.len();
        addr
    }

    /// One request against the current leader, chasing `NotLeader` hints
    /// and rotating candidates under the retry schedule.
    ///
    /// # Errors
    ///
    /// The final error once the schedule is exhausted: transport errors,
    /// [`WireError::NotLeader`] when no leader emerged in time, or any
    /// authoritative server answer ([`WireError::Remote`],
    /// [`WireError::Overloaded`], [`WireError::DeadlineExceeded`]) which
    /// is returned immediately without retrying.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        assert!(
            !self.candidates.is_empty(),
            "FailoverClient needs at least one candidate address"
        );
        let mut backoff = Backoff::with_seed(self.retry, self.jitter_seed());
        loop {
            // Ensure a connection, rotating candidates on dial failure.
            if self.conn.is_none() {
                let addr = self.next_candidate();
                if let Err(dial_err) = self.dial(&addr) {
                    match backoff.next_delay() {
                        Some(delay) => {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                            continue;
                        }
                        None => return Err(dial_err),
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection established above");
            match conn.call(request) {
                Ok(response) => return Ok(response),
                Err(WireError::NotLeader { hint }) => {
                    // The follower is alive; only the *role* is wrong.
                    // A hint is followed for free (no backoff charge —
                    // it names the leader); without one the election is
                    // still settling, so wait before probing the next
                    // candidate.
                    self.stats.not_leader_answers += 1;
                    self.conn = None;
                    // Hinted leader unreachable falls through to the
                    // normal rotation below.
                    if hint.is_some_and(|leader| self.dial(&leader).is_ok()) {
                        self.stats.hint_follows += 1;
                        continue;
                    }
                    match backoff.next_delay() {
                        Some(delay) => {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                        }
                        None => return Err(WireError::NotLeader { hint: None }),
                    }
                }
                // Authoritative answers: the server executed (or
                // deliberately refused) the request. Never retried here.
                Err(
                    e @ (WireError::Remote(_)
                    | WireError::Overloaded { .. }
                    | WireError::DeadlineExceeded
                    | WireError::UnexpectedResponse(_)),
                ) => return Err(e),
                Err(transport) => {
                    // Dead or partitioned node: drop it, rotate.
                    self.conn = None;
                    match backoff.next_delay() {
                        Some(delay) => {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                        }
                        None => return Err(transport),
                    }
                }
            }
        }
    }

    /// Liveness check against whichever node answers.
    ///
    /// # Errors
    ///
    /// As [`FailoverClient::call`].
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Activates a role at the cluster leader.
    ///
    /// # Errors
    ///
    /// As [`FailoverClient::call`].
    pub fn activate(
        &mut self,
        principal: &PrincipalId,
        role: &str,
        args: Vec<Value>,
        credentials: Vec<Credential>,
        now: u64,
    ) -> Result<Rmc, WireError> {
        let request = Request::Activate {
            principal: principal.clone(),
            role: role.to_string(),
            args,
            credentials,
            now,
        };
        match self.call(&request)? {
            Response::Activated { rmc } => Ok(*rmc),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Revokes a certificate at the cluster leader.
    ///
    /// # Errors
    ///
    /// As [`FailoverClient::call`].
    pub fn revoke(&mut self, cert_id: u64, reason: &str, now: u64) -> Result<bool, WireError> {
        let request = Request::Revoke {
            cert_id,
            reason: reason.to_string(),
            now,
        };
        match self.call(&request)? {
            Response::Revoked { was_active } => Ok(was_active),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Replays the leader's retained revocation ring after a watermark.
    ///
    /// # Errors
    ///
    /// As [`FailoverClient::call`].
    pub fn resync(
        &mut self,
        topic: &str,
        after_topic_seq: u64,
    ) -> Result<(Vec<DeliveredEvent<CertEvent>>, bool), WireError> {
        let request = Request::Resync {
            topic: topic.to_string(),
            after_topic_seq,
        };
        match self.call(&request)? {
            Response::Resynced { events, complete } => {
                Ok((events.into_iter().map(Into::into).collect(), complete))
            }
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// One full catch-up cycle against the cluster: fetch the missed
    /// revocations after `service`'s watermark from whichever node leads
    /// and apply them (see [`WireClient::catch_up`]).
    ///
    /// # Errors
    ///
    /// As [`FailoverClient::call`].
    pub fn catch_up(
        &mut self,
        service: &OasisService,
        topic: &str,
        now: u64,
    ) -> Result<CatchUpReport, WireError> {
        let after = service.watermark_for(topic);
        let (events, complete) = self.resync(topic, after)?;
        Ok(service.catch_up_with(topic, &events, complete, now))
    }
}

/// Resolves a `host:port` hint string to a socket address.
pub(crate) fn resolve_hint(hint: &str) -> Option<SocketAddr> {
    hint.to_socket_addrs().ok()?.next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// A permanently partitioned leader looks like candidates that
    /// never answer. The hint chase must terminate with a bounded
    /// error — max_attempts dial failures, each backoff-delayed — and
    /// not spin.
    #[test]
    fn hint_chase_terminates_when_leader_is_unreachable() {
        // Reserved port that nothing listens on: dials fail fast.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve");
            l.local_addr().expect("addr").to_string()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(2),
            total_delay_cap: std::time::Duration::from_millis(20),
            jitter: 0.25,
        };
        let mut client = FailoverClient::new([dead.clone(), dead])
            .with_timeouts(WireTimeouts {
                connect: Some(std::time::Duration::from_millis(50)),
                read: Some(std::time::Duration::from_millis(50)),
                write: Some(std::time::Duration::from_millis(50)),
            })
            .with_retry(policy)
            .with_backoff_seed(42);
        let started = Instant::now();
        let err = client.ping().expect_err("no leader can ever answer");
        assert!(
            matches!(err, WireError::Io(_) | WireError::TimedOut { .. }),
            "bounded transport error, got {err:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "chase must terminate promptly, took {:?}",
            started.elapsed()
        );
        // max_attempts dials happened (one per schedule slot, then the
        // schedule ran dry) — no unbounded spin.
        assert_eq!(client.stats().dials, 3);
    }

    /// The default jitter seed is a pure function of the candidate
    /// list; pinning it overrides that.
    #[test]
    fn jitter_seed_is_deterministic_per_candidate_list() {
        let a = FailoverClient::new(["10.0.0.1:1", "10.0.0.2:2"]);
        let b = FailoverClient::new(["10.0.0.1:1", "10.0.0.2:2"]);
        let c = FailoverClient::new(["10.0.0.2:2", "10.0.0.1:1"]);
        assert_eq!(a.jitter_seed(), b.jitter_seed());
        assert_ne!(a.jitter_seed(), c.jitter_seed(), "order-sensitive");
        assert_eq!(a.with_backoff_seed(7).jitter_seed(), 7);
    }
}
