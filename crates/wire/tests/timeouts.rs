//! Deadline behaviour of the wire layer: read timeouts surfacing as
//! [`WireError::TimedOut`], and the [`RemoteValidator`] mapping exhausted
//! retries against a silent issuer to [`OasisError::IssuerTimeout`].

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use oasis_core::retry::RetryPolicy;
use oasis_core::{CredentialValidator, OasisError, PrincipalId, RoleName, Value};
use oasis_wire::{RemoteValidator, WireClient, WireError, WireTimeouts};

/// A server that accepts connections and then says nothing, forever:
/// the shape of a partitioned or wedged issuer.
fn silent_server() -> (SocketAddr, TcpListener) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accept = listener.try_clone().unwrap();
    std::thread::spawn(move || {
        // Hold accepted sockets open so the client blocks on read, not
        // on a reset.
        let mut held = Vec::new();
        while let Ok((stream, _)) = accept.accept() {
            held.push(stream);
        }
    });
    (addr, listener)
}

fn some_rmc() -> oasis_core::cert::Rmc {
    let secret = oasis_crypto::IssuerSecret::random();
    oasis_core::cert::Rmc::issue(
        &secret.current(),
        oasis_crypto::SecretEpoch(0),
        &PrincipalId::new("alice"),
        oasis_core::Crr::new("login".into(), oasis_core::CertId(1)),
        RoleName::new("logged_in"),
        vec![Value::id("alice")],
        0,
        None,
    )
}

#[test]
fn read_deadline_surfaces_as_timed_out() {
    let (addr, _listener) = silent_server();
    let mut client = WireClient::connect_with(
        addr,
        WireTimeouts {
            connect: Some(Duration::from_secs(2)),
            read: Some(Duration::from_millis(50)),
            write: Some(Duration::from_secs(2)),
        },
    )
    .unwrap();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, WireError::TimedOut { op: "read" }),
        "expected read timeout, got {err:?}"
    );
    assert!(err.is_timeout());
}

#[test]
fn remote_validator_maps_silence_to_issuer_timeout() {
    let (addr, _listener) = silent_server();
    let validator = RemoteValidator::new()
        .with_timeouts(WireTimeouts::all(Duration::from_millis(50)))
        .with_retry(RetryPolicy::immediate(2));
    validator.add_issuer("login", addr);

    let rmc = some_rmc();
    let started = std::time::Instant::now();
    let err = validator
        .validate(
            &oasis_core::Credential::Rmc(rmc),
            &PrincipalId::new("alice"),
            1,
        )
        .unwrap_err();
    assert!(
        matches!(err, OasisError::IssuerTimeout(ref id) if id.as_str() == "login"),
        "expected IssuerTimeout, got {err:?}"
    );
    // Two attempts at ~50ms each, zero backoff: well under a second.
    assert!(started.elapsed() < Duration::from_secs(2));
}

#[test]
fn remote_validator_recovers_when_issuer_comes_back() {
    // Unroutable until registered: no listener at all → connection
    // refused (not a timeout) → NoValidator after retries.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
        // listener dropped: the port is closed.
    };
    let validator = Arc::new(
        RemoteValidator::new()
            .with_timeouts(WireTimeouts::all(Duration::from_millis(200)))
            .with_retry(RetryPolicy::immediate(2)),
    );
    validator.add_issuer("login", dead);
    let rmc = some_rmc();
    let err = validator
        .validate(
            &oasis_core::Credential::Rmc(rmc),
            &PrincipalId::new("alice"),
            1,
        )
        .unwrap_err();
    assert!(
        matches!(err, OasisError::NoValidator(_)),
        "refused connection is not a timeout: {err:?}"
    );
}
