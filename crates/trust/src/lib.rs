//! Audit certificates, interaction histories, and risk assessment for
//! mutually unknown parties — Section 6 of the paper.
//!
//! "Both parties should be able to present checkable credentials which
//! provide evidence of previous successful interactions. … After an
//! interaction subject to contract the CIV service creates an audit
//! certificate which it issues to both parties and validates on request.
//! … Each party may then take a calculated risk on whether to proceed."
//!
//! The paper also names the attacks any such scheme must weather: "a
//! client and service might collude to build up a false history of
//! trustworthiness. Similarly, a rogue domain might provide valueless
//! audit certificates, or repudiate those issued to clients who had acted
//! in good faith. The domain of the auditing service for a certificate is
//! a factor that must be taken into account when assessing the risk."
//!
//! This crate implements the proposal and its defences:
//!
//! * [`AuditCertificate`] / [`CivNotary`] — MAC-signed interaction records
//!   issued by a domain's CIV service, validated on request.
//! * [`InteractionHistory`] — a party's accumulated certificates.
//! * [`TrustAssessor`] — evidence aggregation: a Beta-posterior trust
//!   estimate with exponential time decay and **per-CIV weighting**, so
//!   evidence notarised by unknown or rogue domains counts for little.
//! * [`RiskPolicy`] — thresholds turning a score into
//!   proceed / proceed-with-bond / refuse.
//! * [`population`] — a seeded simulation of honest, rogue, and colluding
//!   principals used by the TAB-T experiment to show trust converging
//!   despite a Byzantine minority.
//! * [`ByzantineCiv`] — a notary that can turn rogue mid-run
//!   (repudiation, whitewashing, forgery, fabricated histories), the
//!   scriptable-fault adapter driven by the conformance harness.
//!
//! # Example
//!
//! ```
//! use oasis_trust::{CivNotary, Outcome, RiskPolicy, TrustAssessor};
//! use oasis_core::{PrincipalId, ServiceId};
//!
//! let notary = CivNotary::new("hospital.civ");
//! let client = PrincipalId::new("alice");
//! let provider = ServiceId::new("library");
//!
//! let cert = notary.notarise(&client, &provider, "loan-42", Outcome::Fulfilled, 100);
//! assert!(notary.validate(&cert));
//!
//! let assessor = TrustAssessor::new(1_000);
//! let score = assessor.score_client(std::slice::from_ref(&cert), &client, 150, |_| 1.0);
//! assert!(score.expectation > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assess;
mod byzantine;
mod cert;
mod history;
pub mod population;

pub use assess::{Decision, RiskPolicy, TrustAssessor, TrustScore};
pub use byzantine::ByzantineCiv;
pub use cert::{AuditCertificate, CivNotary, Outcome};
pub use history::InteractionHistory;
