//! A party's accumulated interaction history.

use std::fmt;

use oasis_core::{PrincipalId, ServiceId};

use crate::cert::{AuditCertificate, Outcome};

/// The audit certificates a party has accumulated and can present as
/// "checkable credentials which provide evidence of previous successful
/// interactions" (Sect. 6).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InteractionHistory {
    certificates: Vec<AuditCertificate>,
}

impl InteractionHistory {
    /// An empty history (a newcomer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a certificate.
    pub fn add(&mut self, cert: AuditCertificate) {
        self.certificates.push(cert);
    }

    /// All certificates, in acquisition order.
    pub fn certificates(&self) -> &[AuditCertificate] {
        &self.certificates
    }

    /// Certificates in which `client` was the client party.
    pub fn as_client(&self, client: &PrincipalId) -> Vec<&AuditCertificate> {
        self.certificates
            .iter()
            .filter(|c| c.client == *client)
            .collect()
    }

    /// Certificates in which `provider` was the provider party.
    pub fn as_provider(&self, provider: &ServiceId) -> Vec<&AuditCertificate> {
        self.certificates
            .iter()
            .filter(|c| c.provider == *provider)
            .collect()
    }

    /// Keeps only certificates the given verifier accepts (e.g. "validated
    /// by a CIV registry I recognise"), returning how many were dropped.
    pub fn retain_verified(&mut self, verify: impl Fn(&AuditCertificate) -> bool) -> usize {
        let before = self.certificates.len();
        self.certificates.retain(|c| verify(c));
        before - self.certificates.len()
    }

    /// `(fulfilled, defaulted, disputed)` counts across the history.
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.certificates {
            match c.outcome {
                Outcome::Fulfilled => counts.0 += 1,
                Outcome::ClientDefaulted | Outcome::ProviderDefaulted => counts.1 += 1,
                Outcome::Disputed => counts.2 += 1,
            }
        }
        counts
    }

    /// Number of certificates held.
    pub fn len(&self) -> usize {
        self.certificates.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.certificates.is_empty()
    }
}

impl Extend<AuditCertificate> for InteractionHistory {
    fn extend<T: IntoIterator<Item = AuditCertificate>>(&mut self, iter: T) {
        self.certificates.extend(iter);
    }
}

impl FromIterator<AuditCertificate> for InteractionHistory {
    fn from_iter<T: IntoIterator<Item = AuditCertificate>>(iter: T) -> Self {
        Self {
            certificates: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for InteractionHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ok, bad, disputed) = self.outcome_counts();
        write!(
            f,
            "history: {} certificates ({ok} fulfilled, {bad} defaulted, {disputed} disputed)",
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CivNotary;

    fn certs() -> (CivNotary, InteractionHistory, PrincipalId, ServiceId) {
        let notary = CivNotary::new("civ");
        let alice = PrincipalId::new("alice");
        let library = ServiceId::new("library");
        let mut history = InteractionHistory::new();
        history.add(notary.notarise(&alice, &library, "c1", Outcome::Fulfilled, 1));
        history.add(notary.notarise(&alice, &library, "c2", Outcome::ClientDefaulted, 2));
        history.add(notary.notarise(
            &PrincipalId::new("bob"),
            &library,
            "c3",
            Outcome::Disputed,
            3,
        ));
        (notary, history, alice, library)
    }

    #[test]
    fn filters_by_party() {
        let (_n, history, alice, library) = certs();
        assert_eq!(history.as_client(&alice).len(), 2);
        assert_eq!(history.as_provider(&library).len(), 3);
    }

    #[test]
    fn outcome_counts_add_up() {
        let (_n, history, _, _) = certs();
        assert_eq!(history.outcome_counts(), (1, 1, 1));
        assert_eq!(history.len(), 3);
    }

    #[test]
    fn retain_verified_drops_forgeries() {
        let (notary, mut history, alice, library) = certs();
        let forger = CivNotary::new("civ");
        history.add(forger.notarise(&alice, &library, "fake", Outcome::Fulfilled, 4));
        let dropped = history.retain_verified(|c| notary.validate(c));
        assert_eq!(dropped, 1);
        assert_eq!(history.len(), 3);
    }

    #[test]
    fn display_summarises() {
        let (_n, history, _, _) = certs();
        assert_eq!(
            history.to_string(),
            "history: 3 certificates (1 fulfilled, 1 defaulted, 1 disputed)"
        );
    }
}
