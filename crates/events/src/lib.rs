//! Event-based middleware substrate for OASIS active security.
//!
//! The OASIS architecture (Bacon, Moody, Yao; Middleware 2001) assumes an
//! *active* middleware platform — the Cambridge Event Architecture of
//! ref \[2\] — through which services are notified of relevant changes in
//! their environment without polling. Two mechanisms from the paper are
//! modelled here:
//!
//! * **Event channels** (Fig 1, Fig 5): when service *C* issues a role
//!   membership certificate whose activation depended on credentials issued
//!   by services *A* and *B*, it subscribes to channels on which *A* and *B*
//!   publish revocation or change events. Should a supporting credential be
//!   invalidated, *C* learns immediately and can collapse the dependent role
//!   subtree.
//! * **Heartbeats** (Fig 5): issuers emit periodic heartbeats; a verifier
//!   that misses heartbeats treats cached validation results as stale.
//!
//! The crate is deliberately generic: [`EventBus`] carries any message type,
//! and time is *virtual* (caller-supplied `u64` ticks) so that the
//! deterministic simulator in `oasis-sim` and the benchmarks can drive it
//! reproducibly.
//!
//! # Example
//!
//! ```
//! use oasis_events::{EventBus, Topic};
//!
//! let bus: EventBus<String> = EventBus::new();
//! let sub = bus.subscribe("cred.revoked.*").unwrap();
//! bus.publish(&Topic::new("cred.revoked.hospital"), "rmc-42".to_string());
//! let event = sub.try_recv().unwrap();
//! assert_eq!(event.payload, "rmc-42");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod channel;
mod error;
mod heartbeat;
mod stats;
mod topic;

pub use bus::{
    CallbackId, DeliveredEvent, EventBus, OverflowPolicy, Subscription, SubscriptionId,
    OVERFLOW_TOPIC_PREFIX,
};
pub use channel::{channel, ChannelReceiver, ChannelSender};
pub use error::EventError;
pub use heartbeat::{HeartbeatMonitor, SourceHealth, SourceId};
pub use stats::BusStats;
pub use topic::{Topic, TopicPattern};
