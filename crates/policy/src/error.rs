//! Policy-language errors with source positions.

/// A position in the policy source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised while parsing, checking, or applying a policy.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// The lexer met a character it cannot start a token with.
    UnexpectedChar {
        /// Where.
        pos: Pos,
        /// The offending character.
        found: char,
    },

    /// A string literal ran to end of input.
    UnterminatedString {
        /// Where the literal started.
        pos: Pos,
    },

    /// A number or time literal did not fit its type.
    BadLiteral {
        /// Where.
        pos: Pos,
        /// The offending text.
        text: String,
    },

    /// The parser expected something else.
    Unexpected {
        /// Where.
        pos: Pos,
        /// What would have been valid.
        expected: String,
        /// What was actually there.
        found: String,
    },

    /// A rule or condition referenced an undefined role.
    UnknownRole {
        /// Where.
        pos: Pos,
        /// The service block.
        service: String,
        /// The missing role.
        role: String,
    },

    /// A condition referenced an undefined appointment kind.
    UnknownAppointment {
        /// Where.
        pos: Pos,
        /// The service block.
        service: String,
        /// The missing appointment.
        name: String,
    },

    /// Arity mismatch against a declared role or appointment.
    Arity {
        /// Where.
        pos: Pos,
        /// The role/appointment.
        name: String,
        /// Declared arity.
        expected: usize,
        /// Written arity.
        actual: usize,
    },

    /// A constant argument's type contradicts the declared schema.
    ArgType {
        /// Where.
        pos: Pos,
        /// The role/appointment.
        name: String,
        /// Zero-based argument position.
        index: usize,
        /// Declared type.
        expected: String,
        /// Written literal's type.
        actual: String,
    },

    /// A name was declared twice in one service block.
    Duplicate {
        /// Where the second declaration is.
        pos: Pos,
        /// The service block.
        service: String,
        /// The duplicated name.
        name: String,
    },

    /// A membership index is out of range for its rule.
    MembershipRange {
        /// Where.
        pos: Pos,
        /// The offending index.
        index: usize,
        /// Number of conditions in the rule.
        conditions: usize,
    },

    /// A negated condition uses a variable no earlier positive condition
    /// or head parameter binds (unsafe negation-as-failure).
    UnsafeNegation {
        /// Where.
        pos: Pos,
        /// The unbound variable.
        var: String,
    },

    /// No sequence of rule applications can ever activate this role
    /// (every rule depends, directly or transitively, on the role itself
    /// or on another ungroundable local role).
    UngroundableRole {
        /// The service block.
        service: String,
        /// The dead role.
        role: String,
    },

    /// `apply_to` was called with a service whose id matches no block.
    NoSuchService(String),

    /// An error surfaced from the core while installing the policy.
    Core(String),
}

impl From<oasis_core::OasisError> for PolicyError {
    fn from(e: oasis_core::OasisError) -> Self {
        PolicyError::Core(e.to_string())
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnexpectedChar { pos, found } => write!(
                f,
                "{pos}: unexpected character `{found}`"
            ),
            Self::UnterminatedString { pos } => write!(
                f,
                "{pos}: unterminated string literal"
            ),
            Self::BadLiteral { pos, text } => write!(
                f,
                "{pos}: malformed literal `{text}`"
            ),
            Self::Unexpected { pos, expected, found } => write!(
                f,
                "{pos}: expected {expected}, found `{found}`"
            ),
            Self::UnknownRole { pos, service, role } => write!(
                f,
                "{pos}: unknown role `{role}` in service `{service}`"
            ),
            Self::UnknownAppointment { pos, service, name } => write!(
                f,
                "{pos}: unknown appointment `{name}` in service `{service}`"
            ),
            Self::Arity { pos, name, expected, actual } => write!(
                f,
                "{pos}: `{name}` takes {expected} arguments, got {actual}"
            ),
            Self::ArgType { pos, name, index, expected, actual } => write!(
                f,
                "{pos}: `{name}` argument {index} expects {expected}, got a {actual}"
            ),
            Self::Duplicate { pos, service, name } => write!(
                f,
                "{pos}: `{name}` is declared twice in service `{service}`"
            ),
            Self::MembershipRange { pos, index, conditions } => write!(
                f,
                "{pos}: membership index {index} out of range (rule has {conditions} conditions)"
            ),
            Self::UnsafeNegation { pos, var } => write!(
                f,
                "{pos}: unsafe negation: variable `{var}` is not bound by the head or an earlier positive condition"
            ),
            Self::UngroundableRole { service, role } => write!(
                f,
                "role `{role}` in service `{service}` can never be activated (circular prerequisites)"
            ),
            Self::NoSuchService(x0) => write!(f, "policy has no service block named `{x0}`"),
            Self::Core(x0) => write!(f, "installing policy: {x0}"),
        }
    }
}

impl std::error::Error for PolicyError {}
