//! Length-prefixed JSON framing.
//!
//! Every message is a big-endian `u32` byte length followed by that many
//! bytes of JSON. Frames are capped at [`MAX_FRAME`] to keep a misbehaving
//! peer from ballooning server memory.

use std::io::{Read, Write};

use oasis_json::{FromJson, Json, ToJson};

use crate::error::WireError;

/// Maximum frame payload size (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Serialises `message` and writes one frame.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for oversized messages, [`WireError::Io`]
/// for socket failures.
pub fn write_frame<W, M>(writer: &mut W, message: &M) -> Result<(), WireError>
where
    W: Write,
    M: ToJson,
{
    let payload = message.to_json().to_string().into_bytes();
    if payload.len() > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            got: payload.len(),
            limit: MAX_FRAME,
        });
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame and deserialises it. Returns `Ok(None)` on a clean
/// end-of-stream at a frame boundary.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`], [`WireError::Malformed`],
/// [`WireError::Closed`] (EOF mid-frame), or [`WireError::Io`].
pub fn read_frame<R, M>(reader: &mut R) -> Result<Option<M>, WireError>
where
    R: Read,
    M: FromJson,
{
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            got: len,
            limit: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Closed,
            _ => WireError::Io(e),
        })?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| WireError::Malformed(oasis_json::JsonError::new("frame is not utf-8")))?;
    let value = Json::parse(text)?;
    Ok(Some(M::from_json(&value)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![1u32, 2, 3]).unwrap();
        let got: Option<Vec<u32>> = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, Some(vec![1, 2, 3]));
    }

    #[test]
    fn multiple_frames_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"first".to_string()).unwrap();
        write_frame(&mut buf, &"second".to_string()).unwrap();
        let mut reader = buf.as_slice();
        let one: Option<String> = read_frame(&mut reader).unwrap();
        let two: Option<String> = read_frame(&mut reader).unwrap();
        assert_eq!(one.as_deref(), Some("first"));
        assert_eq!(two.as_deref(), Some("second"));
    }

    #[test]
    fn clean_eof_returns_none() {
        let empty: &[u8] = &[];
        let got: Option<String> = read_frame(&mut { empty }).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn eof_mid_frame_is_closed_error() {
        // Announce 100 bytes but send only 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame::<_, String>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Closed));
    }

    #[test]
    fn oversized_header_rejected_without_allocation() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame::<_, String>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
    }

    #[test]
    fn garbage_payload_is_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"{{{");
        let err = read_frame::<_, String>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
    }
}
