//! Durable storage for OASIS services.
//!
//! OASIS's active-security guarantee — revoke a supporting credential
//! and the dependent roles collapse *immediately* — is only as strong
//! as the issuing service's memory. This crate makes that memory
//! survive a crash:
//!
//! * [`Journal`] — an append-only, checksummed write-ahead log of
//!   security events, written *before* any state change is
//!   acknowledged. A torn tail (crash mid-append) is detected by
//!   checksum, healed, and reported — never trusted and never a
//!   panic.
//! * [`SnapshotStore`] — a single checksummed blob of the full state
//!   as of a journal sequence number, so recovery does not replay the
//!   journal from the beginning of time.
//! * [`DurableStore`] — the pairing the service layer uses: append
//!   events, then periodically snapshot and truncate the log.
//!
//! The crate is deliberately generic: it journals any `ToJson +
//! FromJson` payload and knows nothing about certificates or roles.
//! `oasis-core` defines the `SecurityEvent` / `ServiceSnapshot` types
//! and owns replay semantics; this crate owns bytes, checksums, and
//! crash-tolerance.
//!
//! # Backends
//!
//! [`MemBackend`] keeps bytes in a shared buffer that survives as
//! long as any clone of the handle — the crash model used by the
//! simulator and chaos tests (drop the service, keep the handle,
//! restart from it). [`FileBackend`] is the same contract against a
//! real file, with atomic replace via rename.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
mod journal;
pub mod replicated;
mod snapshot;

pub use backend::{FileBackend, MemBackend, StorageBackend};
pub use error::StoreError;
pub use journal::{Journal, JournalStats, LoadedJournal, TailReport};
pub use replicated::{
    LocalMesh, LogEntry, PeerReply, PeerRequest, RegionOp, ReplicaConfig, ReplicaNode,
    ReplicaStats, ReplicatedStore, ReplicationTransport, Role,
};
pub use snapshot::{SnapshotLoad, SnapshotStore};

use std::path::Path;
use std::sync::Arc;

use oasis_json::{FromJson, ToJson};

/// What [`DurableStore::load`] recovered.
#[derive(Debug)]
pub struct Recovered<E, S> {
    /// The latest valid snapshot, if any, with the journal sequence
    /// it covers.
    pub snapshot: Option<(u64, S)>,
    /// True when snapshot bytes were present but failed validation;
    /// the events below then cover the whole journal.
    pub snapshot_corrupt: bool,
    /// Journal records *after* the snapshot's covered sequence, in
    /// append order.
    pub events: Vec<(u64, E)>,
    /// Tail damage found in the journal (skipped, not fatal).
    pub tail: TailReport,
}

/// Journal + snapshot pair for one service.
///
/// Clones share both backends, so a test can keep a handle across a
/// simulated crash and hand it to the restarted service.
pub struct DurableStore<E, S> {
    journal: Journal<E>,
    snapshots: SnapshotStore<S>,
    open_tail: TailReport,
}

impl<E, S> Clone for DurableStore<E, S> {
    fn clone(&self) -> Self {
        Self {
            journal: self.journal.clone(),
            snapshots: self.snapshots.clone(),
            open_tail: self.open_tail,
        }
    }
}

impl<E, S> DurableStore<E, S>
where
    E: ToJson + FromJson,
    S: ToJson + FromJson,
{
    /// Opens a store over explicit journal and snapshot backends.
    pub fn open(
        journal_backend: Arc<dyn StorageBackend>,
        snapshot_backend: Arc<dyn StorageBackend>,
    ) -> Result<Self, StoreError> {
        let (journal, open_tail) = Journal::open(journal_backend)?;
        Ok(Self {
            journal,
            snapshots: SnapshotStore::new(snapshot_backend),
            open_tail,
        })
    }

    /// An in-memory store (fresh, empty backends).
    pub fn in_memory() -> Self {
        Self::open(Arc::new(MemBackend::new()), Arc::new(MemBackend::new()))
            .expect("in-memory open cannot fail")
    }

    /// Opens (creating if needed) `dir/journal.log` and
    /// `dir/snapshot.bin`.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        Self::open(
            Arc::new(FileBackend::open(dir.join("journal.log"))?),
            Arc::new(FileBackend::open(dir.join("snapshot.bin"))?),
        )
    }

    /// Appends one event; returns its journal sequence number. The
    /// caller must not apply the corresponding state change until
    /// this returns `Ok`.
    pub fn append(&self, event: &E) -> Result<u64, StoreError> {
        self.journal.append(event)
    }

    /// Loads the snapshot (if valid) and every journal record after
    /// it, tolerating a torn journal tail and a corrupt snapshot.
    pub fn load(&self) -> Result<Recovered<E, S>, StoreError> {
        let snap = self.snapshots.load()?;
        let covered = snap.snapshot.as_ref().map(|(seq, _)| *seq).unwrap_or(0);
        let loaded = self.journal.load()?;
        let events = loaded
            .records
            .into_iter()
            .filter(|(seq, _)| *seq > covered)
            .collect();
        Ok(Recovered {
            snapshot: snap.snapshot,
            snapshot_corrupt: snap.corrupt,
            events,
            tail: loaded.tail,
        })
    }

    /// Writes a snapshot covering journal records up to and including
    /// `covered_seq`, then truncates those records from the journal.
    /// Returns how many records were truncated.
    pub fn write_snapshot(&self, covered_seq: u64, state: &S) -> Result<u64, StoreError> {
        self.snapshots.write(covered_seq, state)?;
        self.journal.truncate_through(covered_seq)
    }

    /// The sequence number of the most recent append (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.journal.last_seq()
    }

    /// Journal counters.
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// Tail damage found (and healed) when this store was opened.
    pub fn open_tail(&self) -> TailReport {
        self.open_tail
    }
}
