//! Certificates and credential records (Fig 4 of the paper).
//!
//! Two certificate kinds exist in OASIS:
//!
//! * **Role membership certificates** ([`Rmc`]) — returned on successful
//!   role activation; session-scoped; presented as proof of authorisation
//!   to use services and as credentials for activating further roles.
//! * **Appointment certificates** ([`AppointmentCertificate`]) — issued by
//!   principals active in appointer roles; potentially long-lived
//!   (academic/professional qualification, employment, membership) or
//!   transient (standing in for a colleague); their lifetime is
//!   independent of any session.
//!
//! Both are MAC-protected over their fields with the *principal id as a
//! hidden input* — `F(principal_id, protected fields, SECRET)` — making
//! them principal-specific without recording the principal readably, and
//! both carry a credential record reference ([`Crr`]) locating the
//! issuer-side [`CredRecord`] so holders of the certificate can be
//! validated by callback and revoked by event (Fig 5).

use std::fmt;

use oasis_crypto::{MacSignature, PublicKey, SecretEpoch, SecretKey};

use crate::ids::{CertId, PrincipalId, RoleName, ServiceId};
use crate::value::Value;

/// Credential record reference: locates the issuer and the issuer-side
/// record of a certificate (the "CRR" of Fig 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Crr {
    /// The issuing service.
    pub issuer: ServiceId,
    /// The issuer-local certificate id.
    pub cert_id: CertId,
}

impl Crr {
    /// Creates a credential record reference.
    pub fn new(issuer: ServiceId, cert_id: CertId) -> Self {
        Self { issuer, cert_id }
    }
}

impl fmt::Display for Crr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.issuer, self.cert_id)
    }
}

/// Which kind of certificate a credential record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CredentialKind {
    /// A role membership certificate.
    Rmc,
    /// An appointment certificate.
    Appointment,
}

impl fmt::Display for CredentialKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredentialKind::Rmc => f.write_str("rmc"),
            CredentialKind::Appointment => f.write_str("appointment"),
        }
    }
}

/// Computes the canonical MAC input fields shared by both certificate
/// kinds. Field order is part of the format and must never change.
fn mac_fields(
    kind: CredentialKind,
    crr: &Crr,
    name: &str,
    args: &[Value],
    issued_at: u64,
    expires_at: Option<u64>,
    holder_key: Option<&PublicKey>,
) -> Vec<Vec<u8>> {
    let mut fields: Vec<Vec<u8>> = Vec::with_capacity(6 + args.len());
    fields.push(kind.to_string().into_bytes());
    fields.push(crr.issuer.as_bytes().to_vec());
    fields.push(crr.cert_id.0.to_le_bytes().to_vec());
    fields.push(name.as_bytes().to_vec());
    for arg in args {
        fields.push(arg.canonical_bytes());
    }
    fields.push(issued_at.to_le_bytes().to_vec());
    fields.push(match expires_at {
        Some(t) => {
            let mut b = vec![1u8];
            b.extend_from_slice(&t.to_le_bytes());
            b
        }
        None => vec![0u8],
    });
    fields.push(match holder_key {
        Some(k) => k.as_bytes().to_vec(),
        None => vec![],
    });
    fields
}

fn sign_cert(secret: &SecretKey, principal: &PrincipalId, fields: &[Vec<u8>]) -> MacSignature {
    let refs: Vec<&[u8]> = fields.iter().map(Vec::as_slice).collect();
    oasis_crypto::sign_fields(secret, principal.as_bytes(), &refs)
}

fn verify_cert(
    secret: &SecretKey,
    principal: &PrincipalId,
    fields: &[Vec<u8>],
    signature: &MacSignature,
) -> bool {
    let refs: Vec<&[u8]> = fields.iter().map(Vec::as_slice).collect();
    oasis_crypto::verify_fields(secret, principal.as_bytes(), &refs, signature)
}

/// A role membership certificate (RMC).
///
/// The RMC's readable fields are protected by the signature; the holding
/// principal's id is a *hidden* signature input (Fig 4), so presenting a
/// stolen RMC under a different principal id fails verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rmc {
    /// Where the issuer-side credential record lives.
    pub crr: Crr,
    /// The activated role.
    pub role: RoleName,
    /// The role's parameter values.
    pub args: Vec<Value>,
    /// Virtual time of issue.
    pub issued_at: u64,
    /// Session public key bound into the certificate, if the principal
    /// supplied one (enables challenge–response at any time, Sect. 4.1).
    pub holder_key: Option<PublicKey>,
    /// Which issuer secret epoch signed this certificate.
    pub epoch: SecretEpoch,
    /// `F(principal_id, fields, SECRET)`.
    pub signature: MacSignature,
}

impl Rmc {
    /// Issues (signs) an RMC for `principal`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        secret: &SecretKey,
        epoch: SecretEpoch,
        principal: &PrincipalId,
        crr: Crr,
        role: RoleName,
        args: Vec<Value>,
        issued_at: u64,
        holder_key: Option<PublicKey>,
    ) -> Self {
        let fields = mac_fields(
            CredentialKind::Rmc,
            &crr,
            role.as_str(),
            &args,
            issued_at,
            None,
            holder_key.as_ref(),
        );
        let signature = sign_cert(secret, principal, &fields);
        Self {
            crr,
            role,
            args,
            issued_at,
            holder_key,
            epoch,
            signature,
        }
    }

    /// Verifies the signature for the presenting `principal` under the
    /// issuer `secret` of this certificate's epoch.
    pub fn verify(&self, secret: &SecretKey, principal: &PrincipalId) -> bool {
        let fields = mac_fields(
            CredentialKind::Rmc,
            &self.crr,
            self.role.as_str(),
            &self.args,
            self.issued_at,
            None,
            self.holder_key.as_ref(),
        );
        verify_cert(secret, principal, &fields, &self.signature)
    }
}

impl fmt::Display for Rmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RMC[{} {}(", self.crr, self.role)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")]")
    }
}

/// An appointment certificate.
///
/// "Being active in certain roles gives the principal the right to issue
/// appointment certificates to one or more other principals" (Sect. 2).
/// Unlike an RMC its lifetime is independent of any session, so it carries
/// an optional expiry and is bound to a *persistent* principal id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppointmentCertificate {
    /// Where the issuer-side credential record lives.
    pub crr: Crr,
    /// The appointment kind, e.g. `employed_as_doctor`.
    pub name: String,
    /// Appointment parameters, e.g. the hospital id.
    pub args: Vec<Value>,
    /// Virtual time of issue.
    pub issued_at: u64,
    /// Optional expiry (virtual time, inclusive).
    pub expires_at: Option<u64>,
    /// Long-lived public key of the holder, if bound (Sect. 4.1 recommends
    /// this for theft protection of long-lived credentials).
    pub holder_key: Option<PublicKey>,
    /// Which issuer secret epoch signed this certificate.
    pub epoch: SecretEpoch,
    /// `F(principal_id, fields, SECRET)`.
    pub signature: MacSignature,
}

impl AppointmentCertificate {
    /// Issues (signs) an appointment certificate for `principal`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        secret: &SecretKey,
        epoch: SecretEpoch,
        principal: &PrincipalId,
        crr: Crr,
        name: String,
        args: Vec<Value>,
        issued_at: u64,
        expires_at: Option<u64>,
        holder_key: Option<PublicKey>,
    ) -> Self {
        let fields = mac_fields(
            CredentialKind::Appointment,
            &crr,
            &name,
            &args,
            issued_at,
            expires_at,
            holder_key.as_ref(),
        );
        let signature = sign_cert(secret, principal, &fields);
        Self {
            crr,
            name,
            args,
            issued_at,
            expires_at,
            holder_key,
            epoch,
            signature,
        }
    }

    /// Verifies the signature for the presenting `principal`.
    pub fn verify(&self, secret: &SecretKey, principal: &PrincipalId) -> bool {
        let fields = mac_fields(
            CredentialKind::Appointment,
            &self.crr,
            &self.name,
            &self.args,
            self.issued_at,
            self.expires_at,
            self.holder_key.as_ref(),
        );
        verify_cert(secret, principal, &fields, &self.signature)
    }

    /// Whether the certificate has passed its expiry at virtual time `now`.
    pub fn is_expired(&self, now: u64) -> bool {
        self.expires_at.is_some_and(|deadline| now > deadline)
    }
}

impl fmt::Display for AppointmentCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "APPT[{} {}(", self.crr, self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")]")
    }
}

/// Either certificate kind, as presented in a credential list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Credential {
    /// A role membership certificate.
    Rmc(Rmc),
    /// An appointment certificate.
    Appointment(AppointmentCertificate),
}

impl Credential {
    /// The credential record reference.
    pub fn crr(&self) -> &Crr {
        match self {
            Credential::Rmc(c) => &c.crr,
            Credential::Appointment(c) => &c.crr,
        }
    }

    /// The issuing service.
    pub fn issuer(&self) -> &ServiceId {
        &self.crr().issuer
    }

    /// The role or appointment name.
    pub fn name(&self) -> &str {
        match self {
            Credential::Rmc(c) => c.role.as_str(),
            Credential::Appointment(c) => &c.name,
        }
    }

    /// The parameter values.
    pub fn args(&self) -> &[Value] {
        match self {
            Credential::Rmc(c) => &c.args,
            Credential::Appointment(c) => &c.args,
        }
    }

    /// Which kind this is.
    pub fn kind(&self) -> CredentialKind {
        match self {
            Credential::Rmc(_) => CredentialKind::Rmc,
            Credential::Appointment(_) => CredentialKind::Appointment,
        }
    }

    /// The secret epoch the certificate was signed under.
    pub fn epoch(&self) -> SecretEpoch {
        match self {
            Credential::Rmc(c) => c.epoch,
            Credential::Appointment(c) => c.epoch,
        }
    }

    /// Verifies the signature for the presenting `principal`.
    pub fn verify(&self, secret: &SecretKey, principal: &PrincipalId) -> bool {
        match self {
            Credential::Rmc(c) => c.verify(secret, principal),
            Credential::Appointment(c) => c.verify(secret, principal),
        }
    }

    /// The bound holder key, if any.
    pub fn holder_key(&self) -> Option<&PublicKey> {
        match self {
            Credential::Rmc(c) => c.holder_key.as_ref(),
            Credential::Appointment(c) => c.holder_key.as_ref(),
        }
    }
}

impl From<Rmc> for Credential {
    fn from(c: Rmc) -> Self {
        Credential::Rmc(c)
    }
}

impl From<AppointmentCertificate> for Credential {
    fn from(c: AppointmentCertificate) -> Self {
        Credential::Appointment(c)
    }
}

impl fmt::Display for Credential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Credential::Rmc(c) => c.fmt(f),
            Credential::Appointment(c) => c.fmt(f),
        }
    }
}

/// The lifecycle state of an issued certificate, held in its issuer-side
/// credential record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredStatus {
    /// Valid and usable.
    Active,
    /// Revoked by the issuer (role deactivated, appointment withdrawn,
    /// or a supporting credential collapsed).
    Revoked {
        /// Human-readable reason, recorded for audit.
        reason: String,
        /// Virtual time of revocation.
        at: u64,
    },
    /// Lapsed by reaching its expiry time.
    Expired {
        /// Virtual time at which expiry was noticed.
        at: u64,
    },
}

impl CredStatus {
    /// Whether the certificate may currently be used.
    pub fn is_active(&self) -> bool {
        matches!(self, CredStatus::Active)
    }
}

impl fmt::Display for CredStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredStatus::Active => f.write_str("active"),
            CredStatus::Revoked { reason, at } => write!(f, "revoked at t{at}: {reason}"),
            CredStatus::Expired { at } => write!(f, "expired at t{at}"),
        }
    }
}

/// The issuer-side record of an issued certificate ("CR" in Figs 1, 2
/// and 5): who holds it, what it says, and whether it is still valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CredRecord {
    /// The reference that certificates carry to locate this record.
    pub crr: Crr,
    /// The principal the certificate was issued to.
    pub principal: PrincipalId,
    /// RMC or appointment.
    pub kind: CredentialKind,
    /// Role name (for RMCs) or appointment name.
    pub name: String,
    /// The certificate's parameter values.
    pub args: Vec<Value>,
    /// Virtual time of issue.
    pub issued_at: u64,
    /// Optional expiry.
    pub expires_at: Option<u64>,
    /// Current validity.
    pub status: CredStatus,
}

/// A certificate lifecycle event published on the event bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertEvent {
    /// The certificate concerned.
    pub crr: Crr,
    /// What happened.
    pub kind: CertEventKind,
}

/// What happened to a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertEventKind {
    /// The issuer invalidated the certificate.
    Revoked {
        /// Why.
        reason: String,
    },
}

/// The bus topic on which `issuer` publishes revocation events.
pub fn revocation_topic(issuer: &ServiceId) -> oasis_events::Topic {
    oasis_events::Topic::new(format!("cred.revoked.{issuer}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_crypto::IssuerSecret;

    fn setup() -> (SecretKey, PrincipalId, Crr) {
        let secret = IssuerSecret::from_key(SecretKey::from_bytes([9; 32]));
        (
            secret.current(),
            PrincipalId::new("alice"),
            Crr::new(ServiceId::new("svc"), CertId(1)),
        )
    }

    fn sample_rmc(key: &SecretKey, principal: &PrincipalId, crr: Crr) -> Rmc {
        Rmc::issue(
            key,
            SecretEpoch(0),
            principal,
            crr,
            RoleName::new("doctor"),
            vec![Value::id("dr-1"), Value::id("pat-2")],
            100,
            None,
        )
    }

    #[test]
    fn rmc_round_trip_verifies() {
        let (key, alice, crr) = setup();
        let rmc = sample_rmc(&key, &alice, crr);
        assert!(rmc.verify(&key, &alice));
    }

    #[test]
    fn rmc_is_principal_specific() {
        let (key, alice, crr) = setup();
        let rmc = sample_rmc(&key, &alice, crr);
        assert!(!rmc.verify(&key, &PrincipalId::new("mallory")));
    }

    #[test]
    fn rmc_tamper_with_args_detected() {
        let (key, alice, crr) = setup();
        let mut rmc = sample_rmc(&key, &alice, crr);
        rmc.args[1] = Value::id("pat-999");
        assert!(!rmc.verify(&key, &alice));
    }

    #[test]
    fn rmc_tamper_with_role_detected() {
        let (key, alice, crr) = setup();
        let mut rmc = sample_rmc(&key, &alice, crr);
        rmc.role = RoleName::new("chief_surgeon");
        assert!(!rmc.verify(&key, &alice));
    }

    #[test]
    fn rmc_wrong_secret_detected() {
        let (key, alice, crr) = setup();
        let rmc = sample_rmc(&key, &alice, crr);
        let other = SecretKey::from_bytes([1; 32]);
        assert!(!rmc.verify(&other, &alice));
    }

    #[test]
    fn appointment_round_trip_and_expiry() {
        let (key, alice, crr) = setup();
        let appt = AppointmentCertificate::issue(
            &key,
            SecretEpoch(0),
            &alice,
            crr,
            "employed_as_doctor".into(),
            vec![Value::id("hospital-1")],
            10,
            Some(100),
            None,
        );
        assert!(appt.verify(&key, &alice));
        assert!(!appt.is_expired(100));
        assert!(appt.is_expired(101));
    }

    #[test]
    fn appointment_tamper_with_expiry_detected() {
        let (key, alice, crr) = setup();
        let mut appt = AppointmentCertificate::issue(
            &key,
            SecretEpoch(0),
            &alice,
            crr,
            "member".into(),
            vec![],
            10,
            Some(100),
            None,
        );
        appt.expires_at = Some(10_000);
        assert!(!appt.verify(&key, &alice));
    }

    #[test]
    fn rmc_and_appointment_with_same_fields_do_not_collide() {
        let (key, alice, crr) = setup();
        let rmc = Rmc::issue(
            &key,
            SecretEpoch(0),
            &alice,
            crr.clone(),
            RoleName::new("x"),
            vec![],
            0,
            None,
        );
        let appt = AppointmentCertificate::issue(
            &key,
            SecretEpoch(0),
            &alice,
            crr,
            "x".into(),
            vec![],
            0,
            None,
            None,
        );
        assert_ne!(rmc.signature, appt.signature, "kind tag separates domains");
    }

    #[test]
    fn holder_key_is_protected() {
        let (key, alice, crr) = setup();
        let pair = oasis_crypto::KeyPair::from_seed([3; 32]);
        let mut rmc = Rmc::issue(
            &key,
            SecretEpoch(0),
            &alice,
            crr,
            RoleName::new("r"),
            vec![],
            0,
            Some(pair.public_key()),
        );
        assert!(rmc.verify(&key, &alice));
        // Swap in the attacker's key: signature must break.
        let attacker = oasis_crypto::KeyPair::from_seed([4; 32]);
        rmc.holder_key = Some(attacker.public_key());
        assert!(!rmc.verify(&key, &alice));
    }

    #[test]
    fn credential_enum_accessors() {
        let (key, alice, crr) = setup();
        let rmc = sample_rmc(&key, &alice, crr.clone());
        let cred: Credential = rmc.clone().into();
        assert_eq!(cred.crr(), &crr);
        assert_eq!(cred.name(), "doctor");
        assert_eq!(cred.kind(), CredentialKind::Rmc);
        assert_eq!(cred.args().len(), 2);
        assert!(cred.verify(&key, &alice));
        assert_eq!(cred.to_string(), rmc.to_string());
    }

    #[test]
    fn status_transitions_display() {
        assert!(CredStatus::Active.is_active());
        let revoked = CredStatus::Revoked {
            reason: "shift ended".into(),
            at: 5,
        };
        assert!(!revoked.is_active());
        assert_eq!(revoked.to_string(), "revoked at t5: shift ended");
    }

    #[test]
    fn revocation_topic_format() {
        assert_eq!(
            revocation_topic(&ServiceId::new("hospital")).as_str(),
            "cred.revoked.hospital"
        );
    }
}
