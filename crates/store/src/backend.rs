//! Byte-level storage backends for the journal and snapshot stores.
//!
//! A backend is a single growable byte region with three operations:
//! read it all, append to the end, and atomically replace the whole
//! region (used by log truncation and snapshot writes). The journal
//! layer above owns framing and checksums; backends never interpret
//! the bytes.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StoreError;

/// A single append-only byte region.
///
/// Implementations must be safe to share across threads; the journal
/// serialises writers itself, so backends only need interior
/// mutability, not their own ordering guarantees.
pub trait StorageBackend: Send + Sync {
    /// Reads the entire region.
    fn read(&self) -> Result<Vec<u8>, StoreError>;

    /// Appends `bytes` to the end of the region.
    fn append(&self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Atomically replaces the entire region with `bytes`.
    fn replace(&self, bytes: &[u8]) -> Result<(), StoreError>;
}

/// An in-memory backend whose contents survive as long as any clone of
/// the handle does.
///
/// Clones share one buffer, which is exactly the crash model the
/// simulator needs: drop the service (losing all volatile state) while
/// a test keeps a cloned handle, then hand the same handle to the
/// restarted instance — the journal "survives the crash".
#[derive(Clone, Default)]
pub struct MemBackend {
    buf: Arc<Mutex<Vec<u8>>>,
    fault: Arc<Mutex<Option<String>>>,
}

impl MemBackend {
    /// Creates an empty in-memory region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chops `n` bytes off the end — simulates a torn final write.
    pub fn truncate_tail(&self, n: usize) {
        let mut buf = self.buf.lock();
        let keep = buf.len().saturating_sub(n);
        buf.truncate(keep);
    }

    /// Flips every bit of the byte `offset_from_end` bytes before the
    /// end — simulates tail corruption from a partial sector write.
    pub fn corrupt_tail(&self, offset_from_end: usize) {
        let mut buf = self.buf.lock();
        let len = buf.len();
        if offset_from_end < len {
            buf[len - 1 - offset_from_end] ^= 0xFF;
        }
    }

    /// Appends raw garbage — simulates a write that never completed
    /// framing.
    pub fn append_garbage(&self, bytes: &[u8]) {
        self.buf.lock().extend_from_slice(bytes);
    }

    /// Makes every subsequent write fail with `reason` — simulates a
    /// full or failing disk. Reads keep working, as they do on a real
    /// disk that has stopped accepting writes.
    pub fn poison(&self, reason: &str) {
        *self.fault.lock() = Some(reason.to_string());
    }

    /// Clears a previous [`MemBackend::poison`]: writes succeed again.
    pub fn heal(&self) {
        *self.fault.lock() = None;
    }

    fn check_fault(&self) -> Result<(), StoreError> {
        match &*self.fault.lock() {
            Some(reason) => Err(StoreError::Io(reason.clone())),
            None => Ok(()),
        }
    }
}

impl StorageBackend for MemBackend {
    fn read(&self) -> Result<Vec<u8>, StoreError> {
        Ok(self.buf.lock().clone())
    }

    fn append(&self, bytes: &[u8]) -> Result<(), StoreError> {
        self.check_fault()?;
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn replace(&self, bytes: &[u8]) -> Result<(), StoreError> {
        self.check_fault()?;
        *self.buf.lock() = bytes.to_vec();
        Ok(())
    }
}

/// A file-backed region. Appends go straight to the file; `replace`
/// writes a sibling temp file and renames it into place so a crash
/// mid-truncation leaves either the old or the new region, never a
/// mix.
#[derive(Clone)]
pub struct FileBackend {
    path: PathBuf,
    // Serialises append/replace against each other within one process.
    lock: Arc<Mutex<()>>,
}

impl FileBackend {
    /// Opens (creating if absent) the region at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            lock: Arc::new(Mutex::new(())),
        })
    }

    /// The file this backend writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StorageBackend for FileBackend {
    fn read(&self) -> Result<Vec<u8>, StoreError> {
        let _guard = self.lock.lock();
        let mut buf = Vec::new();
        File::open(&self.path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let _guard = self.lock.lock();
        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        Ok(())
    }

    fn replace(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let _guard = self.lock.lock();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}
