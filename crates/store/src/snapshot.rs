//! Snapshot storage: one checksummed blob holding the full state as
//! of a journal sequence number.
//!
//! A snapshot frame mirrors the journal's record frame —
//! `[len: u32][covered_seq: u64][checksum: u64][payload]` — where
//! `covered_seq` is the last journal sequence number the snapshot
//! subsumes. Writing a new snapshot atomically replaces the previous
//! one; there is never more than one. A snapshot that fails its
//! checksum is *ignored*, not trusted: recovery reports it and falls
//! back to replaying the full journal.

use std::marker::PhantomData;
use std::sync::Arc;

use oasis_crypto::hash::Sha256;
use oasis_json::{FromJson, Json, ToJson};

use crate::backend::StorageBackend;
use crate::error::StoreError;

const HEADER: usize = 4 + 8 + 8;
const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

/// Result of reading the snapshot region.
pub struct SnapshotLoad<S> {
    /// The decoded snapshot and the journal sequence it covers, if a
    /// valid one was present.
    pub snapshot: Option<(u64, S)>,
    /// True when bytes were present but failed validation — the
    /// caller should replay the whole journal instead.
    pub corrupt: bool,
}

/// Typed snapshot store over a [`StorageBackend`].
pub struct SnapshotStore<S> {
    backend: Arc<dyn StorageBackend>,
    _marker: PhantomData<fn() -> S>,
}

impl<S> Clone for SnapshotStore<S> {
    fn clone(&self) -> Self {
        Self {
            backend: Arc::clone(&self.backend),
            _marker: PhantomData,
        }
    }
}

fn checksum(covered_seq: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&covered_seq.to_le_bytes());
    buf.extend_from_slice(payload);
    let digest = Sha256::digest(&buf);
    u64::from_le_bytes(digest[..8].try_into().expect("8-byte prefix"))
}

impl<S: ToJson + FromJson> SnapshotStore<S> {
    /// Wraps `backend` as the snapshot region.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Self {
        Self {
            backend,
            _marker: PhantomData,
        }
    }

    /// Replaces the stored snapshot with `state`, recorded as covering
    /// journal records up to and including `covered_seq`.
    pub fn write(&self, covered_seq: u64, state: &S) -> Result<(), StoreError> {
        let payload = oasis_json::to_string(state).into_bytes();
        let mut out = Vec::with_capacity(HEADER + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&covered_seq.to_le_bytes());
        out.extend_from_slice(&checksum(covered_seq, &payload).to_le_bytes());
        out.extend_from_slice(&payload);
        self.backend.replace(&out)
    }

    /// Reads the stored snapshot, treating any validation failure as
    /// "no snapshot" (with `corrupt` set) rather than an error.
    pub fn load(&self) -> Result<SnapshotLoad<S>, StoreError> {
        let bytes = self.backend.read()?;
        if bytes.is_empty() {
            return Ok(SnapshotLoad {
                snapshot: None,
                corrupt: false,
            });
        }
        let corrupt = SnapshotLoad {
            snapshot: None,
            corrupt: true,
        };
        // Every header field and the payload slice is read through a
        // bounds-checked path: a blob shorter than its declared frame
        // is corrupt, never a panic.
        let Some(len) = crate::journal::read_u32_le(&bytes, 0).map(|l| l as usize) else {
            return Ok(corrupt);
        };
        if len > MAX_PAYLOAD {
            return Ok(corrupt);
        }
        let (Some(covered_seq), Some(sum)) = (
            crate::journal::read_u64_le(&bytes, 4),
            crate::journal::read_u64_le(&bytes, 12),
        ) else {
            return Ok(corrupt);
        };
        let Some(payload) = HEADER
            .checked_add(len)
            .and_then(|end| bytes.get(HEADER..end))
        else {
            return Ok(corrupt);
        };
        if checksum(covered_seq, payload) != sum {
            return Ok(corrupt);
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => return Ok(corrupt),
        };
        let state = match Json::parse(text).and_then(|j| S::from_json(&j)) {
            Ok(s) => s,
            Err(_) => return Ok(corrupt),
        };
        Ok(SnapshotLoad {
            snapshot: Some((covered_seq, state)),
            corrupt: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use oasis_json::JsonError;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(String);

    impl ToJson for Blob {
        fn to_json(&self) -> Json {
            Json::str(self.0.clone())
        }
    }

    impl FromJson for Blob {
        fn from_json(json: &Json) -> Result<Self, JsonError> {
            Ok(Blob(
                json.as_str()
                    .ok_or_else(|| JsonError::expected("string"))?
                    .to_string(),
            ))
        }
    }

    #[test]
    fn truncation_at_every_byte_is_corrupt_never_panics() {
        let reference = {
            let backend = MemBackend::new();
            let store: SnapshotStore<Blob> = SnapshotStore::new(Arc::new(backend.clone()));
            store.write(17, &Blob("snapshot-state".into())).unwrap();
            backend.read().unwrap()
        };
        for cut in 0..=reference.len() {
            let backend = MemBackend::new();
            backend.append_garbage(&reference[..cut]);
            let store: SnapshotStore<Blob> = SnapshotStore::new(Arc::new(backend));
            let load = store.load().unwrap();
            if cut == reference.len() {
                assert_eq!(load.snapshot, Some((17, Blob("snapshot-state".into()))));
                assert!(!load.corrupt);
            } else if cut == 0 {
                assert!(load.snapshot.is_none());
                assert!(!load.corrupt);
            } else {
                assert!(load.snapshot.is_none(), "cut {cut}");
                assert!(load.corrupt, "cut {cut}");
            }
        }
    }
}
