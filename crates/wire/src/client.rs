//! The client side: a call/return connection to a [`WireServer`](crate::WireServer).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use oasis_core::cert::Rmc;
use oasis_core::durable::CatchUpReport;
use oasis_core::retry::{Backoff, RetryPolicy};
use oasis_core::{CertEvent, Credential, Crr, OasisService, PrincipalId, Value};
use oasis_events::DeliveredEvent;

use crate::error::WireError;
use crate::frame::{read_frame, write_frame};
use crate::proto::{Envelope, Request, Response};

/// Deadlines for the blocking client's socket operations. `None` means
/// block indefinitely for that operation.
///
/// Expired deadlines surface as [`WireError::TimedOut`] naming the
/// operation, so callers (notably
/// [`RemoteValidator`](crate::RemoteValidator)) can classify the failure
/// as transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTimeouts {
    /// Deadline for establishing the TCP connection.
    pub connect: Option<Duration>,
    /// Deadline for each read from the stream.
    pub read: Option<Duration>,
    /// Deadline for each write to the stream.
    pub write: Option<Duration>,
}

impl Default for WireTimeouts {
    /// Five seconds for each operation — generous for a LAN callback,
    /// bounded enough that a partitioned issuer cannot hang a validation
    /// forever.
    fn default() -> Self {
        Self {
            connect: Some(Duration::from_secs(5)),
            read: Some(Duration::from_secs(5)),
            write: Some(Duration::from_secs(5)),
        }
    }
}

impl WireTimeouts {
    /// No deadlines at all: every operation blocks indefinitely (the
    /// pre-timeout behaviour).
    pub fn none() -> Self {
        Self {
            connect: None,
            read: None,
            write: None,
        }
    }

    /// The same deadline for connect, read, and write.
    pub fn all(deadline: Duration) -> Self {
        Self {
            connect: Some(deadline),
            read: Some(deadline),
            write: Some(deadline),
        }
    }
}

/// A blocking OASIS client over TCP.
///
/// The engine (`oasis-core`) is synchronous — validation callbacks run
/// inside `activate_role`/`invoke` — so the client is synchronous too and
/// is usable directly from those callbacks.
pub struct WireClient {
    stream: TcpStream,
    /// Default deadline budget attached to every call (see
    /// [`WireClient::set_deadline_ms`]).
    deadline_ms: Option<u64>,
    /// The timeouts this connection was dialled with, kept so
    /// [`WireClient::reconnect`] re-dials identically.
    timeouts: WireTimeouts,
    /// Causal trace context attached to every call (see
    /// [`WireClient::set_trace`]).
    trace: Option<oasis_obs::TraceCtx>,
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

impl WireClient {
    /// Connects to a serving address with the default deadlines
    /// ([`WireTimeouts::default`]: 5 s per operation).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the connection fails, or
    /// [`WireError::TimedOut`] if it does not complete in time.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(addr, WireTimeouts::default())
    }

    /// Connects with explicit deadlines. With `timeouts.connect` set,
    /// each resolved address is tried in turn under that deadline.
    ///
    /// # Errors
    ///
    /// [`WireError::TimedOut`] when a deadline expires, [`WireError::Io`]
    /// for other socket failures.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeouts: WireTimeouts,
    ) -> Result<Self, WireError> {
        let stream = match timeouts.connect {
            None => TcpStream::connect(addr)?,
            Some(deadline) => {
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for candidate in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&candidate, deadline) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match connected {
                    Some(s) => s,
                    None => {
                        let err = last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::AddrNotAvailable,
                                "address resolved to nothing",
                            )
                        });
                        return Err(WireError::Io(err).normalise_timeout("connect"));
                    }
                }
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        Ok(Self {
            stream,
            deadline_ms: None,
            timeouts,
            trace: None,
        })
    }

    /// Drops the current connection and re-dials the same peer with the
    /// original timeouts, keeping the configured deadline budget. Used
    /// after a transport failure whose cause may be transient (peer
    /// restarting, leader re-elected).
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect_with`].
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        let peer = self.stream.peer_addr()?;
        let fresh = Self::connect_with(peer, self.timeouts)?;
        self.stream = fresh.stream;
        Ok(())
    }

    /// Sets the default deadline budget (in ms) propagated with every
    /// subsequent call; `None` removes it. The server computes the
    /// absolute deadline when it reads the frame, counts queueing time
    /// against it, and answers [`WireError::DeadlineExceeded`] instead of
    /// executing a request whose budget ran out.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Builder form of [`WireClient::set_deadline_ms`].
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// The currently configured default deadline budget.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Sets the causal trace context propagated with every subsequent
    /// call (`None` removes it). The server re-establishes it as the
    /// ambient context around the request, so server-side spans parent
    /// onto the caller's span and share its trace id.
    pub fn set_trace(&mut self, trace: Option<oasis_obs::TraceCtx>) {
        self.trace = trace;
    }

    /// Builder form of [`WireClient::set_trace`].
    #[must_use]
    pub fn with_trace(mut self, trace: oasis_obs::TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }

    /// One request/response exchange, carrying the client's default
    /// deadline budget (if any).
    ///
    /// # Errors
    ///
    /// Transport errors ([`WireError::TimedOut`] when a read or write
    /// deadline expires), [`WireError::Overloaded`] when the server shed
    /// the request, [`WireError::DeadlineExceeded`] when its budget ran
    /// out server-side, or [`WireError::Remote`] for an application error
    /// reported by the server.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        self.call_with_deadline(request, self.deadline_ms)
    }

    /// As [`WireClient::call`], with an explicit per-call deadline budget
    /// overriding the client default.
    ///
    /// # Errors
    ///
    /// As [`WireClient::call`].
    pub fn call_with_deadline(
        &mut self,
        request: &Request,
        deadline_ms: Option<u64>,
    ) -> Result<Response, WireError> {
        match (deadline_ms, self.trace) {
            // Bare request: byte-identical to the pre-deadline format.
            (None, None) => write_frame(&mut self.stream, request),
            (deadline_ms, trace) => write_frame(
                &mut self.stream,
                &Envelope {
                    deadline_ms,
                    request: request.clone(),
                    trace,
                },
            ),
        }
        .map_err(|e| e.normalise_timeout("write"))?;
        match read_frame::<_, Response>(&mut self.stream)
            .map_err(|e| e.normalise_timeout("read"))?
        {
            Some(Response::Error { message }) => Err(WireError::Remote(message)),
            Some(Response::Overloaded { retry_after_ms }) => {
                Err(WireError::Overloaded { retry_after_ms })
            }
            Some(Response::DeadlineExceeded) => Err(WireError::DeadlineExceeded),
            Some(Response::NotLeader { hint }) => Err(WireError::NotLeader { hint }),
            Some(response) => Ok(response),
            None => Err(WireError::Closed),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::UnexpectedResponse`].
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the server's metrics-registry snapshot (canonical
    /// sorted-key JSON). Served from the control lane with admission
    /// bypassed, so it answers even while the server sheds normal load.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::UnexpectedResponse`].
    pub fn metrics(&mut self) -> Result<String, WireError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Activates a role at the remote service, returning the RMC.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] carrying the service's denial, or transport
    /// errors.
    pub fn activate(
        &mut self,
        principal: &PrincipalId,
        role: &str,
        args: Vec<Value>,
        credentials: Vec<Credential>,
        now: u64,
    ) -> Result<Rmc, WireError> {
        let request = Request::Activate {
            principal: principal.clone(),
            role: role.to_string(),
            args,
            credentials,
            now,
        };
        match self.call(&request)? {
            Response::Activated { rmc } => Ok(*rmc),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Invokes a method at the remote service; returns the credentials
    /// that authorised it.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] carrying the denial, or transport errors.
    pub fn invoke(
        &mut self,
        principal: &PrincipalId,
        method: &str,
        args: Vec<Value>,
        credentials: Vec<Credential>,
        now: u64,
    ) -> Result<Vec<Crr>, WireError> {
        let request = Request::Invoke {
            principal: principal.clone(),
            method: method.to_string(),
            args,
            credentials,
            now,
        };
        match self.call(&request)? {
            Response::Invoked { used } => Ok(used),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Validation callback: asks the issuer whether `credential` is good
    /// for `presenter`.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with the rejection reason, or transport
    /// errors.
    pub fn validate(
        &mut self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), WireError> {
        let request = Request::Validate {
            credential: Box::new(credential.clone()),
            presenter: presenter.clone(),
            now,
        };
        match self.call(&request)? {
            Response::Valid => Ok(()),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Asks the issuer to revoke a certificate; returns whether it had
    /// been active.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::UnexpectedResponse`].
    pub fn revoke(&mut self, cert_id: u64, reason: &str, now: u64) -> Result<bool, WireError> {
        let request = Request::Revoke {
            cert_id,
            reason: reason.to_string(),
            now,
        };
        match self.call(&request)? {
            Response::Revoked { was_active } => Ok(was_active),
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Asks the remote publisher to replay its retained events on
    /// `topic` strictly after `after_topic_seq`. Returns the events
    /// (oldest first) and whether the replay was gap-free.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::UnexpectedResponse`].
    pub fn resync(
        &mut self,
        topic: &str,
        after_topic_seq: u64,
    ) -> Result<(Vec<DeliveredEvent<CertEvent>>, bool), WireError> {
        let request = Request::Resync {
            topic: topic.to_string(),
            after_topic_seq,
        };
        match self.call(&request)? {
            Response::Resynced { events, complete } => {
                Ok((events.into_iter().map(Into::into).collect(), complete))
            }
            other => Err(WireError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// One full catch-up cycle for a recovered service against a remote
    /// issuer: read `service`'s persisted watermark for `topic`, fetch
    /// the missed revocations from the issuer's retained ring, and
    /// apply them ([`OasisService::catch_up_with`]). Gap-free replays
    /// clear [`OasisService::catchup_pending`]; incomplete ones drop
    /// every cached validation for the issuer instead.
    ///
    /// Transient transport failures (expired deadlines, a dropped
    /// connection, a replica mid-election answering `NotLeader`) are
    /// retried under the default [`RetryPolicy`], re-dialling the peer
    /// between attempts — catch-up runs right after a restart, exactly
    /// when the rest of the federation may also be coming back up, so a
    /// single timeout must not strand the service with a suspect cache.
    ///
    /// # Errors
    ///
    /// The final transport error once retries are exhausted, or
    /// [`WireError::UnexpectedResponse`].
    pub fn catch_up(
        &mut self,
        service: &OasisService,
        topic: &str,
        now: u64,
    ) -> Result<CatchUpReport, WireError> {
        self.catch_up_with_retry(service, topic, now, RetryPolicy::default())
    }

    /// As [`WireClient::catch_up`], with an explicit retry schedule
    /// (`RetryPolicy::none()` restores the old give-up-on-first-timeout
    /// behaviour).
    ///
    /// # Errors
    ///
    /// As [`WireClient::catch_up`].
    pub fn catch_up_with_retry(
        &mut self,
        service: &OasisService,
        topic: &str,
        now: u64,
        retry: RetryPolicy,
    ) -> Result<CatchUpReport, WireError> {
        let after = service.watermark_for(topic);
        let mut backoff = Backoff::new(retry);
        let (events, complete) = loop {
            match self.resync(topic, after) {
                Ok(replay) => break replay,
                // An authoritative answer (remote error, wrong variant)
                // will not change on retry.
                Err(e @ (WireError::Remote(_) | WireError::UnexpectedResponse(_))) => {
                    return Err(e)
                }
                Err(transport) => match backoff.next_delay() {
                    Some(delay) => {
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        // Best-effort: a failed re-dial leaves the old
                        // stream in place for the next attempt.
                        let _ = self.reconnect();
                    }
                    None => return Err(transport),
                },
            }
        };
        Ok(service.catch_up_with(topic, &events, complete, now))
    }
}
