//! Newtype identifiers used throughout the OASIS model.

use std::fmt;
use std::sync::Arc;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        // Backed by `Arc<str>` so that the clones the hot path makes
        // (issuing certificates, audit records, cascade reasons) are
        // refcount bumps rather than heap copies.
        #[derive(
            Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord,
        )]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates an identifier from any string-like value.
            pub fn new(s: impl Into<String>) -> Self {
                Self(s.into().into())
            }

            /// The identifier text.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// The identifier as bytes (for MAC input).
            pub fn as_bytes(&self) -> &[u8] {
                self.0.as_bytes()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self(s.into())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s.into())
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_id!(
    /// Identifies a principal (a user or computational entity).
    ///
    /// The paper discusses the choice of principal id at length
    /// (Sect. 4.1): it may be a persistent identity, or — preferably — a
    /// session-specific identifier, possibly a public key. Here it is an
    /// opaque string; `oasis-crypto` binds it into certificate MACs.
    PrincipalId, "principal"
);

string_id!(
    /// Identifies an OASIS service. Services define their own roles, so a
    /// role is only meaningful together with the service that named it.
    ServiceId, "service"
);

string_id!(
    /// Identifies an administrative domain (a hospital, a primary care
    /// group, the national EHR service…).
    DomainId, "domain"
);

string_id!(
    /// A role name, unique within the defining service.
    RoleName, "role"
);

/// Issuer-local identifier of a certificate; unique per issuing service.
/// Together with the issuer's [`ServiceId`] it forms a
/// [`Crr`](crate::cert::Crr) — the credential record reference of Fig 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CertId(pub u64);

impl fmt::Display for CertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cert-{}", self.0)
    }
}

/// Identifies a session at the service that issued its initial role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_ids_round_trip() {
        let p = PrincipalId::new("alice");
        assert_eq!(p.as_str(), "alice");
        assert_eq!(p.to_string(), "alice");
        assert_eq!(PrincipalId::from("alice"), p);
        assert_eq!(PrincipalId::from("alice".to_string()), p);
        assert_eq!(p.as_bytes(), b"alice");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just confirm values
        // compare within a type.
        assert_ne!(RoleName::new("a"), RoleName::new("b"));
        assert_eq!(ServiceId::new("x"), ServiceId::new("x"));
    }

    #[test]
    fn numeric_ids_display() {
        assert_eq!(CertId(7).to_string(), "cert-7");
        assert_eq!(SessionId(3).to_string(), "session-3");
    }

    #[test]
    fn ids_order() {
        assert!(CertId(1) < CertId(2));
        assert!(PrincipalId::new("a") < PrincipalId::new("b"));
    }
}
