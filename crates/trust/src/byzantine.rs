//! A CIV notary that can turn Byzantine mid-run — the fault adapter the
//! conformance simulation drives.
//!
//! Sect. 6 of the paper names the attacks a trust scheme must weather:
//! rogue domains issuing "valueless audit certificates", repudiating
//! honest history, and colluding parties fabricating trustworthiness.
//! The [`population`](crate::population) simulation models those
//! behaviours statistically; the conformance harness needs them as a
//! *scriptable fault* instead — an `oasis-sim` `FaultPlan` fires
//! `Fault::ByzantineCiv { node }` at a fixed virtual tick and the
//! scenario driver flips the matching [`ByzantineCiv`] adapter, after
//! which every notarisation it performs is adversarial. Everything the
//! adapter does is deterministic, so replaying the scenario's seed
//! reproduces the same forged certificates byte for byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use oasis_core::{PrincipalId, ServiceId};

use crate::cert::{AuditCertificate, CivNotary, Outcome};

/// A CIV notary wrapper with a switchable Byzantine mode.
///
/// While honest it is a transparent passthrough to the inner
/// [`CivNotary`]. After [`ByzantineCiv::go_byzantine`] it:
///
/// * repudiates its entire signing history (key rotation + retirement,
///   so previously issued certificates stop validating),
/// * whitewashes every outcome it notarises to [`Outcome::Fulfilled`]
///   regardless of what actually happened, and
/// * will [`forge_as`](ByzantineCiv::forge_as) certificates naming a
///   *different* CIV as issuer and
///   [`fabricate_history`](ByzantineCiv::fabricate_history) for
///   colluding clients.
///
/// The counters record what the adversary did so scenario invariants
/// can assert the honest side rejected exactly that evidence.
#[derive(Debug)]
pub struct ByzantineCiv {
    notary: CivNotary,
    byzantine: AtomicBool,
    whitewashed: AtomicU64,
    forged: AtomicU64,
    fabricated: AtomicU64,
}

impl ByzantineCiv {
    /// Wraps a fresh honest notary with the given service id.
    pub fn new(id: impl Into<ServiceId>) -> Self {
        Self {
            notary: CivNotary::new(id),
            byzantine: AtomicBool::new(false),
            whitewashed: AtomicU64::new(0),
            forged: AtomicU64::new(0),
            fabricated: AtomicU64::new(0),
        }
    }

    /// The wrapped notary's service id.
    pub fn id(&self) -> &ServiceId {
        self.notary.id()
    }

    /// Whether the adapter has turned.
    pub fn is_byzantine(&self) -> bool {
        self.byzantine.load(Ordering::Relaxed)
    }

    /// Turns the CIV rogue: repudiates all previously signed
    /// certificates and makes every subsequent notarisation
    /// adversarial. Idempotent — a second call neither rotates again
    /// nor resets counters.
    pub fn go_byzantine(&self) {
        if !self.byzantine.swap(true, Ordering::Relaxed) {
            self.notary.repudiate_all();
        }
    }

    /// Notarises an interaction. Honest mode records `outcome`
    /// faithfully; Byzantine mode whitewashes it to
    /// [`Outcome::Fulfilled`] (the "valueless audit certificates" of
    /// Sect. 6 — syntactically valid, evidentially worthless).
    pub fn notarise(
        &self,
        client: &PrincipalId,
        provider: &ServiceId,
        contract: impl Into<String>,
        outcome: Outcome,
        at: u64,
    ) -> AuditCertificate {
        let recorded = if self.is_byzantine() && outcome != Outcome::Fulfilled {
            self.whitewashed.fetch_add(1, Ordering::Relaxed);
            Outcome::Fulfilled
        } else {
            outcome
        };
        self.notary
            .notarise(client, provider, contract, recorded, at)
    }

    /// Forges a certificate that *claims* to come from `victim` — the
    /// signature is made with this CIV's secret, so the victim's
    /// `validate` must reject it. Only available after turning; an
    /// honest adapter returns `None`.
    pub fn forge_as(
        &self,
        victim: &ServiceId,
        client: &PrincipalId,
        provider: &ServiceId,
        contract: impl Into<String>,
        outcome: Outcome,
        at: u64,
    ) -> Option<AuditCertificate> {
        if !self.is_byzantine() {
            return None;
        }
        self.forged.fetch_add(1, Ordering::Relaxed);
        let mut cert = self
            .notary
            .notarise(client, provider, contract, outcome, at);
        cert.civ = victim.clone();
        Some(cert)
    }

    /// Fabricates `n` fulfilled-interaction certificates for a
    /// colluding client, back-dated one tick apart ending at `at`.
    /// Empty unless Byzantine.
    pub fn fabricate_history(
        &self,
        client: &PrincipalId,
        provider: &ServiceId,
        n: u64,
        at: u64,
    ) -> Vec<AuditCertificate> {
        if !self.is_byzantine() {
            return Vec::new();
        }
        self.fabricated.fetch_add(n, Ordering::Relaxed);
        (0..n)
            .map(|i| {
                let when = at.saturating_sub(n - 1 - i);
                self.notary.notarise(
                    client,
                    provider,
                    format!("fabricated-{i}"),
                    Outcome::Fulfilled,
                    when,
                )
            })
            .collect()
    }

    /// Validates a certificate against the wrapped notary's live
    /// secrets (post-turn, history is repudiated and fails here too).
    pub fn validate(&self, cert: &AuditCertificate) -> bool {
        self.notary.validate(cert)
    }

    /// `(whitewashed, forged, fabricated)` — what the adversary has
    /// done so far, for scenario traces and invariants.
    pub fn attack_stats(&self) -> (u64, u64, u64) {
        (
            self.whitewashed.load(Ordering::Relaxed),
            self.forged.load(Ordering::Relaxed),
            self.fabricated.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parties() -> (PrincipalId, ServiceId) {
        (PrincipalId::new("alice"), ServiceId::new("library"))
    }

    #[test]
    fn honest_mode_is_a_passthrough() {
        let civ = ByzantineCiv::new("civ");
        let (client, provider) = parties();
        let cert = civ.notarise(&client, &provider, "c-1", Outcome::ClientDefaulted, 10);
        assert_eq!(cert.outcome, Outcome::ClientDefaulted, "no whitewash");
        assert!(civ.validate(&cert));
        assert!(civ
            .forge_as(
                &ServiceId::new("other"),
                &client,
                &provider,
                "f",
                Outcome::Fulfilled,
                10
            )
            .is_none());
        assert!(civ.fabricate_history(&client, &provider, 5, 10).is_empty());
        assert_eq!(civ.attack_stats(), (0, 0, 0));
    }

    #[test]
    fn turning_repudiates_history_and_whitewashes() {
        let civ = ByzantineCiv::new("civ");
        let (client, provider) = parties();
        let honest = civ.notarise(&client, &provider, "c-1", Outcome::Fulfilled, 10);
        assert!(civ.validate(&honest));

        civ.go_byzantine();
        assert!(civ.is_byzantine());
        assert!(!civ.validate(&honest), "history repudiated");

        let washed = civ.notarise(&client, &provider, "c-2", Outcome::ClientDefaulted, 20);
        assert_eq!(washed.outcome, Outcome::Fulfilled, "default laundered");
        assert!(civ.validate(&washed), "signed with the post-turn secret");
        assert_eq!(civ.attack_stats(), (1, 0, 0));
    }

    #[test]
    fn go_byzantine_is_idempotent() {
        let civ = ByzantineCiv::new("civ");
        civ.go_byzantine();
        let (client, provider) = parties();
        let cert = civ.notarise(&client, &provider, "c", Outcome::Fulfilled, 5);
        civ.go_byzantine();
        assert!(civ.validate(&cert), "second turn does not rotate again");
    }

    #[test]
    fn forgeries_fail_the_victims_validation() {
        let civ = ByzantineCiv::new("rogue-civ");
        let victim = CivNotary::new("honest-civ");
        let (client, provider) = parties();
        civ.go_byzantine();

        let forged = civ
            .forge_as(
                victim.id(),
                &client,
                &provider,
                "f-1",
                Outcome::Fulfilled,
                30,
            )
            .expect("byzantine mode forges");
        assert_eq!(&forged.civ, victim.id(), "claims the victim's name");
        assert!(!victim.validate(&forged), "wrong secret");
        assert!(!civ.validate(&forged), "wrong civ id for the rogue too");
        assert_eq!(civ.attack_stats(), (0, 1, 0));
    }

    #[test]
    fn fabricated_history_is_deterministic_and_counted() {
        let (client, provider) = parties();
        let civ = ByzantineCiv::new("rogue-civ");
        civ.go_byzantine();
        let history = civ.fabricate_history(&client, &provider, 3, 100);
        assert_eq!(history.len(), 3);
        assert_eq!(
            history.iter().map(|c| c.at).collect::<Vec<_>>(),
            vec![98, 99, 100],
            "back-dated one tick apart"
        );
        assert!(history.iter().all(|c| c.outcome == Outcome::Fulfilled));
        assert_eq!(civ.attack_stats(), (0, 0, 3));
    }
}
