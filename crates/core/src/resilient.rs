//! Failure-aware issuer callbacks: retries, error classification, and a
//! per-issuer circuit breaker.
//!
//! A validation callback crosses the network in a real deployment, and
//! networks fail in two very different ways. A *transient* failure (the
//! issuer is briefly unreachable, a packet timed out) says nothing about
//! the credential and deserves a retry; a *fatal* answer (the issuer
//! responded "revoked") is authoritative and must never be retried into
//! success. [`ResilientValidator`] decorates any
//! [`CredentialValidator`] with exactly that split:
//!
//! * transient errors are retried under the shared
//!   [`RetryPolicy`](crate::retry::RetryPolicy) — capped exponential
//!   backoff with deterministic jitter, bounded by a total-delay budget;
//! * each issuer gets a circuit breaker (closed → open → half-open):
//!   after `failure_threshold` consecutive exhausted retry sequences the
//!   breaker opens and calls fast-fail with
//!   [`OasisError::CircuitOpen`] instead of burning a timeout each,
//!   until a cooldown (in virtual ticks) admits a single half-open probe.
//!
//! The breaker is timed in *virtual* ticks — the `now` already threaded
//! through every `validate` call — so it composes with the deterministic
//! simulator and the heartbeat machinery in
//! [`OasisService`](crate::OasisService).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::cert::Credential;
use crate::error::OasisError;
use crate::ids::{PrincipalId, ServiceId};
use crate::retry::{Backoff, RetryPolicy};
use crate::validate::CredentialValidator;

/// Whether an error from a validation callback may be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The issuer could not be reached (or answered too slowly); a retry
    /// may succeed and the credential's status is unknown.
    Transient,
    /// The issuer (or local checking) gave an authoritative answer;
    /// retrying cannot change it.
    Fatal,
}

/// Classifies a validation error as transient or fatal.
///
/// Unreachable-issuer conditions ([`OasisError::NoValidator`],
/// [`OasisError::IssuerTimeout`], [`OasisError::CircuitOpen`]) and
/// saturation sheds ([`OasisError::Overloaded`]) are transient; everything
/// else — bad signature, revoked, unknown record, policy denials — is an
/// authoritative answer and fatal.
pub fn classify_error(error: &OasisError) -> ErrorClass {
    match error {
        OasisError::NoValidator(_)
        | OasisError::IssuerTimeout(_)
        | OasisError::CircuitOpen(_)
        | OasisError::Overloaded { .. } => ErrorClass::Transient,
        _ => ErrorClass::Fatal,
    }
}

/// Circuit breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive exhausted retry sequences before the breaker opens.
    pub failure_threshold: u32,
    /// Virtual ticks the breaker stays open before admitting one
    /// half-open probe.
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_ticks: 30,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { since: u64 },
    HalfOpen,
}

impl Default for BreakerState {
    fn default() -> Self {
        BreakerState::Closed {
            consecutive_failures: 0,
        }
    }
}

/// Counters from a [`ResilientValidator`], the decorator-side complement
/// of [`ValidationCacheStats`](crate::ValidationCacheStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// `validate` calls received.
    pub calls: u64,
    /// Calls that ultimately succeeded.
    pub successes: u64,
    /// Individual retries performed (beyond first attempts).
    pub retries: u64,
    /// Attempts that failed with a transient error (excluding overload
    /// sheds, which are counted separately — a shed is an answer from a
    /// live service, not evidence of a broken transport).
    pub transient_failures: u64,
    /// Attempts the issuer shed with [`OasisError::Overloaded`]. These
    /// never count toward opening the issuer's circuit breaker.
    pub overload_sheds: u64,
    /// Attempts that failed with a fatal (authoritative) error.
    pub fatal_failures: u64,
    /// Times a breaker transitioned to open.
    pub breaker_opens: u64,
    /// Calls answered instantly with [`OasisError::CircuitOpen`].
    pub breaker_fast_fails: u64,
    /// Times a breaker closed again (successful probe or answer).
    pub breaker_closes: u64,
}

impl ResilientStats {
    /// Compact single-line JSON for chaos/conformance traces, keys
    /// sorted (rendered by the shared `oasis-obs` canonical encoder).
    pub fn trace_json(&self) -> String {
        oasis_obs::kv_json(&[
            ("breaker_closes", self.breaker_closes.into()),
            ("breaker_fast_fails", self.breaker_fast_fails.into()),
            ("breaker_opens", self.breaker_opens.into()),
            ("calls", self.calls.into()),
            ("fatal_failures", self.fatal_failures.into()),
            ("overload_sheds", self.overload_sheds.into()),
            ("retries", self.retries.into()),
            ("successes", self.successes.into()),
            ("transient_failures", self.transient_failures.into()),
        ])
    }
}

#[derive(Default)]
struct Counters {
    calls: AtomicU64,
    successes: AtomicU64,
    retries: AtomicU64,
    transient_failures: AtomicU64,
    overload_sheds: AtomicU64,
    fatal_failures: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_fast_fails: AtomicU64,
    breaker_closes: AtomicU64,
}

type Sleeper = dyn Fn(Duration) + Send + Sync;

/// A [`CredentialValidator`] decorator adding retries with backoff and a
/// per-issuer circuit breaker. See the [module docs](self).
///
/// # Example
///
/// ```
/// use oasis_core::{LocalRegistry, ResilientValidator};
/// use oasis_core::retry::RetryPolicy;
/// use std::sync::Arc;
///
/// let registry = Arc::new(LocalRegistry::new());
/// let validator = ResilientValidator::new(registry)
///     .with_retry(RetryPolicy::immediate(3));
/// assert_eq!(validator.stats().calls, 0);
/// ```
pub struct ResilientValidator {
    inner: Arc<dyn CredentialValidator>,
    retry: RetryPolicy,
    breaker: BreakerConfig,
    breakers: Mutex<HashMap<ServiceId, BreakerState>>,
    sleeper: Box<Sleeper>,
    jitter_seed: AtomicU64,
    counters: Counters,
}

impl std::fmt::Debug for ResilientValidator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientValidator")
            .field("retry", &self.retry)
            .field("breaker", &self.breaker)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResilientValidator {
    /// Wraps `inner` with the default retry policy and breaker tuning.
    pub fn new(inner: Arc<dyn CredentialValidator>) -> Self {
        Self {
            inner,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            breakers: Mutex::new(HashMap::new()),
            sleeper: Box::new(|d| {
                if d > Duration::ZERO {
                    std::thread::sleep(d);
                }
            }),
            jitter_seed: AtomicU64::new(0x5DEE_CE66_D001_u64),
            counters: Counters::default(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the breaker tuning.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Replaces the function used to sleep between retries (tests inject
    /// a no-op; deployments keep the default `thread::sleep`).
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        self.sleeper = Box::new(sleeper);
        self
    }

    /// A snapshot of the retry/breaker counters.
    pub fn stats(&self) -> ResilientStats {
        ResilientStats {
            calls: self.counters.calls.load(Ordering::Relaxed),
            successes: self.counters.successes.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            transient_failures: self.counters.transient_failures.load(Ordering::Relaxed),
            overload_sheds: self.counters.overload_sheds.load(Ordering::Relaxed),
            fatal_failures: self.counters.fatal_failures.load(Ordering::Relaxed),
            breaker_opens: self.counters.breaker_opens.load(Ordering::Relaxed),
            breaker_fast_fails: self.counters.breaker_fast_fails.load(Ordering::Relaxed),
            breaker_closes: self.counters.breaker_closes.load(Ordering::Relaxed),
        }
    }

    /// The breaker state for `issuer`: `"closed"`, `"open"`, or
    /// `"half-open"` (a never-contacted issuer reads as closed).
    pub fn breaker_state(&self, issuer: &ServiceId) -> &'static str {
        match self.breakers.lock().get(issuer) {
            None | Some(BreakerState::Closed { .. }) => "closed",
            Some(BreakerState::Open { .. }) => "open",
            Some(BreakerState::HalfOpen) => "half-open",
        }
    }

    /// Gate a call through the breaker. `Ok(())` admits the call (and may
    /// have moved the breaker to half-open, making this call the probe).
    fn admit(&self, issuer: &ServiceId, now: u64) -> Result<(), OasisError> {
        let mut breakers = self.breakers.lock();
        let state = breakers.entry(issuer.clone()).or_default();
        match *state {
            BreakerState::Closed { .. } => Ok(()),
            BreakerState::Open { since }
                if now >= since.saturating_add(self.breaker.cooldown_ticks) =>
            {
                *state = BreakerState::HalfOpen;
                Ok(())
            }
            BreakerState::Open { .. } | BreakerState::HalfOpen => {
                self.counters
                    .breaker_fast_fails
                    .fetch_add(1, Ordering::Relaxed);
                Err(OasisError::CircuitOpen(issuer.clone()))
            }
        }
    }

    /// The issuer answered (success or authoritative rejection): reset
    /// the breaker.
    fn record_answer(&self, issuer: &ServiceId) {
        let mut breakers = self.breakers.lock();
        let state = breakers.entry(issuer.clone()).or_default();
        if !matches!(
            *state,
            BreakerState::Closed {
                consecutive_failures: 0
            }
        ) {
            if matches!(*state, BreakerState::Open { .. } | BreakerState::HalfOpen) {
                self.counters.breaker_closes.fetch_add(1, Ordering::Relaxed);
            }
            *state = BreakerState::default();
        }
    }

    /// A retry sequence exhausted without an answer: count it against the
    /// breaker.
    fn record_unreachable(&self, issuer: &ServiceId, now: u64) {
        let mut breakers = self.breakers.lock();
        let state = breakers.entry(issuer.clone()).or_default();
        let open = match *state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.breaker.failure_threshold {
                    true
                } else {
                    *state = BreakerState::Closed {
                        consecutive_failures: failures,
                    };
                    false
                }
            }
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Open { .. } => false,
        };
        if open {
            *state = BreakerState::Open { since: now };
            self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl CredentialValidator for ResilientValidator {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        let issuer = credential.issuer();
        self.counters.calls.fetch_add(1, Ordering::Relaxed);
        self.admit(issuer, now)?;

        let seed = self.jitter_seed.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::with_seed(self.retry, seed);
        loop {
            match self.inner.validate(credential, presenter, now) {
                Ok(()) => {
                    self.counters.successes.fetch_add(1, Ordering::Relaxed);
                    self.record_answer(issuer);
                    return Ok(());
                }
                Err(error) => match classify_error(&error) {
                    ErrorClass::Fatal => {
                        self.counters.fatal_failures.fetch_add(1, Ordering::Relaxed);
                        // The issuer *answered*; its reachability is fine.
                        self.record_answer(issuer);
                        return Err(error);
                    }
                    ErrorClass::Transient => {
                        let shed_hint = match &error {
                            OasisError::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
                            _ => None,
                        };
                        if shed_hint.is_some() {
                            self.counters.overload_sheds.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.counters
                                .transient_failures
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        match backoff.next_delay() {
                            Some(delay) => {
                                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                                // An overloaded issuer said exactly when to
                                // come back: its hint replaces the generic
                                // backoff delay, still bounded by the
                                // policy's total-delay budget.
                                let delay = match shed_hint {
                                    Some(ms) => {
                                        Duration::from_millis(ms).min(self.retry.total_delay_cap)
                                    }
                                    None => delay,
                                };
                                (self.sleeper)(delay);
                            }
                            None => {
                                // A shed is an answer from a live service;
                                // it proves reachability rather than
                                // refuting it, so it resets the breaker
                                // instead of charging it.
                                match shed_hint {
                                    Some(_) => self.record_answer(issuer),
                                    None => self.record_unreachable(issuer, now),
                                }
                                return Err(error);
                            }
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    struct Flaky {
        up: Arc<AtomicBool>,
        attempts: AtomicU64,
        fail_first: u64,
    }

    impl CredentialValidator for Flaky {
        fn validate(
            &self,
            credential: &Credential,
            _presenter: &PrincipalId,
            _now: u64,
        ) -> Result<(), OasisError> {
            let n = self.attempts.fetch_add(1, Ordering::Relaxed);
            if !self.up.load(Ordering::Relaxed) || n < self.fail_first {
                return Err(OasisError::IssuerTimeout(credential.issuer().clone()));
            }
            Ok(())
        }
    }

    fn world(up: bool, fail_first: u64) -> (Arc<Flaky>, ResilientValidator, Credential) {
        let flaky = Arc::new(Flaky {
            up: Arc::new(AtomicBool::new(up)),
            attempts: AtomicU64::new(0),
            fail_first,
        });
        let validator = ResilientValidator::new(Arc::clone(&flaky) as Arc<dyn CredentialValidator>)
            .with_retry(RetryPolicy::immediate(3))
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown_ticks: 10,
            });
        let secret = oasis_crypto::IssuerSecret::random();
        let rmc = crate::cert::Rmc::issue(
            &secret.current(),
            secret.current_epoch(),
            &PrincipalId::new("alice"),
            crate::cert::Crr::new(ServiceId::new("issuer"), crate::ids::CertId(1)),
            crate::ids::RoleName::new("guest"),
            vec![],
            0,
            None,
        );
        (flaky, validator, Credential::Rmc(rmc))
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let (flaky, validator, cred) = world(true, 2);
        validator
            .validate(&cred, &PrincipalId::new("alice"), 0)
            .unwrap();
        assert_eq!(flaky.attempts.load(Ordering::Relaxed), 3);
        let stats = validator.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.transient_failures, 2);
    }

    #[test]
    fn breaker_opens_after_threshold_and_fast_fails() {
        let (flaky, validator, cred) = world(false, 0);
        let alice = PrincipalId::new("alice");
        // Two exhausted sequences (threshold) open the breaker.
        assert!(validator.validate(&cred, &alice, 0).is_err());
        assert!(validator.validate(&cred, &alice, 1).is_err());
        assert_eq!(validator.breaker_state(cred.issuer()), "open");
        let attempts_before = flaky.attempts.load(Ordering::Relaxed);

        // While open, calls never reach the inner validator.
        let err = validator.validate(&cred, &alice, 2).unwrap_err();
        assert!(matches!(err, OasisError::CircuitOpen(_)));
        assert_eq!(flaky.attempts.load(Ordering::Relaxed), attempts_before);
        assert_eq!(validator.stats().breaker_fast_fails, 1);
        assert_eq!(validator.stats().breaker_opens, 1);
    }

    #[test]
    fn half_open_probe_closes_breaker_on_recovery() {
        let (flaky, validator, cred) = world(false, 0);
        let alice = PrincipalId::new("alice");
        assert!(validator.validate(&cred, &alice, 0).is_err());
        assert!(validator.validate(&cred, &alice, 0).is_err());
        assert_eq!(validator.breaker_state(cred.issuer()), "open");

        // Cooldown (10 ticks) passes and the issuer recovers.
        flaky.up.store(true, Ordering::Relaxed);
        validator.validate(&cred, &alice, 11).unwrap();
        assert_eq!(validator.breaker_state(cred.issuer()), "closed");
        assert_eq!(validator.stats().breaker_closes, 1);

        // And stays closed for subsequent traffic.
        validator.validate(&cred, &alice, 12).unwrap();
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let (_flaky, validator, cred) = world(false, 0);
        let alice = PrincipalId::new("alice");
        assert!(validator.validate(&cred, &alice, 0).is_err());
        assert!(validator.validate(&cred, &alice, 0).is_err());
        // Probe after cooldown fails: re-open, counted as another open.
        assert!(validator.validate(&cred, &alice, 20).is_err());
        assert_eq!(validator.breaker_state(cred.issuer()), "open");
        assert_eq!(validator.stats().breaker_opens, 2);
        // And the fresh open means fast-fail again before the next cooldown.
        let err = validator.validate(&cred, &alice, 21).unwrap_err();
        assert!(matches!(err, OasisError::CircuitOpen(_)));
    }

    #[test]
    fn fatal_errors_are_not_retried_and_do_not_trip_breaker() {
        struct Rejecting;
        impl CredentialValidator for Rejecting {
            fn validate(
                &self,
                credential: &Credential,
                _presenter: &PrincipalId,
                _now: u64,
            ) -> Result<(), OasisError> {
                Err(OasisError::UnknownCertificate(credential.crr().clone()))
            }
        }
        let validator = ResilientValidator::new(Arc::new(Rejecting))
            .with_retry(RetryPolicy::immediate(5))
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 10,
            });
        let (_, _, cred) = world(true, 0);
        let alice = PrincipalId::new("alice");
        for now in 0..5 {
            let err = validator.validate(&cred, &alice, now).unwrap_err();
            assert!(matches!(err, OasisError::UnknownCertificate(_)));
        }
        let stats = validator.stats();
        assert_eq!(stats.retries, 0, "fatal answers are never retried");
        assert_eq!(stats.fatal_failures, 5);
        assert_eq!(validator.breaker_state(cred.issuer()), "closed");
    }

    /// An inner validator that always sheds with a fixed retry hint.
    struct Shedding {
        retry_after_ms: u64,
    }

    impl CredentialValidator for Shedding {
        fn validate(
            &self,
            credential: &Credential,
            _presenter: &PrincipalId,
            _now: u64,
        ) -> Result<(), OasisError> {
            Err(OasisError::Overloaded {
                service: credential.issuer().clone(),
                retry_after_ms: self.retry_after_ms,
            })
        }
    }

    #[test]
    fn overload_hint_replaces_generic_backoff_delay() {
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let slept2 = Arc::clone(&slept);
        let validator = ResilientValidator::new(Arc::new(Shedding { retry_after_ms: 37 }))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                total_delay_cap: Duration::from_secs(10),
                jitter: 0.0,
            })
            .with_sleeper(move |d| slept2.lock().push(d));
        let (_, _, cred) = world(true, 0);
        let err = validator
            .validate(&cred, &PrincipalId::new("alice"), 0)
            .unwrap_err();
        assert!(matches!(err, OasisError::Overloaded { .. }));
        // Both retries slept the server's hint, not the 10/20ms schedule.
        assert_eq!(
            *slept.lock(),
            vec![Duration::from_millis(37), Duration::from_millis(37)]
        );
    }

    #[test]
    fn overload_hint_is_clamped_to_total_delay_cap() {
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let slept2 = Arc::clone(&slept);
        let validator = ResilientValidator::new(Arc::new(Shedding {
            retry_after_ms: 60_000,
        }))
        .with_retry(RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
            total_delay_cap: Duration::from_millis(250),
            jitter: 0.0,
        })
        .with_sleeper(move |d| slept2.lock().push(d));
        let (_, _, cred) = world(true, 0);
        let _ = validator.validate(&cred, &PrincipalId::new("alice"), 0);
        assert_eq!(*slept.lock(), vec![Duration::from_millis(250)]);
    }

    #[test]
    fn overload_sheds_counted_separately_and_spare_the_breaker() {
        let validator = ResilientValidator::new(Arc::new(Shedding { retry_after_ms: 5 }))
            .with_retry(RetryPolicy::immediate(2))
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 10,
            });
        let (_, _, cred) = world(true, 0);
        let alice = PrincipalId::new("alice");
        // Threshold is 1: a single exhausted *transport* sequence would
        // open the breaker. Exhausted shed sequences must not.
        for now in 0..4 {
            let err = validator.validate(&cred, &alice, now).unwrap_err();
            assert!(matches!(err, OasisError::Overloaded { .. }));
        }
        let stats = validator.stats();
        assert_eq!(stats.overload_sheds, 8, "2 attempts x 4 calls");
        assert_eq!(stats.transient_failures, 0);
        assert_eq!(stats.breaker_opens, 0);
        assert_eq!(validator.breaker_state(cred.issuer()), "closed");
    }

    #[test]
    fn classification_table() {
        let sid = ServiceId::new("x");
        assert_eq!(
            classify_error(&OasisError::NoValidator(sid.clone())),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_error(&OasisError::IssuerTimeout(sid.clone())),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_error(&OasisError::CircuitOpen(sid.clone())),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_error(&OasisError::Overloaded {
                service: sid.clone(),
                retry_after_ms: 10
            }),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_error(&OasisError::UnknownRole(crate::ids::RoleName::new("r"))),
            ErrorClass::Fatal
        );
    }
}
