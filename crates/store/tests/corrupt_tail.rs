//! Satellite: corrupt-tail tolerance.
//!
//! A crash mid-append leaves a truncated or bit-flipped final frame.
//! These tests damage the journal tail every way a disk can and
//! assert recovery stops cleanly at the last valid checksummed
//! record — no panic, no trusting garbage, and the healed journal
//! accepts further appends with a correctly resumed sequence.

use std::sync::Arc;

use oasis_json::{FromJson, Json, JsonError, ToJson};
use oasis_store::{DurableStore, Journal, MemBackend};

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    id: u64,
    label: String,
}

impl ToJson for Entry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::U64(self.id)),
            ("label", Json::str(self.label.clone())),
        ])
    }
}

impl FromJson for Entry {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Entry {
            id: json
                .field("id")?
                .as_u64()
                .ok_or_else(|| JsonError::expected("u64 id"))?,
            label: json
                .field("label")?
                .as_str()
                .ok_or_else(|| JsonError::expected("string label"))?
                .to_string(),
        })
    }
}

fn entry(i: u64) -> Entry {
    Entry {
        id: i,
        label: format!("entry-{i}"),
    }
}

fn filled(n: u64) -> (Journal<Entry>, MemBackend) {
    let backend = MemBackend::new();
    let (journal, tail) = Journal::open(Arc::new(backend.clone())).unwrap();
    assert!(!tail.torn);
    for i in 1..=n {
        journal.append(&entry(i)).unwrap();
    }
    (journal, backend)
}

#[test]
fn truncated_tail_recovers_valid_prefix() {
    // Chop off part of the final frame at every possible boundary.
    for cut in 1..=8 {
        let (_, backend) = filled(4);
        backend.truncate_tail(cut);
        let (journal, tail) = Journal::<Entry>::open(Arc::new(backend)).unwrap();
        assert!(tail.torn, "cut of {cut} bytes must be detected");
        assert!(tail.torn_bytes > 0);
        let loaded = journal.load().unwrap();
        assert_eq!(loaded.records.len(), 3, "cut {cut}: last record dropped");
        assert_eq!(loaded.records[2].1, entry(3));
    }
}

#[test]
fn flipped_payload_byte_drops_only_the_tail_record() {
    let (_, backend) = filled(5);
    backend.corrupt_tail(2); // inside the last record's payload
    let (journal, tail) = Journal::<Entry>::open(Arc::new(backend)).unwrap();
    assert!(tail.torn);
    let loaded = journal.load().unwrap();
    assert_eq!(loaded.records.len(), 4);
    assert_eq!(loaded.records.last().unwrap().1, entry(4));
}

#[test]
fn garbage_after_valid_records_is_ignored() {
    let (_, backend) = filled(3);
    backend.append_garbage(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
    let (journal, tail) = Journal::<Entry>::open(Arc::new(backend)).unwrap();
    assert!(tail.torn);
    assert_eq!(tail.torn_bytes, 6);
    assert_eq!(journal.load().unwrap().records.len(), 3);
}

#[test]
fn garbage_length_field_cannot_cause_huge_read() {
    let (_, backend) = filled(2);
    // A frame header whose length field claims 4 GiB.
    let mut bogus = Vec::new();
    bogus.extend_from_slice(&u32::MAX.to_le_bytes());
    bogus.extend_from_slice(&3u64.to_le_bytes());
    bogus.extend_from_slice(&0u64.to_le_bytes());
    backend.append_garbage(&bogus);
    let (journal, tail) = Journal::<Entry>::open(Arc::new(backend)).unwrap();
    assert!(tail.torn);
    assert_eq!(journal.load().unwrap().records.len(), 2);
}

#[test]
fn healed_journal_resumes_appends_after_damage() {
    let (_, backend) = filled(4);
    backend.truncate_tail(5);
    let (journal, _) = Journal::<Entry>::open(Arc::new(backend.clone())).unwrap();
    // Record 4 was torn away; the next append must reuse seq 4, and a
    // clean reopen must see a fully valid log.
    assert_eq!(journal.append(&entry(40)).unwrap(), 4);
    let (journal2, tail2) = Journal::<Entry>::open(Arc::new(backend)).unwrap();
    assert!(!tail2.torn, "healed journal must reopen clean");
    let loaded = journal2.load().unwrap();
    assert_eq!(loaded.records.len(), 4);
    assert_eq!(loaded.records[3].1, entry(40));
}

#[test]
fn corrupt_snapshot_falls_back_to_full_replay() {
    let journal_backend = MemBackend::new();
    let snap_backend = MemBackend::new();
    let store: DurableStore<Entry, Entry> = DurableStore::open(
        Arc::new(journal_backend.clone()),
        Arc::new(snap_backend.clone()),
    )
    .unwrap();
    for i in 1..=6 {
        store.append(&entry(i)).unwrap();
    }
    store.write_snapshot(4, &entry(999)).unwrap();
    snap_backend.corrupt_tail(1);

    let reopened: DurableStore<Entry, Entry> =
        DurableStore::open(Arc::new(journal_backend), Arc::new(snap_backend)).unwrap();
    let recovered = reopened.load().unwrap();
    assert!(recovered.snapshot.is_none());
    assert!(recovered.snapshot_corrupt);
    // Only post-truncation records remain (5, 6) — the caller learns
    // the snapshot was bad and can refuse to serve, which is the
    // fail-safe outcome.
    let seqs: Vec<u64> = recovered.events.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, vec![5, 6]);
}

#[test]
fn file_backend_round_trip_with_torn_tail() {
    let dir = std::env::temp_dir().join(format!(
        "oasis-store-test-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let store: DurableStore<Entry, Entry> = DurableStore::open_dir(&dir).unwrap();
    for i in 1..=3 {
        store.append(&entry(i)).unwrap();
    }
    drop(store);

    // Tear the file's tail directly.
    let path = dir.join("journal.log");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let store: DurableStore<Entry, Entry> = DurableStore::open_dir(&dir).unwrap();
    assert!(store.open_tail().torn);
    let recovered = store.load().unwrap();
    assert_eq!(recovered.events.len(), 2);
    assert_eq!(recovered.events[1].1, entry(2));

    std::fs::remove_dir_all(&dir).ok();
}
