//! Deterministic overload behaviour over real TCP: a saturated lane sheds
//! with a retry hint while the other lanes keep answering, and the
//! `RemoteValidator` maps sheds to `OasisError::Overloaded` without
//! dropping its cached connection.
//!
//! Determinism: instead of racing a flood, the tests grab the server's
//! admission controller directly and *hold* the saturated lane's only
//! permit, so the wire request's fate is decided, not timed.

use std::sync::Arc;

use oasis_core::{
    Atom, Credential, CredentialValidator, Deadline, Lane, LaneConfig, OasisError, OasisService,
    OverloadConfig, PrincipalId, ServiceConfig, Submission, Term, Value, ValueType,
};
use oasis_facts::FactStore;
use oasis_wire::{RemoteValidator, WireClient, WireError, WireServer};

fn login_service() -> Arc<OasisService> {
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    facts
        .insert("password_ok", vec![Value::id("alice")])
        .unwrap();
    let svc = OasisService::new(ServiceConfig::new("login"), facts);
    svc.define_role("logged_in", &[("u", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![0],
    )
    .unwrap();
    svc
}

/// Validation lane: a single slot and no queue, so one held permit makes
/// the very next validation request shed.
fn tight_validation_config() -> OverloadConfig {
    let mut cfg = OverloadConfig::default();
    *cfg.lane_mut(Lane::Validation) = LaneConfig {
        initial_limit: 1,
        min_limit: 1,
        max_limit: 1,
        queue_cap: 0,
        target_latency_ms: 1_000,
    };
    cfg
}

#[test]
fn saturated_lane_sheds_while_control_keeps_answering() {
    let service = login_service();
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0")
        .unwrap()
        .with_overload(tight_validation_config());
    let controller = server.controller();
    let addr = server.serve_in_background().unwrap();

    let alice = PrincipalId::new("alice");
    // The deadline marks the connection envelope-aware, so sheds arrive
    // as structured `Overloaded` answers (legacy connections get the
    // `Error` shape instead — see the dedicated test below).
    let mut client = WireClient::connect(addr).unwrap().with_deadline_ms(60_000);
    let rmc = client
        .activate(&alice, "logged_in", vec![Value::id("alice")], vec![], 1)
        .unwrap();
    let cred = Credential::Rmc(rmc.clone());

    // Sanity: the validation lane answers while free.
    client.validate(&cred, &alice, 2).unwrap();

    // Saturate it: hold its only permit.
    let permit = match controller.submit(Lane::Validation, Deadline::none()) {
        Submission::Admitted(p) => p,
        _ => panic!("free lane must admit"),
    };

    // Validation is now shed, with a usable hint...
    let err = client.validate(&cred, &alice, 3).unwrap_err();
    match err {
        WireError::Overloaded { retry_after_ms } => assert!(retry_after_ms >= 1),
        other => panic!("expected Overloaded, got {other}"),
    }

    // ...while control traffic on the SAME connection still answers:
    // liveness and — the active-security point — revocation.
    client.ping().unwrap();
    assert!(client.revoke(rmc.crr.cert_id.0, "logout", 4).unwrap());

    // Shedding freed no permit and did no work: stats say shed, not run.
    let stats = service.overload_stats().unwrap();
    assert_eq!(stats.lane(Lane::Validation).shed, 1);
    assert_eq!(stats.lane(Lane::Control).shed, 0);
    assert!(stats.lane(Lane::Control).admitted >= 2);

    // Releasing the permit reopens the lane (the shed was not sticky).
    drop(permit);
    let err = client.validate(&cred, &alice, 5).unwrap_err();
    assert!(
        matches!(err, WireError::Remote(ref m) if m.contains("revoked")),
        "post-revocation validation reaches the engine again: {err}"
    );
}

#[test]
fn remote_validator_surfaces_overload_and_keeps_its_connection() {
    let service = login_service();
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0")
        .unwrap()
        .with_overload(tight_validation_config());
    let controller = server.controller();
    let addr = server.serve_in_background().unwrap();

    let alice = PrincipalId::new("alice");
    let mut client = WireClient::connect(addr).unwrap();
    let rmc = client
        .activate(&alice, "logged_in", vec![Value::id("alice")], vec![], 1)
        .unwrap();
    let cred = Credential::Rmc(rmc);

    let validator = RemoteValidator::new().with_call_deadline_ms(60_000);
    validator.add_issuer("login", addr);

    // Healthy path first, so a connection is cached.
    validator.validate(&cred, &alice, 2).unwrap();

    let permit = match controller.submit(Lane::Validation, Deadline::none()) {
        Submission::Admitted(p) => p,
        _ => panic!("free lane must admit"),
    };
    let err = validator.validate(&cred, &alice, 3).unwrap_err();
    match err {
        OasisError::Overloaded {
            ref service,
            retry_after_ms,
        } => {
            assert_eq!(service.as_str(), "login");
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected OasisError::Overloaded, got {other}"),
    }

    // The shed did not poison the cached connection: the next call reuses
    // it and succeeds (conns_accepted would grow on a re-dial).
    let conns_before = service.overload_stats().unwrap().conns_accepted;
    drop(permit);
    validator.validate(&cred, &alice, 4).unwrap();
    let conns_after = service.overload_stats().unwrap().conns_accepted;
    assert_eq!(conns_before, conns_after, "no re-dial after a shed");
}

#[test]
fn legacy_connections_shed_with_error_shape_until_envelope_seen() {
    let service = login_service();
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0")
        .unwrap()
        .with_overload(tight_validation_config());
    let controller = server.controller();
    let addr = server.serve_in_background().unwrap();

    let alice = PrincipalId::new("alice");
    // No deadline: this connection only ever sends bare (pre-envelope)
    // frames, exactly like a client that predates the overload protocol.
    let mut client = WireClient::connect(addr).unwrap();
    let rmc = client
        .activate(&alice, "logged_in", vec![Value::id("alice")], vec![], 1)
        .unwrap();
    let cred = Credential::Rmc(rmc);

    let _permit = match controller.submit(Lane::Validation, Deadline::none()) {
        Submission::Admitted(p) => p,
        _ => panic!("free lane must admit"),
    };

    // A legacy connection cannot parse `Overloaded`; it is shed with the
    // `Error` shape it already understands as a remote failure.
    match client.validate(&cred, &alice, 2).unwrap_err() {
        WireError::Remote(message) => {
            assert!(message.contains("overloaded"), "shed reason: {message}");
        }
        other => panic!("legacy connection expected Remote error, got {other}"),
    }

    // One deadline envelope demonstrates support...
    client.set_deadline_ms(Some(60_000));
    assert!(matches!(
        client.validate(&cred, &alice, 3).unwrap_err(),
        WireError::Overloaded { .. }
    ));

    // ...and the capability sticks for the connection's lifetime, even
    // for later deadline-less frames.
    client.set_deadline_ms(None);
    assert!(matches!(
        client.validate(&cred, &alice, 4).unwrap_err(),
        WireError::Overloaded { .. }
    ));
}

#[test]
fn more_persistent_connections_than_workers_all_get_served() {
    let service = login_service();
    let cfg = OverloadConfig {
        workers: 2,
        ..Default::default()
    };
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0")
        .unwrap()
        .with_overload(cfg);
    let addr = server.serve_in_background().unwrap();

    // Four times as many live, persistent connections as workers. Under a
    // worker-per-connection design the third client would wait in the
    // accept queue forever; the multiplexed rotation serves them all.
    let alice = PrincipalId::new("alice");
    let mut clients: Vec<WireClient> = (0..8).map(|_| WireClient::connect(addr).unwrap()).collect();
    for round in 0..2 {
        for (i, client) in clients.iter_mut().enumerate() {
            client
                .ping()
                .unwrap_or_else(|e| panic!("round {round}, connection {i}: ping failed: {e}"));
        }
    }

    // The active-security point: a revocation arriving on the *last*
    // connection still goes through while every earlier connection stays
    // open and idle.
    let rmc = clients[0]
        .activate(&alice, "logged_in", vec![Value::id("alice")], vec![], 1)
        .unwrap();
    assert!(clients[7].revoke(rmc.crr.cert_id.0, "logout", 2).unwrap());
}

#[test]
fn idle_connections_are_closed_and_counted() {
    let service = login_service();
    let cfg = OverloadConfig {
        idle_conn_ms: 80,
        ..Default::default()
    };
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0")
        .unwrap()
        .with_overload(cfg);
    let addr = server.serve_in_background().unwrap();

    let mut client = WireClient::connect(addr).unwrap();
    client.ping().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));

    // The server reclaimed the idle connection's rotation slot; the next
    // call finds the socket closed (EOF or reset, depending on timing).
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, WireError::Closed | WireError::Io(_)),
        "expected a closed connection, got {err}"
    );
    assert!(service.overload_stats().unwrap().conns_idle_closed >= 1);
}
