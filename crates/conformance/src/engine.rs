//! The two-domain scenario runner: a login issuer and a failure-aware
//! hospital joined by a lossy simulated link, composed with admission
//! control, fail-safe degradation, durable watermark catch-up, and —
//! in Byzantine cells — the trust layer.
//!
//! Everything runs under one seeded virtual clock
//! ([`oasis_sim::Simulation`]); the run records a canonical JSONL trace
//! ([`oasis_sim::Trace`]) and fills an [`InvariantReport`]
//! post-run. Revocation delivery between domains is modelled the way
//! the wire layer does it: the durable hospital *pulls* resyncs from
//! the issuer's retained ring over the faulty link
//! ([`OasisService::replay_retained`] →
//! [`OasisService::catch_up_with`]), so its per-topic watermark always
//! carries the issuer's sequence numbers and a lost or reordered pull
//! can never fabricate a gap.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use oasis_core::cert::Rmc;
use oasis_core::retry::RetryPolicy;
use oasis_core::{
    AdmissionController, Atom, BreakerConfig, Clock, CredStatus, Credential, CredentialValidator,
    Deadline, DegradationPolicy, EnvContext, HeartbeatConfig, Lane, LaneConfig, LocalRegistry,
    ManualClock, OasisError, OasisService, OverloadConfig, Permit, PollOutcome, PrincipalId,
    ResilientValidator, RoleName, ServiceConfig, ServiceId, ServiceJournal, Submission, Term,
    Ticket, Value, ValueType,
};
use oasis_events::SourceHealth;
use oasis_facts::FactStore;
use oasis_sim::{Fault, FaultPlan, Latency, LinkConfig, SimNet, Simulation, Trace, TraceValue};
use oasis_store::MemBackend;
use oasis_trust::{
    ByzantineCiv as RogueCiv, CivNotary, Decision, Outcome, RiskPolicy, TrustAssessor,
};

use crate::invariant::{
    InvariantReport, BYZANTINE_EVIDENCE_REJECTED, DEGRADATION_CONSISTENT, GAP_FREE_RECOVERY,
    NO_ACKED_EVENT_LOST, NO_POST_DEADLINE_EXECUTION, NO_STALE_CERT_ACCEPTANCE,
};
use crate::parity::Perturbation;
use crate::scenario::{FaultRegime, Scenario, Workload};
use crate::{METRICS_DETERMINISTIC, OVERLOAD_BACKPRESSURE};

/// Principals with a login credential and a dependent duty role.
const PRINCIPALS: usize = 6;
/// Throwaway sessions issued up front for revocation schedules.
const THROWAWAYS: usize = 12;
/// Virtual ticks an admitted request occupies a worker.
const SERVICE_TICKS: u64 = 2;
/// Deadline budget propagated with each validation.
const VALIDATION_BUDGET: u64 = 30;
/// Deadline budget propagated with each revocation request.
const REVOCATION_BUDGET: u64 = 60;
/// First tick of the post-fault settle probe window.
const PROBE_FROM: u64 = 240;
/// Last tick of the settle probe window.
const PROBE_TO: u64 = 365;
/// Tick of the guaranteed (fault-free) final catch-up.
const FINAL_CATCHUP: u64 = 370;
/// Last simulated tick.
const END: u64 = 380;

/// The issuer's revocation topic as the hospital subscribes to it.
const TOPIC: &str = "cred.revoked.login";

/// One finished scenario run: the canonical trace plus the invariant
/// report the harness asserts.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The cell that ran.
    pub scenario: Scenario,
    /// The per-scenario seed actually used (derived from the base seed
    /// and the scenario name).
    pub seed: u64,
    /// Canonical JSONL trace lines.
    pub trace: Vec<String>,
    /// The shared invariant verdicts.
    pub report: InvariantReport,
}

enum Work {
    /// Validation callback for principal `i`'s login credential.
    Validate(usize),
    /// Revocation of target `i` (see `RevTargets`).
    Revoke(usize),
}

struct PendingReq {
    ticket: Ticket,
    deadline: Deadline,
    work: Work,
}

struct RunningReq {
    finish_at: u64,
    permit: Option<Permit>,
    work: Work,
}

#[derive(Default)]
struct Metrics {
    validations_ok: u64,
    validations_refused: u64,
    validations_shed: u64,
    validations_expired: u64,
    started_after_deadline: u64,
    stale_violations: Vec<String>,
    revocations_deferred: u64,
    revocation_retries: u64,
    dead_seen: Option<u64>,
    degraded_total: u64,
    /// `(tick, probe_ok, breaker_state)` of the settle probe.
    settled: Option<(u64, bool, String)>,
    /// `(complete, applied, watermark)` of the final catch-up.
    final_catchup: Option<(bool, u64, u64)>,
}

/// Callback reachability switch: while the issuer is crashed or the
/// inter-domain link is cut, callbacks time out instead of answering.
struct Gate {
    inner: Arc<LocalRegistry>,
    up: AtomicBool,
}

impl CredentialValidator for Gate {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        if self.up.load(Ordering::SeqCst) {
            self.inner.validate(credential, presenter, now)
        } else {
            Err(OasisError::IssuerTimeout(credential.issuer().clone()))
        }
    }
}

fn who(i: usize) -> PrincipalId {
    PrincipalId::new(format!("dr-{i}"))
}

fn login_id() -> ServiceId {
    ServiceId::new("login")
}

fn hospital_id() -> ServiceId {
    ServiceId::new("hospital")
}

/// How many validations arrive at tick `t` under `workload`.
fn validations_at(workload: Workload, t: u64) -> usize {
    match workload {
        Workload::Quiet => 0,
        Workload::Steady => usize::from(t.is_multiple_of(5) && (10..=280).contains(&t)),
        Workload::ValidationFlood | Workload::FloodAndStorm => {
            if (20..=220).contains(&t) {
                3
            } else {
                0
            }
        }
        Workload::RevocationStorm => usize::from(t.is_multiple_of(5) && (10..=280).contains(&t)),
    }
}

/// The revocation arrival schedule: `(tick, target)` where targets
/// `0..THROWAWAYS` are throwaway sessions and `THROWAWAYS + i` is
/// primary `4 + i`'s login credential.
fn revocation_arrivals(workload: Workload, perturb: Option<Perturbation>) -> Vec<(u64, usize)> {
    let mut arrivals: Vec<(u64, usize)> = Vec::new();
    match workload {
        Workload::Quiet => {}
        Workload::Steady | Workload::ValidationFlood => {
            arrivals.push((80, 0));
            arrivals.push((150, 1));
        }
        Workload::RevocationStorm | Workload::FloodAndStorm => {
            for i in 0..THROWAWAYS {
                arrivals.push((60 + 6 * i as u64, i));
            }
            arrivals.push((100, THROWAWAYS));
            arrivals.push((120, THROWAWAYS + 1));
        }
    }
    if perturb == Some(Perturbation::DelayFirstRevocation) {
        if let Some(first) = arrivals.iter_mut().min_by_key(|(t, _)| *t) {
            first.0 += 1;
        }
    }
    arrivals
}

/// Installs the scripted fault windows for `fault` into `plan`.
fn script_faults(plan: &mut FaultPlan, fault: FaultRegime) {
    match fault {
        FaultRegime::None => {}
        FaultRegime::IssuerOutage => {
            plan.crash_at(90, "login");
            plan.recover_at(160, "login");
        }
        FaultRegime::FlappingIssuer => {
            plan.crash_at(60, "login");
            plan.recover_at(85, "login");
            plan.crash_at(120, "login");
            plan.recover_at(145, "login");
        }
        FaultRegime::PartitionWindow => {
            plan.partition_at(70, "login", "hospital");
            plan.heal_at(130, "login", "hospital");
        }
        FaultRegime::ClockSkewAhead => {
            plan.skew_clock_at(40, "login", 200);
            plan.skew_clock_at(200, "login", 0);
        }
        FaultRegime::ClockSkewBehind => {
            plan.skew_clock_at(40, "login", -45);
            plan.skew_clock_at(200, "login", 0);
        }
        FaultRegime::ByzantineCiv => {
            plan.byzantine_civ_at(100, "civ-login");
        }
        // Replication-only regimes never reach the two-domain runner.
        _ => unreachable!("fault {fault:?} is not a two-domain regime"),
    }
}

struct TrustWorld {
    honest: CivNotary,
    rogue: RogueCiv,
    alice_history: RefCell<Vec<oasis_trust::AuditCertificate>>,
    mallory_history: RefCell<Vec<oasis_trust::AuditCertificate>>,
    forged: RefCell<Vec<oasis_trust::AuditCertificate>>,
    fabricated: RefCell<Vec<oasis_trust::AuditCertificate>>,
}

impl TrustWorld {
    fn new() -> Self {
        Self {
            honest: CivNotary::new("civ-hospital"),
            rogue: RogueCiv::new("civ-login"),
            alice_history: RefCell::new(Vec::new()),
            mallory_history: RefCell::new(Vec::new()),
            forged: RefCell::new(Vec::new()),
            fabricated: RefCell::new(Vec::new()),
        }
    }
}

/// The scripted fault schedule a two-domain regime installs, as
/// `(tick, fault)` pairs — the unit of reduction for the shrink loop
/// ([`crate::shrink`]).
pub(crate) fn two_domain_schedule(fault: FaultRegime) -> Vec<(u64, Fault)> {
    let mut plan = FaultPlan::new();
    script_faults(&mut plan, fault);
    plan.schedule_snapshot()
}

/// Runs one two-domain cell. `seed` is the already-derived per-scenario
/// seed; `perturb` is only used by the harness's divergence meta-test.
pub(crate) fn run_two_domain(
    scenario: Scenario,
    seed: u64,
    perturb: Option<Perturbation>,
) -> ScenarioRun {
    run_two_domain_scheduled(scenario, seed, perturb, None)
}

/// [`run_two_domain`] with an explicit fault schedule overriding the
/// regime's scripted one — the shrink loop's entry point: it replays
/// the cell under ddmin-reduced sub-schedules to find the minimal one
/// that still fails.
pub(crate) fn run_two_domain_scheduled(
    scenario: Scenario,
    seed: u64,
    perturb: Option<Perturbation>,
    schedule: Option<Vec<(u64, Fault)>>,
) -> ScenarioRun {
    let workload = scenario.workload;
    let regime = scenario.fault;

    // --- World -------------------------------------------------------
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1).unwrap();
    for i in 0..PRINCIPALS {
        facts
            .insert("password_ok", vec![Value::id(format!("dr-{i}"))])
            .unwrap();
    }

    let login = OasisService::new(
        ServiceConfig::new("login").with_revocation_retention(64),
        Arc::clone(&facts),
    );
    login
        .define_role("logged_in", &[("user", ValueType::Id)], true)
        .unwrap();
    login
        .add_activation_rule(
            "logged_in",
            vec![Term::var("U")],
            vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();

    let hospital_journal = MemBackend::new();
    let hospital_snapshot = MemBackend::new();
    let store = ServiceJournal::open(
        Arc::new(hospital_journal.clone()),
        Arc::new(hospital_snapshot.clone()),
    )
    .expect("hospital journal opens");
    let hospital = OasisService::new(
        ServiceConfig::new("hospital")
            .with_journal(store)
            .with_validation_cache(5)
            .with_heartbeats(HeartbeatConfig {
                dead_after: 3,
                grace: 10,
                policy: DegradationPolicy::FailSafe,
            }),
        Arc::clone(&facts),
    );
    hospital
        .define_role("doctor_on_duty", &[("doctor", ValueType::Id)], false)
        .unwrap();
    hospital
        .add_activation_rule(
            "doctor_on_duty",
            vec![Term::var("D")],
            vec![Atom::prereq_at("login", "logged_in", vec![Term::var("D")])],
            vec![0],
        )
        .unwrap();

    // Steady cells run fully instrumented: a live metrics registry with
    // span recording on. Core paths record only virtual-time values, so
    // the end-of-run snapshot (embedded in the trace below) must replay
    // byte-identically — any wall-clock leak fails parity.
    let obs = (workload == Workload::Steady)
        .then(|| Arc::new(oasis_obs::Registry::with_span_recording()));
    if let Some(reg) = &obs {
        login.set_obs(Arc::clone(reg) as Arc<dyn oasis_obs::Recorder>);
        hospital.set_obs(Arc::clone(reg) as Arc<dyn oasis_obs::Recorder>);
    }

    let registry = Arc::new(LocalRegistry::new());
    registry.register(&login);
    let gate = Arc::new(Gate {
        inner: registry,
        up: AtomicBool::new(true),
    });
    let resilient = Arc::new(
        ResilientValidator::new(gate.clone() as Arc<dyn CredentialValidator>)
            .with_retry(RetryPolicy::immediate(2))
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown_ticks: 30,
            }),
    );
    hospital.set_validator(resilient.clone());
    hospital.watch_issuer(&login_id(), 10, 0);

    // Role state at t=0: every principal logged in and on duty, plus the
    // throwaway sessions the revocation schedules burn through.
    let mut login_certs: Vec<Rmc> = Vec::with_capacity(PRINCIPALS);
    let mut duty_certs = Vec::with_capacity(PRINCIPALS);
    for i in 0..PRINCIPALS {
        let rmc = login
            .activate_role(
                &who(i),
                &RoleName::new("logged_in"),
                &[Value::id(format!("dr-{i}"))],
                &[],
                &EnvContext::new(0),
            )
            .unwrap();
        let duty = hospital
            .activate_role(
                &who(i),
                &RoleName::new("doctor_on_duty"),
                &[Value::id(format!("dr-{i}"))],
                &[Credential::Rmc(rmc.clone())],
                &EnvContext::new(0),
            )
            .unwrap();
        login_certs.push(rmc);
        duty_certs.push(duty.crr.cert_id);
    }
    let throwaways: Vec<Rmc> = (0..THROWAWAYS)
        .map(|i| {
            login
                .activate_role(
                    &who(i % PRINCIPALS),
                    &RoleName::new("logged_in"),
                    &[Value::id(format!("dr-{}", i % PRINCIPALS))],
                    &[],
                    &EnvContext::new(1),
                )
                .unwrap()
        })
        .collect();
    // Revocation target table: `(credential, presenter index)` so the
    // post-run sweep can re-validate every revoked certificate.
    let rev_targets: Vec<(Rmc, usize)> = throwaways
        .iter()
        .enumerate()
        .map(|(i, rmc)| (rmc.clone(), i % PRINCIPALS))
        .chain([(login_certs[4].clone(), 4), (login_certs[5].clone(), 5)])
        .collect();

    // --- Admission control (virtual clock) ---------------------------
    let clock = Arc::new(ManualClock::new(0));
    let mut hosp_cfg = OverloadConfig::default();
    *hosp_cfg.lane_mut(Lane::Validation) = LaneConfig::fixed(2, 16, 1_000);
    let ctrl_hosp = AdmissionController::with_clock(hosp_cfg, Arc::clone(&clock) as Arc<dyn Clock>);
    let mut login_cfg = OverloadConfig::default();
    *login_cfg.lane_mut(Lane::Control) = LaneConfig::fixed(2, 256, 1_000);
    let ctrl_login =
        AdmissionController::with_clock(login_cfg, Arc::clone(&clock) as Arc<dyn Clock>);

    // --- Simulated network, faults, trust ----------------------------
    let mut sim = Simulation::new(seed);
    let net = Rc::new(RefCell::new(SimNet::new(LinkConfig {
        latency: Latency::Constant(1),
        loss: 0.03,
        duplicate: 0.05,
        jitter: 2,
    })));
    let plan = Rc::new(RefCell::new(match schedule {
        Some(schedule) => FaultPlan::from_schedule(schedule),
        None => {
            let mut plan = FaultPlan::new();
            script_faults(&mut plan, regime);
            plan
        }
    }));

    let trust = Rc::new(TrustWorld::new());
    let trace = Trace::new();
    let metrics = Rc::new(RefCell::new(Metrics::default()));
    let crashed = Rc::new(Cell::new(false));
    let partitioned = Rc::new(Cell::new(false));
    let pending_v = Rc::new(RefCell::new(Vec::<PendingReq>::new()));
    let running_v = Rc::new(RefCell::new(Vec::<RunningReq>::new()));
    let pending_r = Rc::new(RefCell::new(Vec::<PendingReq>::new()));
    let running_r = Rc::new(RefCell::new(Vec::<RunningReq>::new()));
    let deferred = Rc::new(RefCell::new(Vec::<usize>::new()));
    // Issuer-side revocation execution order (cert ids); index+1 is the
    // retained-ring topic sequence number.
    let executed = Rc::new(RefCell::new(Vec::<u64>::new()));
    // Tick each issuer revocation was *applied* at the hospital.
    let applied_at = Rc::new(RefCell::new(BTreeMap::<u64, u64>::new()));

    trace.log_kv(
        0,
        "scenario start",
        &[
            ("category", TraceValue::from(scenario.category().key())),
            ("fault", TraceValue::from(regime.key())),
            ("seed", TraceValue::from(seed)),
            ("topology", TraceValue::from(scenario.topology.key())),
            ("workload", TraceValue::from(workload.key())),
        ],
    );

    let rev_schedule = revocation_arrivals(workload, perturb);
    let mut next_validation = 0usize;
    for t in 1..=END {
        // This tick's arrivals, decided up front so the offered load is
        // a pure function of the scenario (the seed only drives the
        // link and fault timing interactions).
        let mut arrivals: Vec<Work> = Vec::new();
        for _ in 0..validations_at(workload, t) {
            arrivals.push(Work::Validate(next_validation % PRINCIPALS));
            next_validation += 1;
        }
        for (tick, target) in &rev_schedule {
            if *tick == t {
                arrivals.push(Work::Revoke(*target));
            }
        }

        let login = Arc::clone(&login);
        let hospital = Arc::clone(&hospital);
        let resilient = Arc::clone(&resilient);
        let gate = Arc::clone(&gate);
        let clock = Arc::clone(&clock);
        let ctrl_hosp = Arc::clone(&ctrl_hosp);
        let ctrl_login = Arc::clone(&ctrl_login);
        let net = Rc::clone(&net);
        let plan = Rc::clone(&plan);
        let trust = Rc::clone(&trust);
        let trace = trace.clone();
        let metrics = Rc::clone(&metrics);
        let crashed = Rc::clone(&crashed);
        let partitioned = Rc::clone(&partitioned);
        let pending_v = Rc::clone(&pending_v);
        let running_v = Rc::clone(&running_v);
        let pending_r = Rc::clone(&pending_r);
        let running_r = Rc::clone(&running_r);
        let deferred = Rc::clone(&deferred);
        let executed = Rc::clone(&executed);
        let applied_at = Rc::clone(&applied_at);
        let login_certs = login_certs.clone();
        let rev_targets = rev_targets.clone();
        let obs = obs.clone();

        sim.schedule_at(t, move |sim| {
            let now = sim.now();
            clock.set(now);

            // 1. Faults due this tick.
            for fault in plan.borrow_mut().apply_due(now, &mut net.borrow_mut()) {
                trace.log_kv(
                    now,
                    "fault",
                    &[("detail", TraceValue::from(format!("{fault:?}")))],
                );
                match &fault {
                    Fault::Crash { .. } => crashed.set(true),
                    Fault::Recover { .. } => crashed.set(false),
                    Fault::Partition { .. } => partitioned.set(true),
                    Fault::Heal { .. } => partitioned.set(false),
                    Fault::ByzantineCiv { .. } => {
                        trust.rogue.go_byzantine();
                        trace.log(now, "civ-login turned byzantine and repudiated its history");
                    }
                    _ => {}
                }
                gate.up
                    .store(!(crashed.get() || partitioned.get()), Ordering::SeqCst);
            }
            let skew = plan.borrow().clock_skew("login");
            let issuer_now = (now as i64 + skew).max(0) as u64;

            // 2. Completions: validation windows that end this tick run
            // the engine call against the hospital.
            let finish = |running: &Rc<RefCell<Vec<RunningReq>>>| -> Vec<RunningReq> {
                let mut run = running.borrow_mut();
                let mut done = Vec::new();
                let mut i = 0;
                while i < run.len() {
                    if run[i].finish_at <= now {
                        done.push(run.remove(i));
                    } else {
                        i += 1;
                    }
                }
                done
            };
            for mut req in finish(&running_v) {
                if let Work::Validate(i) = req.work {
                    let cred = Credential::Rmc(login_certs[i].clone());
                    let cert = login_certs[i].crr.cert_id.0;
                    let res = hospital.validate_credential(&cred, &who(i), now);
                    let mut m = metrics.borrow_mut();
                    if res.is_ok() {
                        m.validations_ok += 1;
                        if applied_at.borrow().get(&cert).is_some_and(|&at| at < now) {
                            m.stale_violations.push(format!(
                                "cert {cert} validated Ok at t{now} after its revocation \
                                 was applied at t{}",
                                applied_at.borrow()[&cert]
                            ));
                            drop(m);
                            trace.log_kv(
                                now,
                                "STALE ACCEPTANCE",
                                &[("cert", TraceValue::from(cert))],
                            );
                        }
                    } else {
                        m.validations_refused += 1;
                    }
                }
                drop(req.permit.take());
            }
            // ...and revocation windows execute at the (possibly skewed,
            // possibly crashed) issuer.
            for mut req in finish(&running_r) {
                if let Work::Revoke(target) = req.work {
                    if crashed.get() {
                        deferred.borrow_mut().push(target);
                        metrics.borrow_mut().revocations_deferred += 1;
                        trace.log_kv(
                            now,
                            "revocation deferred (issuer down)",
                            &[("target", TraceValue::from(target))],
                        );
                    } else {
                        let cert = rev_targets[target].0.crr.cert_id;
                        // Instrumented cells run the revocation under a
                        // deterministic causal root (trace id = cert id),
                        // so svc.revoke and the bus cascade emit spans.
                        let _root = obs.as_ref().map(|_| {
                            oasis_obs::scope(oasis_obs::TraceCtx {
                                trace_id: cert.0,
                                parent_span: 0,
                                hop: 0,
                            })
                        });
                        login.revoke_certificate(cert, "conformance revocation", issuer_now);
                        executed.borrow_mut().push(cert.0);
                        trace.log_kv(
                            now,
                            "revocation executed",
                            &[
                                ("cert", TraceValue::from(cert.0)),
                                ("issuer_now", TraceValue::from(issuer_now)),
                                ("seq", TraceValue::from(executed.borrow().len())),
                                ("target", TraceValue::from(target)),
                            ],
                        );
                    }
                }
                drop(req.permit.take());
            }

            // 3. Queue polls: grants start an execution window, expired
            // tickets die in place (revocations retry with a fresh
            // deadline — the client's retry loop).
            {
                let mut pend = pending_v.borrow_mut();
                let mut i = 0;
                while i < pend.len() {
                    match ctrl_hosp.poll(&pend[i].ticket) {
                        PollOutcome::Waiting => i += 1,
                        PollOutcome::Ready(permit) => {
                            let req = pend.remove(i);
                            if req.deadline.expired(now) {
                                metrics.borrow_mut().started_after_deadline += 1;
                            }
                            running_v.borrow_mut().push(RunningReq {
                                finish_at: now + SERVICE_TICKS,
                                permit: Some(permit),
                                work: req.work,
                            });
                        }
                        PollOutcome::Expired => {
                            pend.remove(i);
                            metrics.borrow_mut().validations_expired += 1;
                        }
                    }
                }
            }
            if !crashed.get() {
                let mut pend = pending_r.borrow_mut();
                let mut i = 0;
                while i < pend.len() {
                    match ctrl_login.poll(&pend[i].ticket) {
                        PollOutcome::Waiting => i += 1,
                        PollOutcome::Ready(permit) => {
                            let req = pend.remove(i);
                            if req.deadline.expired(now) {
                                metrics.borrow_mut().started_after_deadline += 1;
                            }
                            running_r.borrow_mut().push(RunningReq {
                                finish_at: now + SERVICE_TICKS,
                                permit: Some(permit),
                                work: req.work,
                            });
                        }
                        PollOutcome::Expired => {
                            let req = pend.remove(i);
                            if let Work::Revoke(target) = req.work {
                                deferred.borrow_mut().push(target);
                                metrics.borrow_mut().revocation_retries += 1;
                                trace.log_kv(
                                    now,
                                    "revocation ticket expired, retrying",
                                    &[("target", TraceValue::from(target))],
                                );
                            }
                        }
                    }
                }
            }

            // 4. Arrivals. Deferred revocations re-arrive as soon as
            // the issuer is back.
            let mut revs: Vec<usize> = Vec::new();
            if !crashed.get() {
                revs.append(&mut deferred.borrow_mut());
            }
            for work in arrivals {
                match work {
                    Work::Validate(i) => {
                        let deadline = Deadline::from_budget(now, Some(VALIDATION_BUDGET));
                        match ctrl_hosp.submit(Lane::Validation, deadline) {
                            Submission::Admitted(permit) => {
                                running_v.borrow_mut().push(RunningReq {
                                    finish_at: now + SERVICE_TICKS,
                                    permit: Some(permit),
                                    work: Work::Validate(i),
                                })
                            }
                            Submission::Queued(ticket) => pending_v.borrow_mut().push(PendingReq {
                                ticket,
                                deadline,
                                work: Work::Validate(i),
                            }),
                            Submission::Shed { .. } => {
                                metrics.borrow_mut().validations_shed += 1;
                            }
                            Submission::Expired => {
                                metrics.borrow_mut().validations_expired += 1;
                            }
                        }
                    }
                    Work::Revoke(target) => revs.push(target),
                }
            }
            for target in revs {
                if crashed.get() {
                    deferred.borrow_mut().push(target);
                    metrics.borrow_mut().revocations_deferred += 1;
                    trace.log_kv(
                        now,
                        "revocation deferred (issuer down)",
                        &[("target", TraceValue::from(target))],
                    );
                    continue;
                }
                let deadline = Deadline::from_budget(now, Some(REVOCATION_BUDGET));
                match ctrl_login.submit(Lane::Control, deadline) {
                    Submission::Admitted(permit) => {
                        running_r.borrow_mut().push(RunningReq {
                            finish_at: now + SERVICE_TICKS,
                            permit: Some(permit),
                            work: Work::Revoke(target),
                        });
                        trace.log_kv(
                            now,
                            "revocation admitted",
                            &[("target", TraceValue::from(target))],
                        );
                    }
                    Submission::Queued(ticket) => pending_r.borrow_mut().push(PendingReq {
                        ticket,
                        deadline,
                        work: Work::Revoke(target),
                    }),
                    Submission::Shed { .. } | Submission::Expired => {
                        deferred.borrow_mut().push(target);
                        metrics.borrow_mut().revocation_retries += 1;
                        trace.log_kv(
                            now,
                            "revocation shed, retrying",
                            &[("target", TraceValue::from(target))],
                        );
                    }
                }
            }

            // 5. Heartbeats: login beats every 10 ticks over the link.
            if now.is_multiple_of(10) && !plan.borrow().heartbeats_paused("login") {
                let hospital = Arc::clone(&hospital);
                net.borrow_mut().send(sim, "login", "hospital", move |sim| {
                    hospital.issuer_beat(&login_id(), sim.now());
                });
            }

            // 6. Revocation resync: every 10 ticks the durable hospital
            // pulls the issuer's retained ring past its watermark — the
            // wire path's catch_up over the faulty link. A crashed
            // issuer or a cut link drops the pull; sequence numbers are
            // the issuer's own, so nothing can fabricate a gap.
            if now % 10 == 3 {
                let login = Arc::clone(&login);
                let hospital = Arc::clone(&hospital);
                let applied_at = Rc::clone(&applied_at);
                let trace = trace.clone();
                net.borrow_mut().send(sim, "hospital", "login", move |sim| {
                    let at = sim.now();
                    let wm = hospital.watermark_for(TOPIC);
                    let (events, complete) = login.replay_retained(TOPIC, wm);
                    if events.is_empty() {
                        return;
                    }
                    let rep = hospital.catch_up_with(TOPIC, &events, complete, at);
                    for ev in &events {
                        applied_at
                            .borrow_mut()
                            .entry(ev.payload.crr.cert_id.0)
                            .or_insert(at);
                    }
                    trace.log_kv(
                        at,
                        "resync applied",
                        &[
                            ("applied", TraceValue::from(rep.applied)),
                            ("watermark", TraceValue::from(hospital.watermark_for(TOPIC))),
                        ],
                    );
                });
            }

            // 7. Heartbeat sweeper: the hospital's maintenance tick.
            if now.is_multiple_of(5) {
                let mut m = metrics.borrow_mut();
                if m.dead_seen.is_none()
                    && hospital.issuer_health(&login_id(), now) == Some(SourceHealth::Dead)
                {
                    m.dead_seen = Some(now);
                    drop(m);
                    trace.log(now, "issuer login observed dead");
                    m = metrics.borrow_mut();
                }
                let revoked = hospital.tick_heartbeats(now);
                if !revoked.is_empty() {
                    m.degraded_total += revoked.len() as u64;
                    drop(m);
                    trace.log_kv(
                        now,
                        "degraded dependent certs",
                        &[("count", TraceValue::from(revoked.len()))],
                    );
                }
            }

            // 8. Trust-layer interactions (Byzantine cells only).
            if regime == FaultRegime::ByzantineCiv {
                if now.is_multiple_of(10) && (10..=280).contains(&now) {
                    let cert = trust.honest.notarise(
                        &who(0),
                        &hospital_id(),
                        "treatment",
                        Outcome::Fulfilled,
                        now,
                    );
                    trust.alice_history.borrow_mut().push(cert);
                }
                if now.is_multiple_of(10) && (10..=90).contains(&now) {
                    let outcome = if (now / 10) % 2 == 0 {
                        Outcome::Fulfilled
                    } else {
                        Outcome::ClientDefaulted
                    };
                    let cert = trust.rogue.notarise(
                        &PrincipalId::new("mallory"),
                        &hospital_id(),
                        "visit",
                        outcome,
                        now,
                    );
                    trust.mallory_history.borrow_mut().push(cert);
                }
                if now == 110 {
                    for _ in 0..3 {
                        if let Some(cert) = trust.rogue.forge_as(
                            &ServiceId::new("civ-hospital"),
                            &PrincipalId::new("mallory"),
                            &hospital_id(),
                            "forged-treatment",
                            Outcome::Fulfilled,
                            now,
                        ) {
                            trust.forged.borrow_mut().push(cert);
                        }
                    }
                    let mut fab = trust.rogue.fabricate_history(
                        &PrincipalId::new("mallory"),
                        &hospital_id(),
                        10,
                        now,
                    );
                    trust.fabricated.borrow_mut().append(&mut fab);
                    let (w, f, fab_n) = trust.rogue.attack_stats();
                    trace.log_kv(
                        now,
                        "byzantine attack wave",
                        &[
                            ("fabricated", TraceValue::from(fab_n)),
                            ("forged", TraceValue::from(f)),
                            ("whitewashed", TraceValue::from(w)),
                        ],
                    );
                }
                if now.is_multiple_of(10) && (120..=200).contains(&now) {
                    // Mallory keeps defaulting; the rogue CIV whitewashes.
                    let cert = trust.rogue.notarise(
                        &PrincipalId::new("mallory"),
                        &hospital_id(),
                        "visit",
                        Outcome::ClientDefaulted,
                        now,
                    );
                    trust.mallory_history.borrow_mut().push(cert);
                }
            }

            // 9. Settle probe: after every fault window closes, the
            // first healthy observation validates fresh authority and
            // checks the breaker closed.
            if (PROBE_FROM..=PROBE_TO).contains(&now)
                && metrics.borrow().settled.is_none()
                && hospital.issuer_health(&login_id(), now) == Some(SourceHealth::Healthy)
            {
                let cred = Credential::Rmc(login_certs[0].clone());
                let probe_ok = hospital.validate_credential(&cred, &who(0), now).is_ok();
                let breaker = resilient.breaker_state(&login_id()).to_string();
                metrics.borrow_mut().settled = Some((now, probe_ok, breaker.clone()));
                trace.log_kv(
                    now,
                    "settled",
                    &[
                        ("breaker", TraceValue::from(breaker)),
                        ("probe_ok", TraceValue::from(probe_ok)),
                    ],
                );
            }

            // 10. Final catch-up: by now every fault window is healed,
            // so this pull is direct (the response cannot be lost) and
            // must close any remaining gap.
            if now == FINAL_CATCHUP {
                let wm = hospital.watermark_for(TOPIC);
                let (events, complete) = login.replay_retained(TOPIC, wm);
                let rep = hospital.catch_up_with(TOPIC, &events, complete, now);
                for ev in &events {
                    applied_at
                        .borrow_mut()
                        .entry(ev.payload.crr.cert_id.0)
                        .or_insert(now);
                }
                let after = hospital.watermark_for(TOPIC);
                metrics.borrow_mut().final_catchup = Some((rep.complete, rep.applied, after));
                trace.log_kv(
                    now,
                    "final catch-up",
                    &[
                        ("applied", TraceValue::from(rep.applied)),
                        ("complete", TraceValue::from(rep.complete)),
                        ("watermark", TraceValue::from(after)),
                    ],
                );
            }

            // 11. End-of-run stats snapshot, canonical and sorted.
            if now == END {
                let m = metrics.borrow();
                let (sent, dropped) = net.borrow().stats();
                trace.log_kv(
                    now,
                    "final state",
                    &[
                        ("bus", TraceValue::Raw(hospital.bus().stats().trace_json())),
                        (
                            "ctrl_login",
                            TraceValue::Raw(ctrl_login.stats().trace_json()),
                        ),
                        (
                            "ctrl_validation",
                            TraceValue::Raw(ctrl_hosp.stats().trace_json()),
                        ),
                        (
                            "degradation",
                            TraceValue::Raw(
                                hospital
                                    .degradation_stats()
                                    .map(|d| d.trace_json())
                                    .unwrap_or_else(|| "null".into()),
                            ),
                        ),
                        ("net_dropped", TraceValue::from(dropped)),
                        (
                            "net_duplicated",
                            TraceValue::from(net.borrow().duplicated()),
                        ),
                        ("net_sent", TraceValue::from(sent)),
                        ("resilient", TraceValue::Raw(resilient.stats().trace_json())),
                        (
                            "revocations_executed",
                            TraceValue::from(executed.borrow().len()),
                        ),
                        ("validations_ok", TraceValue::from(m.validations_ok)),
                        (
                            "validations_refused",
                            TraceValue::from(m.validations_refused),
                        ),
                        ("validations_shed", TraceValue::from(m.validations_shed)),
                    ],
                );
                if let Some(reg) = &obs {
                    let snapshot = oasis_obs::Recorder::snapshot_json(
                        reg.as_ref() as &dyn oasis_obs::Recorder
                    )
                    .unwrap_or_else(|| "null".to_string());
                    let spans =
                        oasis_obs::Recorder::spans(reg.as_ref() as &dyn oasis_obs::Recorder)
                            .lines();
                    trace.log_kv(
                        now,
                        "metrics snapshot",
                        &[
                            ("snapshot", TraceValue::Raw(snapshot)),
                            ("spans", TraceValue::Raw(format!("[{}]", spans.join(",")))),
                        ],
                    );
                }
            }
        });
    }

    sim.run();

    // --- Invariant report ---------------------------------------------
    let mut report = InvariantReport::new();
    let m = metrics.borrow();
    let executed = executed.borrow();
    let n_executed = executed.len() as u64;

    report.record(
        NO_POST_DEADLINE_EXECUTION,
        m.started_after_deadline == 0,
        format!(
            "{} late starts ({} validations expired in queue, {} revocation retries)",
            m.started_after_deadline, m.validations_expired, m.revocation_retries
        ),
    );

    // Post-run sweep: after the final catch-up, every revoked
    // certificate must be refused at the hospital.
    let mut post_catchup_accepted: Vec<u64> = Vec::new();
    for (rmc, presenter) in &rev_targets {
        if !executed.contains(&rmc.crr.cert_id.0) {
            continue;
        }
        if hospital
            .validate_credential(&Credential::Rmc(rmc.clone()), &who(*presenter), END)
            .is_ok()
        {
            post_catchup_accepted.push(rmc.crr.cert_id.0);
        }
    }
    report.record(
        NO_STALE_CERT_ACCEPTANCE,
        m.stale_violations.is_empty() && post_catchup_accepted.is_empty(),
        if m.stale_violations.is_empty() && post_catchup_accepted.is_empty() {
            format!(
                "0 stale acceptances across {} served validations; all {} revoked certs \
                 refused after catch-up",
                m.validations_ok + m.validations_refused,
                n_executed
            )
        } else {
            format!(
                "in-run violations: {:?}; accepted after catch-up: {post_catchup_accepted:?}",
                m.stale_violations
            )
        },
    );

    let (ring, ring_complete) = login.replay_retained(TOPIC, 0);
    let ring_seqs: Vec<u64> = ring.iter().map(|e| e.topic_seq).collect();
    let contiguous = ring_seqs == (1..=n_executed).collect::<Vec<u64>>();
    let (catch_complete, _catch_applied, final_wm) = m.final_catchup.unwrap_or((false, 0, 0));
    report.record(
        GAP_FREE_RECOVERY,
        ring_complete && contiguous && catch_complete && final_wm == n_executed,
        format!(
            "ring complete={ring_complete} seqs={ring_seqs:?}; final catch-up \
             complete={catch_complete} watermark={final_wm}/{n_executed}"
        ),
    );

    let applied = applied_at.borrow();
    let missing_apply: Vec<u64> = executed
        .iter()
        .filter(|cert| !applied.contains_key(cert))
        .copied()
        .collect();
    let mut duty_not_collapsed: Vec<usize> = Vec::new();
    if scenario.workload.storms() {
        for i in [4usize, 5] {
            let collapsed = hospital
                .record(duty_certs[i])
                .map(|r| matches!(r.status, CredStatus::Revoked { .. }))
                .unwrap_or(false);
            if !collapsed {
                duty_not_collapsed.push(i);
            }
        }
    }
    report.record(
        NO_ACKED_EVENT_LOST,
        missing_apply.is_empty() && duty_not_collapsed.is_empty() && final_wm == n_executed,
        if n_executed == 0 {
            "vacuous: workload revoked nothing, and nothing was conjured".to_string()
        } else {
            format!(
                "{n_executed}/{n_executed} revocations applied at subscriber \
                 (missing: {missing_apply:?}); duty cascade pending for {duty_not_collapsed:?}"
            )
        },
    );

    let ds = hospital.degradation_stats().expect("heartbeats configured");
    let (settle_tick, probe_ok, breaker) =
        m.settled
            .clone()
            .unwrap_or((0, false, "never-settled".to_string()));
    let queues_drained = pending_v.borrow().is_empty()
        && running_v.borrow().is_empty()
        && pending_r.borrow().is_empty()
        && running_r.borrow().is_empty()
        && deferred.borrow().is_empty();
    let regime_consistent = if regime.leaves_issuer_reachable() {
        // Transient false suspicion is the failure detector's prerogative
        // over a lossy link (consecutive heartbeat losses); degrading
        // dependent certs without a real outage would not be — the grace
        // period exists exactly to absorb the false positives.
        ds.degraded_issuers == 0
    } else if regime.causes_outage() {
        m.dead_seen.is_some() && ds.issuer_recoveries >= 1
    } else {
        true // flapping: death observation is timing-marginal by design
    };
    report.record(
        DEGRADATION_CONSISTENT,
        ds.stale_served == 0
            && m.settled.is_some()
            && probe_ok
            && breaker == "closed"
            && queues_drained
            && regime_consistent,
        format!(
            "stale_served={} settled_at=t{settle_tick} probe_ok={probe_ok} breaker={breaker} \
             queues_drained={queues_drained} degraded_issuers={} recoveries={} dead_seen={:?}",
            ds.stale_served, ds.degraded_issuers, ds.issuer_recoveries, m.dead_seen
        ),
    );

    if regime == FaultRegime::ByzantineCiv {
        let rogue_id = ServiceId::new("civ-login");
        let forged = trust.forged.borrow();
        let forged_rejected =
            !forged.is_empty() && forged.iter().all(|c| !trust.honest.validate(c));
        let validate_any = |c: &oasis_trust::AuditCertificate| {
            if c.civ == rogue_id {
                trust.rogue.validate(c)
            } else {
                trust.honest.validate(c)
            }
        };
        let weight = |civ: &ServiceId| if *civ == rogue_id { 0.05 } else { 1.0 };
        let assessor = TrustAssessor::new(1_000);
        let policy = RiskPolicy::default();

        let mallory_evidence: Vec<oasis_trust::AuditCertificate> = trust
            .mallory_history
            .borrow()
            .iter()
            .chain(trust.fabricated.borrow().iter())
            .chain(forged.iter())
            .filter(|c| validate_any(c))
            .cloned()
            .collect();
        let mallory_score =
            assessor.score_client(&mallory_evidence, &PrincipalId::new("mallory"), END, weight);
        let mallory_decision = policy.decide(mallory_score);

        let alice_evidence: Vec<oasis_trust::AuditCertificate> = trust
            .alice_history
            .borrow()
            .iter()
            .filter(|c| validate_any(c))
            .cloned()
            .collect();
        let alice_score = assessor.score_client(&alice_evidence, &who(0), END, weight);
        let alice_decision = policy.decide(alice_score);

        trace.log_kv(
            END,
            "trust verdict",
            &[
                (
                    "alice",
                    TraceValue::from(format!(
                        "{alice_decision:?} ({:.4}/{:.2})",
                        alice_score.expectation, alice_score.evidence
                    )),
                ),
                ("forged_rejected", TraceValue::from(forged_rejected)),
                (
                    "mallory",
                    TraceValue::from(format!(
                        "{mallory_decision:?} ({:.4}/{:.2})",
                        mallory_score.expectation, mallory_score.evidence
                    )),
                ),
            ],
        );
        report.record(
            BYZANTINE_EVIDENCE_REJECTED,
            forged_rejected
                && mallory_decision != Decision::Proceed
                && alice_decision == Decision::Proceed,
            format!(
                "forged_rejected={forged_rejected}; mallory={mallory_decision:?} \
                 (expectation {:.4}, evidence {:.2}); alice={alice_decision:?} \
                 (expectation {:.4}, evidence {:.2})",
                mallory_score.expectation,
                mallory_score.evidence,
                alice_score.expectation,
                alice_score.evidence
            ),
        );
    } else {
        report.record(
            BYZANTINE_EVIDENCE_REJECTED,
            true,
            "n/a: no Byzantine CIV in this cell",
        );
    }

    report.record(
        OVERLOAD_BACKPRESSURE,
        if workload.floods() {
            m.validations_shed > 0 && m.validations_ok > 0
        } else {
            m.validations_shed == 0
        },
        format!(
            "shed={} answered_ok={} refused={} (flooding={})",
            m.validations_shed,
            m.validations_ok,
            m.validations_refused,
            workload.floods()
        ),
    );

    if let Some(reg) = &obs {
        let snap1 = oasis_obs::Recorder::snapshot_json(reg.as_ref() as &dyn oasis_obs::Recorder)
            .unwrap_or_else(|| "null".to_string());
        let snap2 = oasis_obs::Recorder::snapshot_json(reg.as_ref() as &dyn oasis_obs::Recorder)
            .unwrap_or_else(|| "null".to_string());
        let spans = oasis_obs::Recorder::spans(reg.as_ref() as &dyn oasis_obs::Recorder).len();
        report.record(
            METRICS_DETERMINISTIC,
            snap1 == snap2 && snap1.starts_with("{\"counters\":") && spans > 0,
            format!(
                "snapshot stable over double render ({} bytes), {spans} spans captured",
                snap1.len()
            ),
        );
    }

    drop(m);
    drop(executed);
    drop(applied);
    ScenarioRun {
        scenario,
        seed,
        trace: trace.lines(),
        report,
    }
}
