//! A genuinely networked OASIS deployment: the hospital service behind a
//! TCP socket, a doctor's client across the connection, and a *second*
//! service validating the doctor's certificate by network callback to the
//! issuer — the engineering of Sect. 4 made concrete.
//!
//! Run with `cargo run --example networked`.

use std::sync::Arc;

use oasis::prelude::*;
use oasis::wire::{WireClient, WireServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Server side ------------------------------------------------------
    let facts = Arc::new(FactStore::new());
    facts.define("password_ok", 1)?;
    facts.insert("password_ok", vec![Value::id("dr-jones")])?;

    let hospital = OasisService::new(ServiceConfig::new("hospital"), Arc::clone(&facts));
    hospital.define_role("logged_in", &[("u", ValueType::Id)], true)?;
    hospital.add_activation_rule(
        "logged_in",
        vec![Term::var("U")],
        vec![Atom::env_fact("password_ok", vec![Term::var("U")])],
        vec![0],
    )?;
    hospital.add_invocation_rule(
        "list_patients",
        vec![],
        vec![Atom::prereq("logged_in", vec![Term::Wildcard])],
    );

    let server = WireServer::bind(Arc::clone(&hospital), "127.0.0.1:0")?;
    let addr = server.serve_in_background()?;
    println!("hospital serving on {addr}");

    // --- The doctor's client -----------------------------------------------
    let dr = PrincipalId::new("dr-jones");
    let mut client = WireClient::connect(addr)?;
    client.ping()?;

    let rmc = client.activate(&dr, "logged_in", vec![Value::id("dr-jones")], vec![], 1)?;
    println!("activated over TCP: {rmc}");

    let used = client.invoke(
        &dr,
        "list_patients",
        vec![],
        vec![Credential::Rmc(rmc.clone())],
        2,
    )?;
    println!("list_patients authorised by {used:?}");

    // --- A second, OASIS-aware service validating by callback ----------------
    // The pharmacy did not issue the RMC; it phones the hospital (the CRR
    // names the issuer) to validate, just as the architecture prescribes.
    let mut pharmacy_view = WireClient::connect(addr)?;
    pharmacy_view.validate(&Credential::Rmc(rmc.clone()), &dr, 3)?;
    println!("pharmacy validated the certificate by callback");

    // A thief replaying the certificate fails the callback: the MAC binds
    // the principal id.
    let thief = PrincipalId::new("mallory");
    let stolen = pharmacy_view.validate(&Credential::Rmc(rmc.clone()), &thief, 4);
    println!("thief's callback: {}", stolen.unwrap_err());

    // Logout revokes server-side; the callback immediately reflects it.
    client.revoke(rmc.crr.cert_id.0, "logout", 5)?;
    let after = pharmacy_view.validate(&Credential::Rmc(rmc), &dr, 6);
    println!("after logout: {}", after.unwrap_err());
    Ok(())
}
