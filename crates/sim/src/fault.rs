//! Scripted fault injection for chaos experiments.
//!
//! A [`FaultPlan`] is a deterministic schedule of network and process
//! faults — partitions, crashes, heals, heartbeat pauses — applied to a
//! [`SimNet`] as virtual time advances. Scripting the faults (rather than
//! sampling them) makes chaos runs exactly repeatable and lets a test
//! assert on *when* degradation and recovery must happen.
//!
//! # Crash durability
//!
//! [`Fault::Crash`] models fail-stop: the node's volatile state (record
//! maps, caches, bus subscriptions) is gone, but whatever its
//! durability journal had *acknowledged* survives. The driver models
//! this by dropping the service instance while keeping a cloned handle
//! to its storage backend, then handing the same handle to the
//! restarted instance after [`Fault::Recover`].
//!
//! Real crashes also tear the last disk write. The journal-damage
//! faults ([`Fault::TearJournalTail`], [`Fault::CorruptJournalTail`])
//! script that: they accumulate as [`JournalDamage`] descriptors which
//! the driver drains ([`FaultPlan::take_journal_damage`]) and applies
//! to the crashed node's backend (e.g. `MemBackend::truncate_tail` /
//! `corrupt_tail` in `oasis-store`) *before* restarting it. Recovery
//! must then heal the tail: stop at the last valid record, never
//! panic, never resurrect a record past the damage point.

use std::collections::{HashMap, HashSet};

use crate::net::{NodeId, SimNet};

/// One scripted fault (or its inverse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Cut both directions between two nodes.
    Partition {
        /// One endpoint of the cut.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restore both directions between two nodes.
    Heal {
        /// One endpoint of the healed link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Crash a node: all its traffic drops until [`Fault::Recover`].
    Crash {
        /// The node that goes down.
        node: NodeId,
    },
    /// Bring a crashed node back up.
    Recover {
        /// The node that comes back.
        node: NodeId,
    },
    /// Stop a node's heartbeat emission without touching its traffic —
    /// a wedged process whose sockets still answer. The driver decides
    /// what "paused" means by consulting
    /// [`FaultPlan::heartbeats_paused`].
    PauseHeartbeats {
        /// The node whose beats stop.
        node: NodeId,
    },
    /// Resume a node's heartbeat emission.
    ResumeHeartbeats {
        /// The node whose beats resume.
        node: NodeId,
    },
    /// Chop bytes off the end of a node's durability journal — the torn
    /// final write of a crash mid-append. Accumulates as
    /// [`JournalDamage::TornTail`] for the driver to apply to the
    /// node's storage backend.
    TearJournalTail {
        /// The node whose journal is torn.
        node: NodeId,
        /// How many bytes the torn write loses.
        bytes: u64,
    },
    /// Flip a byte near the end of a node's durability journal — a
    /// partial sector write that completed with garbage. Accumulates as
    /// [`JournalDamage::FlippedByte`].
    CorruptJournalTail {
        /// The node whose journal is corrupted.
        node: NodeId,
        /// Distance of the flipped byte from the end of the journal.
        offset_from_end: u64,
    },
    /// Kill whichever member of `group` is the replication leader at
    /// the moment the fault fires. The plan cannot know the leader at
    /// scripting time (an earlier fault may already have forced a
    /// failover), so this accumulates as a pending kill that the
    /// driver resolves against live cluster state via
    /// [`FaultPlan::take_leader_kills`] and applies itself (e.g.
    /// `LocalMesh::kill` in `oasis-store`).
    KillLeader {
        /// The replication group to decapitate.
        group: Vec<NodeId>,
    },
    /// Cut `node` off from every member of `from` — a one-sided
    /// network partition isolating a single node (the classic
    /// "deposed leader keeps accepting doomed writes" scenario).
    Isolate {
        /// The node being fenced off.
        node: NodeId,
        /// The nodes it can no longer reach.
        from: Vec<NodeId>,
    },
    /// Skew `node`'s wall clock by `offset_ms` relative to virtual
    /// time — a cross-domain NTP drift. Like heartbeat pauses this has
    /// no direct network effect; the driver consults
    /// [`FaultPlan::clock_skew`] when stamping that node's timestamps
    /// (cert issue times, expiry checks). An `offset_ms` of zero clears
    /// the skew.
    ClockSkew {
        /// The node whose clock drifts.
        node: NodeId,
        /// Milliseconds ahead (positive) or behind (negative).
        offset_ms: i64,
    },
    /// Turn `node` — a Certification Instance Vault in the trust layer —
    /// Byzantine: from this tick it repudiates its notarisation history
    /// and emits forged or whitewashed audit certificates. The plan only
    /// tracks membership ([`FaultPlan::is_byzantine`]); the driver flips
    /// the node's `oasis-trust` adapter into Byzantine mode.
    ByzantineCiv {
        /// The CIV that goes rogue.
        node: NodeId,
    },
    /// Make the link between `a` and `b` flap: alternate between
    /// delivering and dropping in runs of `window` calls — the
    /// half-dead cable that keeps interrupting a long transfer. A
    /// `window` of zero steadies the link again. Like [`Fault::KillLeader`]
    /// this is driver-resolved: the plan cannot reach into a replica
    /// mesh, so flaps accumulate for the driver to drain via
    /// [`FaultPlan::take_link_flaps`] and apply (e.g.
    /// `LocalMesh::set_flappy` in `oasis-store`).
    FlappyPeerLink {
        /// One endpoint of the flapping link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Calls per up/down run; zero restores a steady link.
        window: u64,
    },
}

/// Scripted damage to one node's durability journal, drained by the
/// driver via [`FaultPlan::take_journal_damage`] and applied to the
/// node's storage backend before restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalDamage {
    /// The tail of the journal is missing `bytes` bytes.
    TornTail {
        /// How many bytes to truncate from the end.
        bytes: u64,
    },
    /// The byte `offset_from_end` bytes before the end is flipped.
    FlippedByte {
        /// Distance from the end of the journal.
        offset_from_end: u64,
    },
}

/// A time-ordered script of faults to apply to a [`SimNet`].
///
/// Build the plan up front with the scheduling methods, then call
/// [`FaultPlan::apply_due`] from the simulation loop (or a scheduled
/// tick) to enact every fault whose time has come. Applied faults are
/// consumed; the returned list tells the driver what just happened.
///
/// # Example
///
/// ```
/// use oasis_sim::{Fault, FaultPlan, Latency, LinkConfig, SimNet, Simulation};
///
/// let mut sim = Simulation::new(1);
/// let mut net = SimNet::new(LinkConfig::clean(Latency::Constant(1)));
/// let mut plan = FaultPlan::new();
/// plan.partition_at(10, "issuer", "service");
/// plan.heal_at(20, "issuer", "service");
///
/// plan.apply_due(5, &mut net);
/// assert!(!net.is_partitioned("issuer", "service"));
/// plan.apply_due(10, &mut net);
/// assert!(net.is_partitioned("issuer", "service"));
/// plan.apply_due(25, &mut net);
/// assert!(!net.is_partitioned("issuer", "service"));
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// `(tick, fault)` pairs, kept sorted by tick (stable for equal
    /// ticks: insertion order breaks ties, so a same-tick crash+heal
    /// sequence applies in the order it was scripted).
    scheduled: Vec<(u64, Fault)>,
    paused: HashSet<NodeId>,
    journal_damage: Vec<(NodeId, JournalDamage)>,
    leader_kills: Vec<Vec<NodeId>>,
    link_flaps: Vec<(NodeId, NodeId, u64)>,
    skews: HashMap<NodeId, i64>,
    byzantine: HashSet<NodeId>,
}

impl FaultPlan {
    /// An empty plan: nothing ever fails.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an arbitrary fault at `tick`.
    pub fn schedule(&mut self, tick: u64, fault: Fault) {
        let pos = self.scheduled.partition_point(|(t, _)| *t <= tick);
        self.scheduled.insert(pos, (tick, fault));
    }

    /// Schedules a partition between `a` and `b` at `tick`.
    pub fn partition_at(&mut self, tick: u64, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        self.schedule(
            tick,
            Fault::Partition {
                a: a.into(),
                b: b.into(),
            },
        );
    }

    /// Schedules the heal of a partition at `tick`.
    pub fn heal_at(&mut self, tick: u64, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        self.schedule(
            tick,
            Fault::Heal {
                a: a.into(),
                b: b.into(),
            },
        );
    }

    /// Schedules a node crash at `tick`.
    pub fn crash_at(&mut self, tick: u64, node: impl Into<NodeId>) {
        self.schedule(tick, Fault::Crash { node: node.into() });
    }

    /// Schedules a node recovery at `tick`.
    pub fn recover_at(&mut self, tick: u64, node: impl Into<NodeId>) {
        self.schedule(tick, Fault::Recover { node: node.into() });
    }

    /// Schedules a heartbeat pause at `tick`.
    pub fn pause_heartbeats_at(&mut self, tick: u64, node: impl Into<NodeId>) {
        self.schedule(tick, Fault::PauseHeartbeats { node: node.into() });
    }

    /// Schedules a heartbeat resume at `tick`.
    pub fn resume_heartbeats_at(&mut self, tick: u64, node: impl Into<NodeId>) {
        self.schedule(tick, Fault::ResumeHeartbeats { node: node.into() });
    }

    /// Schedules a torn journal tail at `tick` — usually the same tick
    /// as a [`FaultPlan::crash_at`] on the same node.
    pub fn tear_journal_at(&mut self, tick: u64, node: impl Into<NodeId>, bytes: u64) {
        self.schedule(
            tick,
            Fault::TearJournalTail {
                node: node.into(),
                bytes,
            },
        );
    }

    /// Schedules a flipped journal byte at `tick`.
    pub fn corrupt_journal_at(&mut self, tick: u64, node: impl Into<NodeId>, offset_from_end: u64) {
        self.schedule(
            tick,
            Fault::CorruptJournalTail {
                node: node.into(),
                offset_from_end,
            },
        );
    }

    /// Schedules the kill of whichever member of `group` leads the
    /// replication group when the tick fires (driver-resolved — see
    /// [`Fault::KillLeader`]).
    pub fn kill_leader_at<I, N>(&mut self, tick: u64, group: I)
    where
        I: IntoIterator<Item = N>,
        N: Into<NodeId>,
    {
        self.schedule(
            tick,
            Fault::KillLeader {
                group: group.into_iter().map(Into::into).collect(),
            },
        );
    }

    /// Schedules the isolation of `node` from every member of `from`
    /// at `tick`.
    pub fn isolate_at<I, N>(&mut self, tick: u64, node: impl Into<NodeId>, from: I)
    where
        I: IntoIterator<Item = N>,
        N: Into<NodeId>,
    {
        self.schedule(
            tick,
            Fault::Isolate {
                node: node.into(),
                from: from.into_iter().map(Into::into).collect(),
            },
        );
    }

    /// Schedules a clock skew on `node` at `tick`; `offset_ms == 0`
    /// clears a previous skew.
    pub fn skew_clock_at(&mut self, tick: u64, node: impl Into<NodeId>, offset_ms: i64) {
        self.schedule(
            tick,
            Fault::ClockSkew {
                node: node.into(),
                offset_ms,
            },
        );
    }

    /// Schedules `node`'s CIV turning Byzantine at `tick`.
    pub fn byzantine_civ_at(&mut self, tick: u64, node: impl Into<NodeId>) {
        self.schedule(tick, Fault::ByzantineCiv { node: node.into() });
    }

    /// Schedules the link between `a` and `b` to start flapping at
    /// `tick` in runs of `window` calls (driver-resolved — see
    /// [`Fault::FlappyPeerLink`]).
    pub fn flap_link_at(
        &mut self,
        tick: u64,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        window: u64,
    ) {
        self.schedule(
            tick,
            Fault::FlappyPeerLink {
                a: a.into(),
                b: b.into(),
                window,
            },
        );
    }

    /// Schedules the flapping link between `a` and `b` to steady at
    /// `tick` (a zero-window [`Fault::FlappyPeerLink`]).
    pub fn steady_link_at(&mut self, tick: u64, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        self.flap_link_at(tick, a, b, 0);
    }

    /// Applies (and consumes) every fault scheduled at or before `now`,
    /// in schedule order, returning what was applied. Network faults act
    /// on `net`; heartbeat faults only update the pause set consulted by
    /// [`FaultPlan::heartbeats_paused`].
    pub fn apply_due(&mut self, now: u64, net: &mut SimNet) -> Vec<Fault> {
        let due = self.scheduled.partition_point(|(t, _)| *t <= now);
        let applied: Vec<Fault> = self.scheduled.drain(..due).map(|(_, f)| f).collect();
        for fault in &applied {
            match fault {
                Fault::Partition { a, b } => net.partition(a.clone(), b.clone()),
                Fault::Heal { a, b } => net.heal(a.clone(), b.clone()),
                Fault::Crash { node } => net.crash(node.clone()),
                Fault::Recover { node } => net.recover(node.clone()),
                Fault::PauseHeartbeats { node } => {
                    self.paused.insert(node.clone());
                }
                Fault::ResumeHeartbeats { node } => {
                    self.paused.remove(node);
                }
                Fault::TearJournalTail { node, bytes } => {
                    self.journal_damage
                        .push((node.clone(), JournalDamage::TornTail { bytes: *bytes }));
                }
                Fault::CorruptJournalTail {
                    node,
                    offset_from_end,
                } => {
                    self.journal_damage.push((
                        node.clone(),
                        JournalDamage::FlippedByte {
                            offset_from_end: *offset_from_end,
                        },
                    ));
                }
                Fault::KillLeader { group } => {
                    self.leader_kills.push(group.clone());
                }
                Fault::Isolate { node, from } => {
                    for other in from {
                        net.partition(node.clone(), other.clone());
                    }
                }
                Fault::ClockSkew { node, offset_ms } => {
                    if *offset_ms == 0 {
                        self.skews.remove(node);
                    } else {
                        self.skews.insert(node.clone(), *offset_ms);
                    }
                }
                Fault::ByzantineCiv { node } => {
                    self.byzantine.insert(node.clone());
                }
                Fault::FlappyPeerLink { a, b, window } => {
                    self.link_flaps.push((a.clone(), b.clone(), *window));
                }
            }
        }
        applied
    }

    /// Whether `node`'s heartbeat emission is currently paused.
    pub fn heartbeats_paused(&self, node: &str) -> bool {
        self.paused.contains(node)
    }

    /// Drains the journal damage applied so far: `(node, damage)` in
    /// application order. The driver applies each to the node's storage
    /// backend before restarting the node.
    pub fn take_journal_damage(&mut self) -> Vec<(NodeId, JournalDamage)> {
        std::mem::take(&mut self.journal_damage)
    }

    /// Drains the pending leader kills: one group per fired
    /// [`Fault::KillLeader`], in application order. The driver looks
    /// up which group member currently leads and crashes it — the plan
    /// stays deterministic while the victim is resolved live.
    pub fn take_leader_kills(&mut self) -> Vec<Vec<NodeId>> {
        std::mem::take(&mut self.leader_kills)
    }

    /// Drains the pending link flaps: `(a, b, window)` per fired
    /// [`Fault::FlappyPeerLink`], in application order. A zero window
    /// means the driver should steady the link.
    pub fn take_link_flaps(&mut self) -> Vec<(NodeId, NodeId, u64)> {
        std::mem::take(&mut self.link_flaps)
    }

    /// The current clock skew of `node` in milliseconds (0 = in sync).
    /// The driver adds this to virtual time whenever the skewed node
    /// stamps or compares a wall-clock timestamp.
    pub fn clock_skew(&self, node: &str) -> i64 {
        self.skews.get(node).copied().unwrap_or(0)
    }

    /// Whether `node`'s CIV has turned Byzantine.
    pub fn is_byzantine(&self, node: &str) -> bool {
        self.byzantine.contains(node)
    }

    /// The Byzantine CIVs so far, sorted (stable output for traces).
    pub fn byzantine_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.byzantine.iter().cloned().collect();
        nodes.sort();
        nodes
    }

    /// Faults not yet applied.
    pub fn pending(&self) -> usize {
        self.scheduled.len()
    }

    /// The unapplied schedule as `(tick, fault)` pairs, in application
    /// order. Take the snapshot *before* the first [`FaultPlan::apply_due`]
    /// to capture the whole script — applied faults are consumed and no
    /// longer appear. Feed subsets back through
    /// [`FaultPlan::from_schedule`] to replay a reduced scenario (the
    /// delta-debugging loop in `oasis-conformance` shrinks failing fault
    /// schedules this way).
    pub fn schedule_snapshot(&self) -> Vec<(u64, Fault)> {
        self.scheduled.clone()
    }

    /// Builds a fresh plan from an explicit `(tick, fault)` schedule —
    /// typically a subset of a [`FaultPlan::schedule_snapshot`]. Pairs
    /// may arrive in any order; same-tick pairs keep their relative
    /// order, matching the stable tie-break of incremental scheduling.
    pub fn from_schedule<I>(schedule: I) -> Self
    where
        I: IntoIterator<Item = (u64, Fault)>,
    {
        let mut plan = Self::new();
        for (tick, fault) in schedule {
            plan.schedule(tick, fault);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Latency;
    use crate::net::LinkConfig;

    fn net() -> SimNet {
        SimNet::new(LinkConfig::clean(Latency::Constant(1)))
    }

    #[test]
    fn faults_apply_at_their_tick_and_are_consumed() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.partition_at(10, "a", "b");
        plan.crash_at(20, "c");
        assert_eq!(plan.pending(), 2);

        assert!(plan.apply_due(9, &mut net).is_empty());
        assert!(!net.is_partitioned("a", "b"));

        let applied = plan.apply_due(10, &mut net);
        assert_eq!(
            applied,
            vec![Fault::Partition {
                a: "a".into(),
                b: "b".into()
            }]
        );
        assert!(net.is_partitioned("a", "b"));
        assert_eq!(plan.pending(), 1);

        // Past-due faults apply even if a tick was skipped.
        let applied = plan.apply_due(100, &mut net);
        assert_eq!(applied.len(), 1);
        assert!(net.is_crashed("c"));
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn same_tick_faults_apply_in_script_order() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.crash_at(5, "x");
        plan.recover_at(5, "x");
        let applied = plan.apply_due(5, &mut net);
        assert_eq!(applied.len(), 2);
        assert!(!net.is_crashed("x"), "crash then recover nets out");
    }

    #[test]
    fn heal_and_recover_reverse_their_faults() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.partition_at(1, "a", "b");
        plan.crash_at(1, "i");
        plan.heal_at(2, "a", "b");
        plan.recover_at(3, "i");

        plan.apply_due(1, &mut net);
        assert!(net.is_partitioned("a", "b"));
        assert!(net.is_crashed("i"));
        plan.apply_due(2, &mut net);
        assert!(!net.is_partitioned("a", "b"));
        assert!(net.is_crashed("i"), "recover not due yet");
        plan.apply_due(3, &mut net);
        assert!(!net.is_crashed("i"));
    }

    #[test]
    fn journal_damage_accumulates_and_drains() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.crash_at(5, "issuer");
        plan.tear_journal_at(5, "issuer", 3);
        plan.corrupt_journal_at(6, "issuer", 0);

        plan.apply_due(4, &mut net);
        assert!(plan.take_journal_damage().is_empty());

        plan.apply_due(6, &mut net);
        assert!(net.is_crashed("issuer"));
        let damage = plan.take_journal_damage();
        assert_eq!(
            damage,
            vec![
                ("issuer".into(), JournalDamage::TornTail { bytes: 3 }),
                (
                    "issuer".into(),
                    JournalDamage::FlippedByte { offset_from_end: 0 }
                ),
            ]
        );
        assert!(plan.take_journal_damage().is_empty(), "drained");
        assert_eq!(net.stats(), (0, 0), "no traffic side effects");
    }

    #[test]
    fn kill_leader_accumulates_for_the_driver_to_resolve() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.kill_leader_at(10, ["n0", "n1", "n2"]);

        plan.apply_due(9, &mut net);
        assert!(plan.take_leader_kills().is_empty());

        let applied = plan.apply_due(10, &mut net);
        assert_eq!(applied.len(), 1);
        // The plan does not pick a victim; the driver resolves the
        // live leader from the drained group.
        let kills = plan.take_leader_kills();
        let group: Vec<NodeId> = vec!["n0".into(), "n1".into(), "n2".into()];
        assert_eq!(kills, vec![group]);
        assert!(plan.take_leader_kills().is_empty(), "drained");
        assert_eq!(net.stats(), (0, 0), "no direct net side effects");
    }

    #[test]
    fn isolate_partitions_the_node_from_every_peer() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.isolate_at(5, "leader", ["f1", "f2"]);
        plan.heal_at(8, "leader", "f1");

        plan.apply_due(5, &mut net);
        assert!(net.is_partitioned("leader", "f1"));
        assert!(net.is_partitioned("leader", "f2"));
        assert!(!net.is_partitioned("f1", "f2"), "peers still connected");

        plan.apply_due(8, &mut net);
        assert!(!net.is_partitioned("leader", "f1"));
        assert!(net.is_partitioned("leader", "f2"));
    }

    #[test]
    fn clock_skew_is_tracked_and_clearable() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.skew_clock_at(5, "domB", 200);
        plan.skew_clock_at(9, "domB", -75);
        plan.skew_clock_at(12, "domB", 0);

        assert_eq!(plan.clock_skew("domB"), 0, "no skew before the tick");
        plan.apply_due(5, &mut net);
        assert_eq!(plan.clock_skew("domB"), 200);
        assert_eq!(plan.clock_skew("domA"), 0, "other nodes stay in sync");
        plan.apply_due(9, &mut net);
        assert_eq!(plan.clock_skew("domB"), -75, "reskew replaces");
        plan.apply_due(12, &mut net);
        assert_eq!(plan.clock_skew("domB"), 0, "zero offset clears");
        assert_eq!(net.stats(), (0, 0), "no traffic side effects");
    }

    #[test]
    fn byzantine_civ_is_tracked_sorted_and_sticky() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.byzantine_civ_at(4, "civ-z");
        plan.byzantine_civ_at(6, "civ-a");

        assert!(!plan.is_byzantine("civ-z"));
        plan.apply_due(4, &mut net);
        assert!(plan.is_byzantine("civ-z"));
        assert!(!plan.is_byzantine("civ-a"));
        plan.apply_due(6, &mut net);
        assert!(plan.is_byzantine("civ-a"));
        assert_eq!(
            plan.byzantine_nodes(),
            vec![NodeId::from("civ-a"), NodeId::from("civ-z")],
            "sorted regardless of insertion order"
        );
        assert_eq!(net.stats(), (0, 0), "no traffic side effects");
    }

    #[test]
    fn link_flaps_accumulate_for_the_driver_to_resolve() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.flap_link_at(5, "leader", "f1", 3);
        plan.steady_link_at(9, "leader", "f1");

        plan.apply_due(4, &mut net);
        assert!(plan.take_link_flaps().is_empty());

        plan.apply_due(5, &mut net);
        assert_eq!(
            plan.take_link_flaps(),
            vec![("leader".into(), "f1".into(), 3)]
        );
        assert!(plan.take_link_flaps().is_empty(), "drained");

        // A steady is a zero-window flap for the driver to clear.
        plan.apply_due(9, &mut net);
        assert_eq!(
            plan.take_link_flaps(),
            vec![("leader".into(), "f1".into(), 0)]
        );
        assert_eq!(net.stats(), (0, 0), "no direct net side effects");
    }

    #[test]
    fn schedule_round_trips_through_snapshot_and_subsets_replay() {
        let mut plan = FaultPlan::new();
        plan.partition_at(10, "a", "b");
        plan.crash_at(5, "c");
        plan.heal_at(20, "a", "b");

        let snapshot = plan.schedule_snapshot();
        assert_eq!(snapshot.len(), 3);
        assert_eq!(snapshot[0].0, 5, "snapshot is in application order");

        // Full round trip: the rebuilt plan applies identically.
        let mut rebuilt = FaultPlan::from_schedule(snapshot.clone());
        assert_eq!(rebuilt.schedule_snapshot(), snapshot);
        let mut net1 = net();
        let mut net2 = net();
        plan.apply_due(100, &mut net1);
        rebuilt.apply_due(100, &mut net2);
        assert_eq!(net1.is_partitioned("a", "b"), net2.is_partitioned("a", "b"));
        assert_eq!(net1.is_crashed("c"), net2.is_crashed("c"));

        // A subset replays only its own faults — the shrink loop's move.
        let subset: Vec<_> = snapshot.iter().filter(|(t, _)| *t != 5).cloned().collect();
        let mut reduced = FaultPlan::from_schedule(subset);
        let mut net3 = net();
        reduced.apply_due(100, &mut net3);
        assert!(!net3.is_crashed("c"), "dropped fault never fires");
        assert!(!net3.is_partitioned("a", "b"), "partition healed at 20");

        // Applied faults leave the snapshot: it captures what remains.
        assert!(plan.schedule_snapshot().is_empty());
    }

    #[test]
    fn heartbeat_pause_is_tracked_without_touching_the_net() {
        let mut net = net();
        let mut plan = FaultPlan::new();
        plan.pause_heartbeats_at(7, "issuer");
        plan.resume_heartbeats_at(9, "issuer");

        plan.apply_due(6, &mut net);
        assert!(!plan.heartbeats_paused("issuer"));
        plan.apply_due(7, &mut net);
        assert!(plan.heartbeats_paused("issuer"));
        assert_eq!(net.stats(), (0, 0), "no traffic side effects");
        plan.apply_due(9, &mut net);
        assert!(!plan.heartbeats_paused("issuer"));
    }
}
