//! TAB-G — compiled decision plans vs the interpreted solver.
//!
//! The policy hot path (role activation, membership re-checks) was an
//! interpreted Horn-clause search: per request, per rule, a linear scan
//! of the presented credentials. Plan compilation replaces the scans
//! with indexed lookups and the per-backtrack `HashMap` clones with a
//! slot trail. This experiment measures the difference on the same
//! policies through the same public API:
//!
//! * warm activation throughput, interpreted vs compiled, at 10/100/500
//!   alternative rules per role (each probe rule joins two credential
//!   conditions under a ground guard that never holds — the interpreted
//!   engine enumerates the join cross-product per rule before the guard
//!   fails, the compiled plan hoists the guard ahead of the join and
//!   fails in one indexed fact probe);
//! * recheck-storm latency: a full membership sweep over ~2 000
//!   certificates with retained checks, interpreted vs compiled, plus
//!   the compiled re-sweep when the fact epoch is unchanged (fact-only
//!   checks are skipped entirely).
//!
//! Emits `BENCH_policy.json` at the repo root and asserts the headline
//! acceptance bar: ≥10x compiled speedup on the 100-rule policy.
//!
//! Set `POLICY_BENCH_QUICK=1` (CI smoke) to shrink sizes and budgets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::prelude::*;
use oasis_bench::table_header;

fn quick() -> bool {
    std::env::var("POLICY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// A service whose `target` role has `rules` alternatives: all but the
/// last join two `badge` prerequisites under a ground `gate_flag` guard
/// that is never asserted, the last is satisfiable via a real
/// prerequisite RMC plus a fact lookup. The principal presents that RMC
/// buried among `filler` decoy `badge` RMCs (all genuinely issued by
/// the service, so validation passes).
///
/// The probe rules are the hot-path shape the plan compiler targets:
/// the reference solver evaluates left-to-right, so each probe costs a
/// filler x filler credential-join cross-product (a `Bindings` clone
/// per branch) before the trailing guard fails; the compiled plan
/// schedules the ground guard before the join and answers each probe
/// with a single indexed fact lookup.
fn alternatives_world(
    rules: usize,
    filler: usize,
    interpreted: bool,
) -> (Arc<OasisService>, PrincipalId, Vec<Credential>) {
    let facts = Arc::new(FactStore::new());
    facts.define("open", 1).unwrap();
    facts.define("registered", 1).unwrap();
    // The guard relation stays empty: every probe rule is unsatisfiable,
    // but only the compiled engine discovers that before the join.
    facts.define("gate_flag", 1).unwrap();
    facts.insert("open", vec![Value::id("alice")]).unwrap();
    facts
        .insert("registered", vec![Value::id("alice")])
        .unwrap();

    let config = if interpreted {
        ServiceConfig::new("alt").with_interpreted_solver()
    } else {
        ServiceConfig::new("alt")
    };
    let service = OasisService::new(config, facts);
    let alice = PrincipalId::new("alice");
    let ctx = EnvContext::new(0);

    // The real prerequisite and the decoys, all issued properly.
    let mut presented: Vec<Credential> = Vec::new();
    service
        .define_role("entry", &[("u", ValueType::Id)], true)
        .unwrap();
    service
        .add_activation_rule(
            "entry",
            vec![Term::var("U")],
            vec![Atom::env_fact("open", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();
    service
        .define_role("badge", &[("t", ValueType::Id), ("u", ValueType::Id)], true)
        .unwrap();
    service
        .add_activation_rule(
            "badge",
            vec![Term::var("T"), Term::var("U")],
            vec![Atom::env_fact("open", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();
    for i in 0..filler {
        let rmc = service
            .activate_role(
                &alice,
                &RoleName::new("badge"),
                &[Value::id(format!("t{i}")), Value::id("alice")],
                &[],
                &ctx,
            )
            .unwrap();
        presented.push(Credential::Rmc(rmc));
    }
    let entry = service
        .activate_role(
            &alice,
            &RoleName::new("entry"),
            &[Value::id("alice")],
            &[],
            &ctx,
        )
        .unwrap();
    // Bury the useful credential in the middle of the presented set.
    presented.insert(filler / 2, Credential::Rmc(entry));

    service
        .define_role("target", &[("u", ValueType::Id)], false)
        .unwrap();
    for i in 0..rules.saturating_sub(1) {
        // Unsatisfiable, but only via the trailing ground guard: the
        // reference solver first enumerates every (badge, badge) pair —
        // a Bindings clone per branch — and fails the guard once per
        // pair; the compiled plan hoists the guard (it reads no join
        // output) and refutes the rule with one empty-relation probe.
        service
            .add_activation_rule(
                "target",
                vec![Term::var("U")],
                vec![
                    Atom::prereq("badge", vec![Term::var("X"), Term::Wildcard]),
                    Atom::prereq("badge", vec![Term::var("Y"), Term::Wildcard]),
                    Atom::env_fact("gate_flag", vec![Term::val(Value::Int(i as i64))]),
                ],
                vec![0],
            )
            .unwrap();
    }
    service
        .add_activation_rule(
            "target",
            vec![Term::var("U")],
            vec![
                Atom::prereq("entry", vec![Term::var("U")]),
                Atom::env_fact("registered", vec![Term::var("U")]),
            ],
            vec![0, 1],
        )
        .unwrap();

    (service, alice, presented)
}

/// Warm activation throughput (ops/sec) over a fixed wall-clock budget.
fn activation_throughput(
    service: &OasisService,
    alice: &PrincipalId,
    presented: &[Credential],
    budget: Duration,
) -> f64 {
    let target = RoleName::new("target");
    let args = [Value::id("alice")];
    let ctx = EnvContext::new(1);
    // Warm-up: populate validation state and touch every rule once.
    service
        .activate_role(alice, &target, &args, presented, &ctx)
        .unwrap();
    let mut ops = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        for _ in 0..8 {
            service
                .activate_role(alice, &target, &args, presented, &ctx)
                .unwrap();
            ops += 1;
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64()
}

/// A service holding `certs` active RMCs with retained membership
/// checks: half fact-only (`registered(u_i)` must stay asserted), half
/// additionally time-sensitive (`$now` window).
fn recheck_world(certs: usize, interpreted: bool) -> Arc<OasisService> {
    let facts = Arc::new(FactStore::new());
    facts.define("registered", 1).unwrap();
    let config = if interpreted {
        ServiceConfig::new("sweep").with_interpreted_solver()
    } else {
        ServiceConfig::new("sweep")
    };
    let service = OasisService::new(config, facts.clone());
    service
        .define_role("member", &[("u", ValueType::Id)], true)
        .unwrap();
    service
        .add_activation_rule(
            "member",
            vec![Term::var("U")],
            vec![Atom::env_fact("registered", vec![Term::var("U")])],
            vec![0],
        )
        .unwrap();
    service
        .define_role("timed", &[("u", ValueType::Id)], true)
        .unwrap();
    service
        .add_activation_rule(
            "timed",
            vec![Term::var("U")],
            vec![
                Atom::env_fact("registered", vec![Term::var("U")]),
                Atom::compare(
                    Term::var("$now"),
                    CmpOp::Lt,
                    Term::val(Value::Time(1_000_000)),
                ),
            ],
            vec![0, 1],
        )
        .unwrap();
    let ctx = EnvContext::new(0);
    for i in 0..certs {
        let user = Value::id(format!("u{i}"));
        facts.insert("registered", vec![user.clone()]).unwrap();
        let role = if i % 2 == 0 { "member" } else { "timed" };
        service
            .activate_role(
                &PrincipalId::new(format!("u{i}")),
                &RoleName::new(role),
                &[user],
                &[],
                &ctx,
            )
            .unwrap();
    }
    service
}

fn sweep_ms(service: &OasisService, now: u64) -> f64 {
    let ctx = EnvContext::new(now);
    let t0 = Instant::now();
    let revoked = service.recheck_memberships(&ctx);
    assert!(revoked.is_empty(), "sweep must not revoke anything here");
    t0.elapsed().as_secs_f64() * 1e3
}

fn series() -> String {
    let quick = quick();
    let rule_counts: &[usize] = if quick { &[10, 100] } else { &[10, 100, 500] };
    let filler = 15usize;
    let budget = Duration::from_millis(if quick { 150 } else { 400 });

    table_header(
        "TAB-G compiled decision plans",
        "indexed plans turn per-request rule search into hash lookups",
        "rules  interpreted/s  compiled/s  speedup",
    );
    let mut interp = Vec::new();
    let mut compiled = Vec::new();
    let mut speedups = Vec::new();
    for &rules in rule_counts {
        let (s_i, alice_i, creds_i) = alternatives_world(rules, filler, true);
        let ops_i = activation_throughput(&s_i, &alice_i, &creds_i, budget);
        let (s_c, alice_c, creds_c) = alternatives_world(rules, filler, false);
        let ops_c = activation_throughput(&s_c, &alice_c, &creds_c, budget);
        let speedup = ops_c / ops_i;
        println!("{rules:>5}  {ops_i:>13.0}  {ops_c:>10.0}  {speedup:>6.1}x");
        interp.push(ops_i);
        compiled.push(ops_c);
        speedups.push(speedup);
    }
    let at_100 = rule_counts.iter().position(|&r| r == 100).unwrap();
    assert!(
        speedups[at_100] >= 10.0,
        "acceptance: compiled must be ≥10x interpreted at 100 rules, measured {:.1}x",
        speedups[at_100]
    );

    let certs = if quick { 400 } else { 2_000 };
    let interpreted_world = recheck_world(certs, true);
    let compiled_world = recheck_world(certs, false);
    let interp_sweep = sweep_ms(&interpreted_world, 1);
    let cold_sweep = sweep_ms(&compiled_world, 1);
    // Same epoch, later clock: fact-only checks skip, timed ones re-run.
    let warm_sweep = sweep_ms(&compiled_world, 2);
    table_header(
        "TAB-G recheck storm",
        "membership sweep latency; warm = unchanged fact epoch (fact-only checks skipped)",
        "certs  interpreted-ms  compiled-ms  epoch-skip-ms",
    );
    println!("{certs:>5}  {interp_sweep:>14.2}  {cold_sweep:>11.2}  {warm_sweep:>13.2}");

    let fmt = |xs: &[f64]| {
        xs.iter()
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{\n  \"bench\": \"table_policy\",\n  \"quick\": {},\n  \"rule_counts\": [{}],\n  \"presented_credentials\": {},\n  \"interpreted_activations_per_sec\": [{}],\n  \"compiled_activations_per_sec\": [{}],\n  \"speedup\": [{}],\n  \"recheck_certs\": {},\n  \"recheck_interpreted_ms\": {:.2},\n  \"recheck_compiled_ms\": {:.2},\n  \"recheck_epoch_skip_ms\": {:.2}\n}}\n",
        quick,
        rule_counts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        filler + 1,
        fmt(&interp),
        fmt(&compiled),
        fmt(&speedups),
        certs,
        interp_sweep,
        cold_sweep,
        warm_sweep,
    )
}

fn bench(c: &mut Criterion) {
    let json = series();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_policy.json");
    std::fs::write(out, json).expect("write BENCH_policy.json");
    println!("wrote {out}");

    // Criterion timings for the headline per-operation costs.
    let mut group = c.benchmark_group("policy_activation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (label, interpreted) in [("compiled", false), ("interpreted", true)] {
        let (service, alice, presented) = alternatives_world(100, 15, interpreted);
        let target = RoleName::new("target");
        let args = [Value::id("alice")];
        let ctx = EnvContext::new(1);
        group.bench_function(BenchmarkId::new(label, "100rules"), |b| {
            b.iter(|| {
                service
                    .activate_role(&alice, &target, &args, &presented, &ctx)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
