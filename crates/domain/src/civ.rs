//! The certificate issuing and validation (CIV) service.
//!
//! Ref \[10\] of the paper (an architecture for distributed OASIS
//! services) observes that certificates are unlikely to be issued and
//! validated by each individual service; instead "a domain will contain
//! one highly available service to carry out the functions of certificate
//! issuing and validation … including replication for availability
//! together with consistency management".
//!
//! [`CivService`] models that component:
//!
//! * it fronts the domain's issuing services for validation callbacks;
//! * it maintains a **replicated revocation log**: every revocation event
//!   on the domain bus is appended and applied to each live replica, and
//!   replicas that were down replay the log when they rejoin;
//! * replicas remember successful validations, so when an issuer is
//!   unreachable a replica can still answer — *deny* if the certificate
//!   is in its revocation set, *allow* if it validated recently and has
//!   not been revoked since (bounded staleness, the availability /
//!   consistency trade the paper's ref \[10\] manages).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use oasis_core::{
    CertEvent, Credential, CredentialValidator, Crr, DomainId, OasisError, OasisService,
    PrincipalId, ServiceId,
};
use oasis_events::EventBus;

/// Counters describing CIV behaviour (for the Fig 3/5 experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CivStats {
    /// Total validation requests.
    pub validations: u64,
    /// Requests denied from a replica's revocation set without touching
    /// the issuer.
    pub fast_denials: u64,
    /// Requests answered from a replica's validation memory because the
    /// issuer was unreachable.
    pub availability_saves: u64,
    /// Requests that could not be answered at all.
    pub unavailable: u64,
}

struct Replica {
    revoked: Mutex<HashSet<Crr>>,
    /// Log index up to which this replica has applied revocations.
    applied: Mutex<usize>,
    up: AtomicBool,
    /// (crr, principal) → last time the issuer confirmed validity.
    seen_valid: Mutex<HashMap<(Crr, PrincipalId), u64>>,
}

impl Replica {
    fn new() -> Self {
        Self {
            revoked: Mutex::new(HashSet::new()),
            applied: Mutex::new(0),
            up: AtomicBool::new(true),
            seen_valid: Mutex::new(HashMap::new()),
        }
    }
}

/// A domain's replicated certificate issuing and validation service.
pub struct CivService {
    domain: DomainId,
    issuers: RwLock<HashMap<ServiceId, Weak<OasisService>>>,
    issuer_up: RwLock<HashMap<ServiceId, bool>>,
    replicas: Vec<Replica>,
    log: Mutex<Vec<Crr>>,
    /// How long (virtual ticks) a remembered validation may stand in for
    /// an unreachable issuer.
    cache_ttl: AtomicU64,
    validations: AtomicU64,
    fast_denials: AtomicU64,
    availability_saves: AtomicU64,
    unavailable: AtomicU64,
}

impl fmt::Debug for CivService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CivService")
            .field("domain", &self.domain)
            .field("replicas", &self.replicas.len())
            .field("log_len", &self.log.lock().len())
            .finish()
    }
}

impl CivService {
    /// Creates a CIV service with `replicas` replicas (at least 1),
    /// subscribed to revocation events on `bus`.
    pub(crate) fn new(domain: DomainId, bus: &EventBus<CertEvent>, replicas: usize) -> Arc<Self> {
        let civ = Arc::new(Self {
            domain,
            issuers: RwLock::new(HashMap::new()),
            issuer_up: RwLock::new(HashMap::new()),
            replicas: (0..replicas.max(1)).map(|_| Replica::new()).collect(),
            log: Mutex::new(Vec::new()),
            cache_ttl: AtomicU64::new(u64::MAX),
            validations: AtomicU64::new(0),
            fast_denials: AtomicU64::new(0),
            availability_saves: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&civ);
        bus.subscribe_fn("cred.revoked.#", move |event| {
            if let Some(civ) = Weak::upgrade(&weak) {
                civ.on_revocation(&event.payload.crr);
            }
        })
        .expect("static pattern is valid");
        civ
    }

    /// The domain this CIV service belongs to.
    pub fn domain(&self) -> &DomainId {
        &self.domain
    }

    /// Registers an issuing service of this domain.
    pub fn register_issuer(&self, service: &Arc<OasisService>) {
        self.issuers
            .write()
            .insert(service.id().clone(), Arc::downgrade(service));
        self.issuer_up.write().insert(service.id().clone(), true);
    }

    /// Marks an issuer reachable or unreachable (failure injection).
    pub fn set_issuer_up(&self, id: &ServiceId, up: bool) {
        self.issuer_up.write().insert(id.clone(), up);
    }

    /// Sets how long a remembered validation may substitute for an
    /// unreachable issuer.
    pub fn set_cache_ttl(&self, ttl: u64) {
        self.cache_ttl.store(ttl, Ordering::Relaxed);
    }

    /// The replication factor.
    pub fn replication_factor(&self) -> usize {
        self.replicas.len()
    }

    /// Takes replica `index` down; it stops applying revocations.
    ///
    /// # Errors
    ///
    /// [`crate::DomainError::NoSuchReplica`] if out of range.
    pub fn fail_replica(&self, index: usize) -> Result<(), crate::DomainError> {
        let replica = self.replica(index)?;
        replica.up.store(false, Ordering::Release);
        Ok(())
    }

    /// Brings replica `index` back; it replays the missed suffix of the
    /// revocation log before serving again (the "consistency management"
    /// of ref \[10\]).
    ///
    /// # Errors
    ///
    /// [`crate::DomainError::NoSuchReplica`] if out of range.
    pub fn recover_replica(&self, index: usize) -> Result<(), crate::DomainError> {
        let replica = self.replica(index)?;
        let log = self.log.lock();
        let mut applied = replica.applied.lock();
        let mut revoked = replica.revoked.lock();
        for crr in log.iter().skip(*applied) {
            revoked.insert(crr.clone());
        }
        *applied = log.len();
        drop(revoked);
        drop(applied);
        drop(log);
        replica.up.store(true, Ordering::Release);
        Ok(())
    }

    fn replica(&self, index: usize) -> Result<&Replica, crate::DomainError> {
        self.replicas
            .get(index)
            .ok_or(crate::DomainError::NoSuchReplica {
                index,
                factor: self.replicas.len(),
            })
    }

    /// How many replicas are currently live.
    pub fn live_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.up.load(Ordering::Acquire))
            .count()
    }

    /// Revocation-log length (for tests and experiments).
    pub fn log_len(&self) -> usize {
        self.log.lock().len()
    }

    fn on_revocation(&self, crr: &Crr) {
        let mut log = self.log.lock();
        log.push(crr.clone());
        let new_len = log.len();
        drop(log);
        for replica in &self.replicas {
            if replica.up.load(Ordering::Acquire) {
                replica.revoked.lock().insert(crr.clone());
                *replica.applied.lock() = new_len;
            }
        }
    }

    /// A point-in-time snapshot of the statistics.
    pub fn stats(&self) -> CivStats {
        CivStats {
            validations: self.validations.load(Ordering::Relaxed),
            fast_denials: self.fast_denials.load(Ordering::Relaxed),
            availability_saves: self.availability_saves.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
        }
    }

    /// Validates at a specific replica — used by experiments measuring
    /// staleness; normal callers use the [`CredentialValidator`] impl,
    /// which picks the first live replica.
    ///
    /// # Errors
    ///
    /// As [`CredentialValidator::validate`], plus
    /// [`OasisError::NoValidator`] when neither the issuer nor the
    /// replica's memory can answer.
    pub fn validate_at_replica(
        &self,
        index: usize,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        self.validations.fetch_add(1, Ordering::Relaxed);
        let replica = self
            .replica(index)
            .map_err(|_| OasisError::NoValidator(credential.issuer().clone()))?;
        let crr = credential.crr().clone();

        // Fast-path deny from the replicated revocation set.
        if replica.revoked.lock().contains(&crr) {
            self.fast_denials.fetch_add(1, Ordering::Relaxed);
            return Err(OasisError::InvalidCredential {
                crr,
                reason: "revoked (CIV revocation log)".into(),
            });
        }

        let issuer_id = credential.issuer().clone();
        let issuer_reachable = *self.issuer_up.read().get(&issuer_id).unwrap_or(&false);
        let issuer = self.issuers.read().get(&issuer_id).and_then(Weak::upgrade);

        match (issuer_reachable, issuer) {
            (true, Some(service)) => {
                let result = service.validate_own(credential, presenter, now);
                if result.is_ok() {
                    replica
                        .seen_valid
                        .lock()
                        .insert((crr, presenter.clone()), now);
                }
                result
            }
            _ => {
                // Issuer unreachable: answer from validation memory if it
                // is fresh enough (bounded staleness).
                let ttl = self.cache_ttl.load(Ordering::Relaxed);
                let seen = replica.seen_valid.lock();
                match seen.get(&(crr.clone(), presenter.clone())) {
                    Some(&at) if now.saturating_sub(at) <= ttl => {
                        self.availability_saves.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                    _ => {
                        self.unavailable.fetch_add(1, Ordering::Relaxed);
                        Err(OasisError::NoValidator(issuer_id))
                    }
                }
            }
        }
    }

    fn first_live_replica(&self) -> Option<usize> {
        self.replicas
            .iter()
            .position(|r| r.up.load(Ordering::Acquire))
    }
}

impl CredentialValidator for CivService {
    fn validate(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        match self.first_live_replica() {
            Some(index) => self.validate_at_replica(index, credential, presenter, now),
            None => {
                self.unavailable.fetch_add(1, Ordering::Relaxed);
                Err(OasisError::NoValidator(credential.issuer().clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use oasis_core::{EnvContext, RoleName, Value, ValueType};

    fn setup() -> (Arc<Domain>, Arc<OasisService>, Credential, PrincipalId) {
        let domain = Domain::new("hospital", EventBus::new());
        let svc = domain.create_service("records");
        svc.define_role("guest", &[("u", ValueType::Id)], true)
            .unwrap();
        svc.add_activation_rule("guest", vec![oasis_core::Term::var("U")], vec![], vec![])
            .unwrap();
        let alice = PrincipalId::new("alice");
        let rmc = svc
            .activate_role(
                &alice,
                &RoleName::new("guest"),
                &[Value::id("alice")],
                &[],
                &EnvContext::new(0),
            )
            .unwrap();
        (domain, svc, Credential::Rmc(rmc), alice)
    }

    #[test]
    fn validates_via_issuer_when_reachable() {
        let (domain, _svc, cred, alice) = setup();
        assert!(domain.civ().validate(&cred, &alice, 1).is_ok());
        assert!(domain
            .civ()
            .validate(&cred, &PrincipalId::new("mallory"), 1)
            .is_err());
    }

    #[test]
    fn revocation_reaches_all_live_replicas() {
        let (domain, svc, cred, alice) = setup();
        domain.civ().validate(&cred, &alice, 1).unwrap();
        svc.revoke_certificate(cred.crr().cert_id, "done", 2);
        // Every replica fast-denies, even with the issuer down.
        domain.civ().set_issuer_up(svc.id(), false);
        for i in 0..domain.civ().replication_factor() {
            let err = domain
                .civ()
                .validate_at_replica(i, &cred, &alice, 3)
                .unwrap_err();
            assert!(err.to_string().contains("revocation log"), "{err}");
        }
        assert_eq!(domain.civ().stats().fast_denials, 3);
    }

    #[test]
    fn issuer_outage_answered_from_validation_memory() {
        let (domain, svc, cred, alice) = setup();
        domain.civ().validate(&cred, &alice, 1).unwrap();
        domain.civ().set_issuer_up(svc.id(), false);
        // Replica 0 remembers the validation.
        assert!(domain.civ().validate(&cred, &alice, 5).is_ok());
        assert_eq!(domain.civ().stats().availability_saves, 1);
        // A principal never seen cannot be vouched for.
        assert!(domain
            .civ()
            .validate(&cred, &PrincipalId::new("bob"), 5)
            .is_err());
    }

    #[test]
    fn cache_ttl_bounds_staleness() {
        let (domain, svc, cred, alice) = setup();
        domain.civ().set_cache_ttl(10);
        domain.civ().validate(&cred, &alice, 100).unwrap();
        domain.civ().set_issuer_up(svc.id(), false);
        assert!(domain.civ().validate(&cred, &alice, 110).is_ok());
        assert!(domain.civ().validate(&cred, &alice, 111).is_err());
    }

    #[test]
    fn failed_replica_misses_revocations_until_recovery() {
        let (domain, svc, cred, alice) = setup();
        let civ = domain.civ();
        civ.validate_at_replica(1, &cred, &alice, 1).unwrap();
        civ.fail_replica(1).unwrap();
        assert_eq!(civ.live_replicas(), 2);

        svc.revoke_certificate(cred.crr().cert_id, "done", 2);
        domain.civ().set_issuer_up(svc.id(), false);

        // Replica 0 applied the revocation; the failed replica 1 did not,
        // and with the issuer down it wrongly vouches from memory: the
        // staleness window ref [10]'s consistency management closes.
        assert!(civ.validate_at_replica(0, &cred, &alice, 3).is_err());
        assert!(civ.validate_at_replica(1, &cred, &alice, 3).is_ok());

        // Recovery replays the log and closes the window.
        civ.recover_replica(1).unwrap();
        assert!(civ.validate_at_replica(1, &cred, &alice, 4).is_err());
        assert_eq!(civ.log_len(), 1);
    }

    #[test]
    fn all_replicas_down_is_unavailable() {
        let (domain, _svc, cred, alice) = setup();
        for i in 0..3 {
            domain.civ().fail_replica(i).unwrap();
        }
        assert!(matches!(
            domain.civ().validate(&cred, &alice, 1),
            Err(OasisError::NoValidator(_))
        ));
        assert_eq!(domain.civ().stats().unavailable, 1);
    }

    #[test]
    fn bad_replica_index_rejected() {
        let (domain, _svc, _cred, _alice) = setup();
        assert!(matches!(
            domain.civ().fail_replica(99),
            Err(crate::DomainError::NoSuchReplica {
                index: 99,
                factor: 3
            })
        ));
    }
}
