//! FIG-4 — the role membership certificate design.
//!
//! Fig 4 shows the RMC layout: readable role/parameter fields, a
//! credential record reference, and a signature
//! `F(principal_id, protected fields, SECRET)`. The experiment measures
//! the cryptographic costs that design implies — issue (MAC), verify,
//! tamper-detection — across parameter counts, and verifies the security
//! properties quantitatively: zero forged/tampered/stolen certificates
//! accepted over a large randomised corpus.
//!
//! Reported series: issue/verify cost vs parameter count; acceptance
//! matrix for {honest, tampered, stolen, forged} × 10 000 trials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::core::cert::Rmc;
use oasis::core::{CertId, Crr};
use oasis::crypto::{IssuerSecret, SecretEpoch, SecretKey};
use oasis::prelude::*;
use oasis_bench::table_header;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn sample_rmc(key: &SecretKey, principal: &PrincipalId, params: usize) -> Rmc {
    Rmc::issue(
        key,
        SecretEpoch(0),
        principal,
        Crr::new(ServiceId::new("svc"), CertId(1)),
        RoleName::new("treating_doctor"),
        (0..params)
            .map(|i| Value::id(format!("param-{i}")))
            .collect(),
        0,
        None,
    )
}

fn print_security_matrix() {
    table_header(
        "FIG-4 certificate security matrix (10 000 randomised trials each)",
        "tampering, theft, and forgery are all rejected; honest certificates all verify",
        "attack     accepted  rejected",
    );
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let secret = IssuerSecret::random();
    let key = secret.current();
    let trials = 10_000;

    let mut honest_ok = 0;
    let mut tampered_ok = 0;
    let mut stolen_ok = 0;
    let mut forged_ok = 0;
    for i in 0..trials {
        let principal = PrincipalId::new(format!("p{i}"));
        let rmc = sample_rmc(&key, &principal, 3);

        if rmc.verify(&key, &principal) {
            honest_ok += 1;
        }

        // Tamper with a random parameter.
        let mut tampered = rmc.clone();
        let idx = rng.random_range(0..tampered.args.len());
        tampered.args[idx] = Value::id(format!("evil-{i}"));
        if tampered.verify(&key, &principal) {
            tampered_ok += 1;
        }

        // Theft: present under a different principal id.
        if rmc.verify(&key, &PrincipalId::new(format!("thief{i}"))) {
            stolen_ok += 1;
        }

        // Forgery: sign with a guessed secret.
        let mut guessed = [0u8; 32];
        rng.fill(&mut guessed);
        let forged = sample_rmc(&SecretKey::from_bytes(guessed), &principal, 3);
        if forged.verify(&key, &principal) {
            forged_ok += 1;
        }
    }
    println!("honest     {honest_ok:>8}  {:>8}", trials - honest_ok);
    println!("tampered   {tampered_ok:>8}  {:>8}", trials - tampered_ok);
    println!("stolen     {stolen_ok:>8}  {:>8}", trials - stolen_ok);
    println!("forged     {forged_ok:>8}  {:>8}", trials - forged_ok);
    assert_eq!(honest_ok, trials);
    assert_eq!(tampered_ok + stolen_ok + forged_ok, 0);
}

fn bench(c: &mut Criterion) {
    print_security_matrix();

    let secret = IssuerSecret::random();
    let key = secret.current();
    let alice = PrincipalId::new("alice");

    let mut group = c.benchmark_group("fig4_certificate_crypto");
    for params in [0usize, 2, 8, 32] {
        group.bench_with_input(BenchmarkId::new("issue", params), &params, |b, &p| {
            b.iter(|| sample_rmc(&key, &alice, p));
        });
        let rmc = sample_rmc(&key, &alice, params);
        group.bench_with_input(BenchmarkId::new("verify", params), &params, |b, _| {
            b.iter(|| assert!(rmc.verify(&key, &alice)));
        });
    }
    group.finish();

    // The issuer-side validation callback in full (MAC + record + status),
    // which is what a CIV serves per request.
    let world = oasis_bench::ServiceWorld::new(10);
    let ctx = EnvContext::new(0);
    let dr = PrincipalId::new("dr-0");
    let rmc = world
        .service
        .activate_role(
            &dr,
            &RoleName::new("logged_in"),
            &[Value::id("dr-0")],
            &[],
            &ctx,
        )
        .unwrap();
    let cred = Credential::Rmc(rmc);
    c.bench_function("fig4_full_validation_callback", |b| {
        b.iter(|| world.service.validate_own(&cred, &dr, 1).unwrap());
    });
}

criterion_group! {
    // Bounded measurement: several benchmarks accumulate issuer-side
    // state (credential records, audit entries) per iteration, so the
    // sampling windows are kept short to bound memory on full runs.
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
