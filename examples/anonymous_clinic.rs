//! Sect. 5's anonymity scenario: anonymous genetic testing under an
//! insurance scheme.
//!
//! Run with `cargo run --example anonymous_clinic`.
//!
//! "Someone who has paid for medical insurance may take certain genetic
//! tests anonymously. The insurance company's membership database contains
//! the members' data; the genetic clinic has no access to this. The
//! insurance company must not know the results of the genetic test, or
//! even that it has taken place. The clinic, for accounting purposes,
//! must ensure that the test is authorised under the scheme."
//!
//! Mechanics: the member holds a computer-readable membership card — an
//! appointment certificate naming only the scheme and expiry date. At the
//! clinic they activate `paid_up_patient` under a **pseudonym**. This
//! works because the card is re-issued bound to the pseudonymous id the
//! member chooses for the clinic visit (the paper's session-specific
//! principal ids, Sect. 4.1): the insurer can verify its own signature
//! without learning where the card was presented, and the clinic never
//! learns the real identity.

use oasis::prelude::*;
use oasis_core::CredentialKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let federation = Federation::new();
    let insurer = Domain::new("mutual-life", federation.bus().clone());
    let clinic = Domain::new("helix-clinic", federation.bus().clone());
    federation.register(&insurer);
    federation.register(&clinic);

    // --- The insurance company -------------------------------------------
    let membership = insurer.create_service("mutual-life.membership");
    membership.set_validator(federation.validator_for("mutual-life"));
    insurer.facts().define("premiums_paid", 1)?;

    membership.define_role("membership_clerk", &[], true)?;
    membership.add_activation_rule("membership_clerk", vec![], vec![], vec![])?;
    membership.grant_appointer("membership_clerk", "scheme_member")?;

    // --- The clinic ---------------------------------------------------------
    let testing = clinic.create_service("helix-clinic.testing");
    testing.set_validator(federation.validator_for("helix-clinic"));

    testing.define_role("paid_up_patient", &[], true)?;
    // Activation rule: the membership card plus the environmental
    // constraint that the test starts before the expiry date. No identity
    // parameter appears anywhere.
    testing.add_activation_rule(
        "paid_up_patient",
        vec![],
        vec![
            Atom::appointment_from(
                "mutual-life.membership",
                "scheme_member",
                vec![
                    Term::val(Value::id("gene-test-scheme")),
                    Term::var("Expiry"),
                ],
            ),
            Atom::compare(Term::var("$now"), CmpOp::Lt, Term::var("Expiry")),
        ],
        vec![],
    )?;
    testing.add_invocation_rule(
        "run_genetic_test",
        vec![],
        vec![Atom::prereq("paid_up_patient", vec![])],
    );

    federation.add_sla(
        Sla::between("helix-clinic", "mutual-life").accept(SlaClause {
            issuer: "mutual-life.membership".into(),
            name: "scheme_member".into(),
            kind: CredentialKind::Appointment,
        }),
    );

    // --- The story ------------------------------------------------------------
    let clerk = PrincipalId::new("clerk-5");
    let ctx = EnvContext::new(0);
    let clerk_role =
        membership.activate_role(&clerk, &RoleName::new("membership_clerk"), &[], &[], &ctx)?;

    // The member pays premiums under their real identity, but asks for the
    // card to be bound to a pseudonym of their choosing — the insurer
    // learns nothing from seeing the pseudonym later, and never does.
    let pseudonym = PrincipalId::new("patient-a81f");
    let card = membership.issue_appointment(
        &clerk,
        &[Credential::Rmc(clerk_role)],
        "scheme_member",
        vec![Value::id("gene-test-scheme"), Value::Time(1_000)],
        &pseudonym,
        Some(1_000),
        None,
        &ctx,
    )?;
    println!("membership card issued to pseudonym: {card}");

    // At the clinic: the card is validated at the issuing service (the
    // trusted third party) before role activation proceeds — the insurer
    // sees a validation callback for an opaque pseudonym, not a test.
    let patient_role = testing.activate_role(
        &pseudonym,
        &RoleName::new("paid_up_patient"),
        &[],
        &[Credential::Appointment(card.clone())],
        &EnvContext::new(100),
    )?;
    testing.invoke(
        &pseudonym,
        "run_genetic_test",
        &[],
        &[Credential::Rmc(patient_role)],
        &EnvContext::new(100),
    )?;
    println!("test authorised and run — clinic knows only `{pseudonym}`");

    // The clinic's books show an authorised test; nothing identifies the
    // member, and the insurer's audit shows only a card issuance.
    println!("\nclinic audit:");
    for entry in testing.audit().entries() {
        println!("  {entry}");
    }
    println!("insurer audit:");
    for entry in membership.audit().entries() {
        println!("  {entry}");
    }

    // After the scheme lapses the card stops working (environmental
    // constraint on the activation rule).
    let lapsed = testing.activate_role(
        &pseudonym,
        &RoleName::new("paid_up_patient"),
        &[],
        &[Credential::Appointment(card)],
        &EnvContext::new(2_000),
    );
    println!("\nafter expiry: {}", lapsed.unwrap_err());
    Ok(())
}
