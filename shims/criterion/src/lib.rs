//! Minimal, dependency-free replacement for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `iter_with_setup`, `BenchmarkId`, `criterion_group!`, `criterion_main!`,
//! `black_box` — over plain `std::time::Instant` wall-clock sampling.
//! Reports min/mean/max time per iteration to stdout in a criterion-like
//! format. No statistical outlier analysis, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(250),
        }
    }
}

/// Benchmark driver. Construct with [`Criterion::default`], then configure
/// with the builder methods.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, &id.into().label(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _criterion: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(&self.config, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(&self.config, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: Some(s),
            parameter: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    config: Config,
    report: Option<Report>,
}

#[derive(Clone, Copy, Debug)]
struct Report {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

impl Bencher {
    /// Measure `f` called in calibrated batches until the configured
    /// measurement time is spent.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up doubles as calibration for the batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);
        let samples = self.config.sample_size;
        let target_sample_ns = self.config.measurement_time.as_nanos() as f64 / samples as f64;
        let batch = ((target_sample_ns / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.report = Some(summarise(&times));
    }

    /// Measure `routine` only, excluding `setup`, one timed call per sample.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        for _ in 0..2 {
            let input = setup();
            black_box(routine(input));
        }
        let samples = self.config.sample_size;
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed().as_nanos() as f64);
        }
        self.report = Some(summarise(&times));
    }
}

fn summarise(times: &[f64]) -> Report {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for &t in times {
        min = min.min(t);
        max = max.max(t);
        sum += t;
    }
    Report {
        min_ns: min,
        mean_ns: sum / times.len().max(1) as f64,
        max_ns: max,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(config: &Config, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        config: config.clone(),
        report: None,
    };
    f(&mut bencher);
    match bencher.report {
        Some(r) => println!(
            "{label:<48} time:   [{} {} {}]",
            format_ns(r.min_ns),
            format_ns(r.mean_ns),
            format_ns(r.max_ns)
        ),
        None => println!("{label:<48} time:   [no measurement recorded]"),
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_report() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(9), |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
        g.finish();
    }
}
