//! FIG-1 — role dependency through prerequisite roles.
//!
//! Fig 1 of the paper shows service C's activation rule consuming RMCs
//! issued by services A and B, building a dependency tree rooted in the
//! session's initial role. The measurable content of the figure: sessions
//! are *chains/trees of activations*, so session-establishment cost grows
//! linearly with dependency depth, and each activation is cheap (a rule
//! evaluation plus a MAC).
//!
//! Reported series: time to establish a session of depth d, for
//! d ∈ {1, 2, 4, 8, 16, 32}; plus the per-activation cost at depth 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::prelude::*;
use oasis_bench::{table_header, ChainWorld};

fn print_series() {
    table_header(
        "FIG-1 role dependency",
        "session establishment scales linearly with prerequisite depth",
        "depth  activations  cost-shape",
    );
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let world = ChainWorld::new(depth);
        let rmcs = world.activate_chain(&PrincipalId::new("alice"));
        println!(
            "{depth:>5}  {:>11}  one rule evaluation + one MAC each",
            rmcs.len()
        );
        assert_eq!(rmcs.len(), depth);
        // The dependency edges of the figure exist end-to-end.
        for pair in rmcs.windows(2) {
            let deps = world.service.dependencies(pair[1].crr.cert_id).unwrap();
            assert_eq!(deps, vec![pair[0].crr.clone()]);
        }
    }
}

fn bench(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("fig1_session_establishment");
    for depth in [1usize, 4, 8, 16, 32] {
        let world = ChainWorld::new(depth);
        let alice = PrincipalId::new("alice");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| world.activate_chain(&alice));
        });
    }
    group.finish();

    // Single-activation cost with the prerequisite already in hand.
    let world = ChainWorld::new(2);
    let alice = PrincipalId::new("alice");
    let root = world.activate_chain(&alice).remove(0);
    let ctx = EnvContext::new(0);
    let cred = [Credential::Rmc(root)];
    c.bench_function("fig1_single_activation_with_prereq", |b| {
        b.iter(|| {
            world
                .service
                .activate_role(&alice, &RoleName::new("level1"), &[], &cred, &ctx)
                .unwrap()
        });
    });
}

criterion_group! {
    // Bounded measurement: several benchmarks accumulate issuer-side
    // state (credential records, audit entries) per iteration, so the
    // sampling windows are kept short to bound memory on full runs.
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
