//! `oasis-obs` — unified metrics registry + end-to-end causal tracing.
//!
//! Before this crate, each subsystem carried a private ad-hoc `*Stats`
//! struct with hand-rolled JSON, and nothing correlated one request
//! across admission → compiled-plan activation → replicated append →
//! revocation fan-out. This crate is the one seam:
//!
//! * [`Recorder`] / [`Registry`] / [`NoopRecorder`] — named counters
//!   (thread-striped atomics), gauges, and fixed-bucket log2
//!   [`Histogram`]s with p50/p90/p99/p999 readout; one
//!   [`Recorder::snapshot_json`] returns the whole system as canonical
//!   sorted-key JSON.
//! * [`TraceCtx`] / [`SpanSink`] — a three-integer causal context
//!   propagated in the wire envelope next to the deadline frame, through
//!   admission tickets, plan activation, quorum append, and cascade
//!   fan-out; spans serialize as sorted-key JSONL and are
//!   byte-deterministic under a virtual clock, so the conformance matrix
//!   replays them.
//! * [`encode`] — the canonical JSON encoder everything above (and
//!   `oasis-sim::Trace`) shares.
//!
//! This is a leaf crate (only `parking_lot`); every other crate in the
//! workspace may depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod hist;
pub mod registry;
pub mod span;

pub use encode::{escape_json, kv_json, render_fields, TraceValue};
pub use hist::Histogram;
pub use registry::{Counter, Gauge, Histo, NoopRecorder, Recorder, Registry, StatsSource};
pub use span::{current, scope, ScopeGuard, SpanSink, TraceCtx};
