//! Compilation of a checked AST onto a live `OasisService`.

use std::sync::Arc;

use oasis_core::{Atom, OasisService, ServiceId};

use crate::ast::*;
use crate::check::referenced_relations;
use crate::error::PolicyError;

pub(crate) fn apply(ast: &PolicyAst, service: &Arc<OasisService>) -> Result<(), PolicyError> {
    let block = ast
        .services
        .iter()
        .find(|s| s.name == service.id().as_str())
        .ok_or_else(|| PolicyError::NoSuchService(service.id().to_string()))?;

    // Declare referenced env relations so rules never hit an undefined
    // relation at evaluation time.
    for (relation, arity) in referenced_relations(block) {
        service
            .facts()
            .define_if_absent(relation, arity)
            .map_err(|e| PolicyError::Core(e.to_string()))?;
    }

    for role in &block.roles {
        let params: Vec<(&str, oasis_core::ValueType)> =
            role.params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        service.define_role(role.name.as_str(), &params, role.initial)?;
    }

    for grant in &block.appointers {
        service.grant_appointer(grant.role.as_str(), grant.appointment.as_str())?;
    }

    for rule in &block.rules {
        let conditions: Vec<Atom> = rule.conditions.iter().map(compile_condition).collect();
        service.add_activation_rule(
            rule.role.as_str(),
            rule.head_args.clone(),
            conditions,
            rule.effective_membership(),
        )?;
    }

    for inv in &block.invocations {
        let conditions: Vec<Atom> = inv.conditions.iter().map(compile_condition).collect();
        service.add_invocation_rule(inv.method.as_str(), inv.head_args.clone(), conditions);
    }

    Ok(())
}

fn compile_condition(cond: &Condition) -> Atom {
    match &cond.kind {
        ConditionKind::Prereq {
            service,
            role,
            args,
        } => Atom::Prereq {
            service: service.as_ref().map(|s| ServiceId::new(s.clone())),
            role: role.as_str().into(),
            args: args.clone(),
        },
        ConditionKind::Appointment {
            service,
            name,
            args,
        } => Atom::Appointment {
            issuer: service.as_ref().map(|s| ServiceId::new(s.clone())),
            name: name.clone(),
            args: args.clone(),
        },
        ConditionKind::Fact {
            relation,
            args,
            negated,
        } => Atom::EnvFact {
            relation: relation.clone(),
            args: args.clone(),
            negated: *negated,
        },
        ConditionKind::Compare { left, op, right } => Atom::EnvCompare {
            left: left.clone(),
            op: *op,
            right: right.clone(),
        },
        ConditionKind::Predicate { name, args } => Atom::EnvPredicate {
            name: name.clone(),
            args: args.clone(),
        },
    }
}
