//! Property tests for topic pattern matching: the optimised matcher must
//! agree with a naive reference implementation, and the bus must deliver
//! exactly to matching subscribers.

use proptest::prelude::*;

use oasis_events::{EventBus, Topic, TopicPattern};

fn segment() -> impl Strategy<Value = String> {
    "[a-c]{1,2}"
}

fn topic_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(segment(), 1..5).prop_map(|segs| segs.join("."))
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    let seg = prop_oneof![segment(), Just("*".to_string())];
    (proptest::collection::vec(seg, 1..5), proptest::bool::ANY).prop_map(|(mut segs, hash)| {
        if hash {
            segs.push("#".to_string());
        }
        segs.join(".")
    })
}

/// Reference matcher, written independently of the production code.
fn reference_matches(pattern: &str, topic: &str) -> bool {
    fn go(pat: &[&str], top: &[&str]) -> bool {
        match (pat.first(), top.first()) {
            (None, None) => true,
            (Some(&"#"), _) => pat.len() == 1, // `#` is final by construction
            (None, Some(_)) => false,
            (Some(_), None) => false,
            (Some(&"*"), Some(_)) => go(&pat[1..], &top[1..]),
            (Some(p), Some(t)) => p == t && go(&pat[1..], &top[1..]),
        }
    }
    let pat: Vec<&str> = pattern.split('.').collect();
    let top: Vec<&str> = topic.split('.').collect();
    go(&pat, &top)
}

proptest! {
    #[test]
    fn matcher_agrees_with_reference(
        pattern in pattern_strategy(),
        topic in topic_strategy(),
    ) {
        let parsed = TopicPattern::parse(pattern.clone()).unwrap();
        let t = Topic::new(topic.clone());
        prop_assert_eq!(
            parsed.matches(&t),
            reference_matches(&pattern, &topic),
            "pattern {} vs topic {}",
            pattern,
            topic
        );
    }

    #[test]
    fn every_topic_matches_itself_and_hash(topic in topic_strategy()) {
        let t = Topic::new(topic.clone());
        let exact = TopicPattern::parse(topic).unwrap();
        prop_assert!(exact.matches(&t));
        prop_assert!(exact.is_exact());
        let all = TopicPattern::parse("#").unwrap();
        prop_assert!(all.matches(&t));
    }

    #[test]
    fn bus_delivers_exactly_to_matching_subscribers(
        patterns in proptest::collection::vec(pattern_strategy(), 1..6),
        topics in proptest::collection::vec(topic_strategy(), 1..10),
    ) {
        let bus: EventBus<usize> = EventBus::new();
        let subs: Vec<_> = patterns
            .iter()
            .map(|p| bus.subscribe(p).unwrap())
            .collect();
        for (i, topic) in topics.iter().enumerate() {
            bus.publish(&Topic::new(topic.clone()), i);
        }
        for (pattern, sub) in patterns.iter().zip(&subs) {
            let got: Vec<usize> = sub.drain().into_iter().map(|e| e.payload).collect();
            let expected: Vec<usize> = topics
                .iter()
                .enumerate()
                .filter(|(_, t)| reference_matches(pattern, t))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, expected, "pattern {}", pattern);
        }
    }
}
