//! Integration: failure injection — CIV replica crashes mid-stream,
//! issuer outages, lost revocation events, partitions in the simulated
//! network, and the defence layers (replication, TTL backstops,
//! heartbeats) the architecture prescribes for each.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use oasis::events::{HeartbeatMonitor, SourceHealth, SourceId};
use oasis::prelude::*;
use oasis::sim::{Latency, LinkConfig, SimNet, Simulation};
use oasis_core::CredentialValidator;

fn guest_world() -> (
    Arc<Domain>,
    Arc<oasis_core::OasisService>,
    Credential,
    PrincipalId,
) {
    let domain = Domain::new("d", EventBus::new());
    let svc = domain.create_service("svc");
    svc.define_role("guest", &[("u", ValueType::Id)], true)
        .unwrap();
    svc.add_activation_rule("guest", vec![Term::var("U")], vec![], vec![])
        .unwrap();
    let alice = PrincipalId::new("alice");
    let rmc = svc
        .activate_role(
            &alice,
            &RoleName::new("guest"),
            &[Value::id("alice")],
            &[],
            &EnvContext::new(0),
        )
        .unwrap();
    (domain, svc, Credential::Rmc(rmc), alice)
}

#[test]
fn validation_survives_one_and_two_replica_crashes() {
    let (domain, _svc, cred, alice) = guest_world();
    let civ = domain.civ();
    civ.validate(&cred, &alice, 1).unwrap();

    civ.fail_replica(0).unwrap();
    assert!(civ.validate(&cred, &alice, 2).is_ok(), "replica 1 serves");
    civ.fail_replica(1).unwrap();
    assert!(civ.validate(&cred, &alice, 3).is_ok(), "replica 2 serves");
    civ.fail_replica(2).unwrap();
    assert!(civ.validate(&cred, &alice, 4).is_err(), "no replicas left");

    civ.recover_replica(0).unwrap();
    assert!(civ.validate(&cred, &alice, 5).is_ok());
}

#[test]
fn issuer_outage_bridged_by_replica_memory_then_revocation_still_wins() {
    let (domain, svc, cred, alice) = guest_world();
    let civ = domain.civ();
    civ.validate(&cred, &alice, 1).unwrap();

    // Issuer goes down; the replica vouches from memory.
    civ.set_issuer_up(svc.id(), false);
    assert!(civ.validate(&cred, &alice, 2).is_ok());

    // The issuer comes back just long enough to revoke, then dies again.
    civ.set_issuer_up(svc.id(), true);
    svc.revoke_certificate(cred.crr().cert_id, "compromised", 3);
    civ.set_issuer_up(svc.id(), false);

    // The revocation log wins over the stale validation memory.
    assert!(civ.validate(&cred, &alice, 4).is_err());
}

#[test]
fn replica_crash_during_revocation_storm_recovers_consistently() {
    let domain = Domain::new("d", EventBus::new());
    let svc = domain.create_service("svc");
    svc.define_role("guest", &[("n", ValueType::Int)], true)
        .unwrap();
    svc.add_activation_rule("guest", vec![Term::var("N")], vec![], vec![])
        .unwrap();
    let alice = PrincipalId::new("alice");
    let ctx = EnvContext::new(0);
    let rmcs: Vec<_> = (0..50)
        .map(|n| {
            svc.activate_role(&alice, &RoleName::new("guest"), &[Value::Int(n)], &[], &ctx)
                .unwrap()
        })
        .collect();
    let civ = domain.civ();
    for rmc in &rmcs {
        civ.validate_at_replica(1, &Credential::Rmc(rmc.clone()), &alice, 1)
            .unwrap();
    }

    // Replica 1 crashes partway through a revocation storm.
    for rmc in &rmcs[..20] {
        svc.revoke_certificate(rmc.crr.cert_id, "storm", 2);
    }
    civ.fail_replica(1).unwrap();
    for rmc in &rmcs[20..40] {
        svc.revoke_certificate(rmc.crr.cert_id, "storm", 3);
    }

    // While down (and with the issuer unreachable), the crashed replica
    // would wrongly vouch for revocations it missed.
    civ.set_issuer_up(svc.id(), false);
    let missed = &rmcs[25];
    assert!(civ
        .validate_at_replica(1, &Credential::Rmc(missed.clone()), &alice, 4)
        .is_ok());

    // Recovery replays the log: all 40 revocations now hold at replica 1.
    civ.recover_replica(1).unwrap();
    for rmc in &rmcs[..40] {
        assert!(civ
            .validate_at_replica(1, &Credential::Rmc(rmc.clone()), &alice, 5)
            .is_err());
    }
    // The 10 never-revoked certificates still vouch from memory.
    for rmc in &rmcs[40..] {
        assert!(civ
            .validate_at_replica(1, &Credential::Rmc(rmc.clone()), &alice, 5)
            .is_ok());
    }
}

#[test]
fn lost_revocation_event_is_bounded_by_ttl_backstop() {
    // A proxy whose push channel is gone (modelling a lost event /
    // partitioned event fabric) keeps serving a revoked credential — but
    // only until its TTL, which bounds the damage.
    let (domain, svc, cred, alice) = guest_world();
    let ttl = 50;
    let proxy = EcrProxy::without_push(
        {
            let civ: Arc<dyn CredentialValidator> = domain.civ().clone();
            civ
        },
        ttl,
    );
    proxy.validate(&cred, &alice, 0).unwrap();
    svc.revoke_certificate(cred.crr().cert_id, "gone", 1);

    let mut stale_accepts = 0;
    for t in 2..200 {
        if proxy.validate(&cred, &alice, t).is_ok() {
            stale_accepts += 1;
        }
    }
    assert!(
        stale_accepts > 0,
        "without push there IS a staleness window"
    );
    assert!(
        stale_accepts <= ttl as usize,
        "but it is bounded by the TTL: {stale_accepts} > {ttl}"
    );
}

#[test]
fn partitioned_issuer_detected_by_heartbeats_in_simulation() {
    // Drive a heartbeat monitor from the discrete-event simulation: the
    // issuer beats every 10 ticks over the simulated network; a partition
    // at t=100 silences it, and the holder observes Late → Dead at the
    // prescribed thresholds.
    let mut sim = Simulation::new(5);
    let net = Rc::new(RefCell::new(SimNet::new(LinkConfig::clean(
        Latency::Constant(2),
    ))));
    let monitor = Rc::new(HeartbeatMonitor::new(3));
    let issuer = SourceId::new("issuer");
    monitor.register(issuer.clone(), 10, 0);

    // Issuer beats every 10 ticks until t=200.
    for t in (10..200).step_by(10) {
        let net = Rc::clone(&net);
        let monitor = Rc::clone(&monitor);
        let issuer = issuer.clone();
        sim.schedule_at(t, move |sim| {
            let monitor = Rc::clone(&monitor);
            let issuer = issuer.clone();
            net.borrow_mut().send(sim, "issuer", "holder", move |sim| {
                monitor.beat(&issuer, sim.now());
            });
        });
    }
    // Partition at t=100.
    {
        let net = Rc::clone(&net);
        sim.schedule_at(100, move |_| {
            net.borrow_mut().partition("issuer", "holder");
        });
    }
    // Observations.
    let observations = Rc::new(RefCell::new(Vec::new()));
    for t in [95u64, 105, 115, 140] {
        let monitor = Rc::clone(&monitor);
        let issuer = issuer.clone();
        let observations = Rc::clone(&observations);
        sim.schedule_at(t, move |sim| {
            observations
                .borrow_mut()
                .push((sim.now(), monitor.health(&issuer, sim.now()).unwrap()));
        });
    }
    sim.run();

    let obs = observations.borrow();
    assert_eq!(obs[0].1, SourceHealth::Healthy, "before the partition");
    // Last beat delivered was sent at t=90, arriving t=92. At t=105 the
    // monitor is inside one interval+slack; by 115 it is Late; by 140,
    // past 3 intervals, Dead.
    assert_eq!(obs[2].1, SourceHealth::Late, "one missed interval");
    assert_eq!(obs[3].1, SourceHealth::Dead, "silence past the threshold");
}

#[test]
fn heartbeat_guarded_cache_closes_the_lost_event_window() {
    // The full Fig 5 belt-and-braces configuration: an ECR cache that is
    // push-invalidated AND heartbeat-guarded. When the event channel
    // fails silently (here: the revocation event is published on a bus
    // the proxy is not subscribed to, modelling a partition), the missing
    // heartbeats alone stop the cache from vouching.
    let (domain, svc, cred, alice) = guest_world();

    let monitor = Arc::new(HeartbeatMonitor::new(3));
    let issuer_source = SourceId::new(svc.id().as_str());
    monitor.register(issuer_source.clone(), 10, 0);

    // Subscribe the proxy to a *disconnected* bus: pushes never arrive.
    let dead_bus: EventBus<CertEvent> = EventBus::new();
    let upstream: Arc<dyn CredentialValidator> = domain.civ().clone();
    let proxy = EcrProxy::with_heartbeats(upstream, &dead_bus, u64::MAX, monitor.clone());

    monitor.beat(&issuer_source, 5);
    proxy.validate(&cred, &alice, 6).unwrap();
    proxy.validate(&cred, &alice, 7).unwrap();
    assert_eq!(proxy.stats().hits, 1);

    // Revocation happens; the push never reaches the proxy (dead bus).
    svc.revoke_certificate(cred.crr().cert_id, "gone", 8);
    // …and the partition also stops the heartbeats. Once the issuer is
    // no longer Healthy, the cache refuses to vouch and the callback
    // discovers the revocation.
    assert!(
        proxy.validate(&cred, &alice, 9).is_ok(),
        "inside the heartbeat window the stale cache still answers — the bounded risk"
    );
    assert!(
        proxy.validate(&cred, &alice, 50).is_err(),
        "past the heartbeat window the guard forces a callback, which denies"
    );
    assert!(proxy.stats().heartbeat_bypasses >= 1);
}

#[test]
fn lossy_network_eventually_delivers_with_retries() {
    // A 40%-lossy link: a sender retrying every 5 ticks until acked gets
    // the revocation through; the simulation is deterministic per seed.
    let mut sim = Simulation::new(11);
    let net = Rc::new(RefCell::new(SimNet::new(LinkConfig {
        latency: Latency::Constant(1),
        loss: 0.4,
        ..LinkConfig::default()
    })));
    let delivered = Rc::new(RefCell::new(None::<u64>));

    fn attempt(
        sim: &mut Simulation,
        net: Rc<RefCell<SimNet>>,
        delivered: Rc<RefCell<Option<u64>>>,
    ) {
        if delivered.borrow().is_some() {
            return;
        }
        let ok = {
            let d2 = Rc::clone(&delivered);
            net.borrow_mut().send(sim, "a", "b", move |sim| {
                d2.borrow_mut().get_or_insert(sim.now());
            })
        };
        let _ = ok;
        let net2 = Rc::clone(&net);
        let d3 = Rc::clone(&delivered);
        sim.schedule_in(5, move |sim| attempt(sim, net2, d3));
    }

    {
        let net = Rc::clone(&net);
        let delivered = Rc::clone(&delivered);
        sim.schedule_at(0, move |sim| attempt(sim, net, delivered));
    }
    sim.run_until(1_000);
    assert!(
        delivered.borrow().is_some(),
        "retries must eventually deliver over a 40% lossy link"
    );
}
