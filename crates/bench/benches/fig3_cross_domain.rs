//! FIG-3 — an OASIS session with cross-domain calls.
//!
//! Fig 3's scenario sends request-EHR from a hospital domain to the
//! national EHR domain; the national service validates the hospital's
//! credential by callback. The architectural claim exercised here: with
//! validation caching (the ECR proxy of Fig 5) the callback cost is paid
//! once per credential, so a burst of n cross-domain calls does ~1
//! callback instead of n; and under simulated WAN latency the end-to-end
//! difference is dominated by exactly those callbacks.
//!
//! Reported series: (a) callbacks issued for a burst of n calls, cached
//! vs uncached; (b) simulated end-to-end latency of the Fig 3 exchange
//! under LAN/WAN latency models, cached vs uncached.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::prelude::*;
use oasis::sim::{Histogram, Latency, LinkConfig, SimNet, Simulation};
use oasis_bench::{table_header, CrossDomainWorld};

fn print_callback_series() {
    table_header(
        "FIG-3 cross-domain calls (callback amortisation)",
        "an ECR cache pays one validation callback per credential, not per call",
        "burst  callbacks(uncached)  callbacks(cached)",
    );
    for burst in [1usize, 10, 100, 1_000] {
        // Uncached: every invoke validates through the federation.
        let world = CrossDomainWorld::new();
        let rmc = world.issue_treating("dr-a", "p-1");
        let dr = PrincipalId::new("dr-a");
        let ctx = EnvContext::new(1);
        let before = world.hospital.civ().stats().validations;
        for _ in 0..burst {
            world
                .ehr
                .invoke(
                    &dr,
                    "request_ehr",
                    &[Value::id("p-1")],
                    std::slice::from_ref(&Credential::Rmc(rmc.clone())),
                    &ctx,
                )
                .unwrap();
        }
        let uncached = world.hospital.civ().stats().validations - before;

        // Cached: the national service fronts validation with an ECR proxy.
        let world = CrossDomainWorld::new();
        let rmc = world.issue_treating("dr-a", "p-1");
        let proxy = EcrProxy::new(
            world.federation.validator_for("national"),
            world.federation.bus(),
            u64::MAX,
        );
        world.ehr.set_validator(proxy.clone());
        for _ in 0..burst {
            world
                .ehr
                .invoke(
                    &dr,
                    "request_ehr",
                    &[Value::id("p-1")],
                    std::slice::from_ref(&Credential::Rmc(rmc.clone())),
                    &ctx,
                )
                .unwrap();
        }
        let cached = proxy.stats().misses;
        println!("{burst:>5}  {uncached:>19}  {cached:>17}");
    }
}

/// Simulates the Fig 3 exchange end-to-end under a latency model:
/// client → ehr (request), ehr → hospital CIV (validation callback, only
/// on cache miss), hospital → ehr (validation reply), ehr → client.
/// Returns the completion-time histogram for `calls` sequential calls.
fn simulate_exchange(latency: Latency, calls: usize, cached: bool) -> Histogram {
    let mut sim = Simulation::new(7);
    let histogram = Rc::new(RefCell::new(Histogram::new()));

    // Validation state shared across calls (the cache).
    let validated = Rc::new(RefCell::new(false));

    for i in 0..calls {
        let start = (i as u64) * 10_000;
        let hist = Rc::clone(&histogram);
        let validated = Rc::clone(&validated);
        sim.schedule_at(start, move |sim| {
            // client → ehr
            let hist = Rc::clone(&hist);
            let validated = Rc::clone(&validated);
            let mut inner_net = SimNet::new(LinkConfig::clean(latency));
            inner_net.send(sim, "client", "ehr", move |sim| {
                let needs_callback = !(cached && *validated.borrow());
                let hist2 = Rc::clone(&hist);
                let mut net2 = SimNet::new(LinkConfig::clean(latency));
                if needs_callback {
                    let validated2 = Rc::clone(&validated);
                    net2.send(sim, "ehr", "hospital-civ", move |sim| {
                        *validated2.borrow_mut() = true;
                        let hist3 = Rc::clone(&hist2);
                        let mut net3 = SimNet::new(LinkConfig::clean(latency));
                        net3.send(sim, "hospital-civ", "ehr", move |sim| {
                            let hist4 = Rc::clone(&hist3);
                            let mut net4 = SimNet::new(LinkConfig::clean(latency));
                            net4.send(sim, "ehr", "client", move |sim| {
                                hist4.borrow_mut().record(sim.now() - start);
                            });
                        });
                    });
                } else {
                    net2.send(sim, "ehr", "client", move |sim| {
                        hist2.borrow_mut().record(sim.now() - start);
                    });
                }
            });
        });
    }
    sim.run();
    Rc::try_unwrap(histogram).unwrap().into_inner()
}

fn print_latency_series() {
    table_header(
        "FIG-3 cross-domain calls (simulated latency, 100 calls)",
        "under WAN latency the validation callback dominates; caching removes it",
        "link  mode      p50     p99",
    );
    for (name, latency) in [("LAN", Latency::lan()), ("WAN", Latency::wan())] {
        for (mode, cached) in [("callback", false), ("cached", true)] {
            let mut h = simulate_exchange(latency, 100, cached);
            println!(
                "{name:>4}  {mode:<8}  {:>6}  {:>6}",
                h.quantile(0.5).unwrap(),
                h.quantile(0.99).unwrap()
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_callback_series();
    print_latency_series();

    // In-process timing of the real cross-domain invocation, cached vs not.
    let mut group = c.benchmark_group("fig3_cross_domain_invoke");
    for cached in [false, true] {
        let world = CrossDomainWorld::new();
        let rmc = world.issue_treating("dr-a", "p-1");
        if cached {
            let proxy = EcrProxy::new(
                world.federation.validator_for("national"),
                world.federation.bus(),
                u64::MAX,
            );
            world.ehr.set_validator(proxy);
        }
        let dr = PrincipalId::new("dr-a");
        let ctx = EnvContext::new(1);
        let creds = [Credential::Rmc(rmc)];
        group.bench_with_input(
            BenchmarkId::from_parameter(if cached { "cached" } else { "callback" }),
            &cached,
            |b, _| {
                b.iter(|| {
                    world
                        .ehr
                        .invoke(&dr, "request_ehr", &[Value::id("p-1")], &creds, &ctx)
                        .unwrap()
                });
            },
        );
    }
    group.finish();

    // Simulated exchange as a whole (deterministic, so measured once per
    // iteration batch).
    c.bench_function("fig3_sim_wan_100calls_cached", |b| {
        b.iter(|| simulate_exchange(Latency::wan(), 100, true));
    });
}

criterion_group! {
    // Bounded measurement: several benchmarks accumulate issuer-side
    // state (credential records, audit entries) per iteration, so the
    // sampling windows are kept short to bound memory on full runs.
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
