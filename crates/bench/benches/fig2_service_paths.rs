//! FIG-2 — a service secured by OASIS access control (paths 1–4).
//!
//! Fig 2 draws the four interactions with a secured service: (1) present
//! credentials for role entry, (2) receive the RMC, (3) present the RMC
//! with an invocation, (4) the invocation proceeds after validation and
//! constraint checks. The experiment measures each path and shows that
//! service *use* (3–4) stays flat as the environmental database grows —
//! the point of hash-indexed constraint checking — while activation
//! (1–2) pays one additional indexed lookup.
//!
//! Reported series: activation and invocation latency with the
//! `registered` relation at 10² … 10⁵ rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use oasis::prelude::*;
use oasis_bench::{table_header, ServiceWorld};

fn establish(world: &ServiceWorld) -> (PrincipalId, Vec<Credential>) {
    let dr = PrincipalId::new("dr-0");
    let ctx = EnvContext::new(0);
    let login = world
        .service
        .activate_role(
            &dr,
            &RoleName::new("logged_in"),
            &[Value::id("dr-0")],
            &[],
            &ctx,
        )
        .unwrap();
    let treating = world
        .service
        .activate_role(
            &dr,
            &RoleName::new("treating_doctor"),
            &[Value::id("dr-0"), Value::id("p0")],
            &[Credential::Rmc(login.clone())],
            &ctx,
        )
        .unwrap();
    (dr, vec![Credential::Rmc(login), Credential::Rmc(treating)])
}

fn print_series() {
    table_header(
        "FIG-2 service paths",
        "role entry and service use stay cheap as the environment DB grows (indexed lookups)",
        "db-rows  path1-2(activate)  path3-4(invoke)",
    );
    for rows in [100usize, 1_000, 10_000, 100_000] {
        let world = ServiceWorld::new(rows);
        let (dr, creds) = establish(&world);
        let ctx = EnvContext::new(0);

        let t0 = std::time::Instant::now();
        let iters = 200;
        for _ in 0..iters {
            world
                .service
                .activate_role(
                    &dr,
                    &RoleName::new("treating_doctor"),
                    &[Value::id("dr-0"), Value::id("p0")],
                    &creds[..1],
                    &ctx,
                )
                .unwrap();
        }
        let act = t0.elapsed() / iters;

        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            world
                .service
                .invoke(&dr, "read_record", &[Value::id("p0")], &creds, &ctx)
                .unwrap();
        }
        let inv = t0.elapsed() / iters;
        println!("{rows:>7}  {act:>17.2?}  {inv:>15.2?}");
    }
}

fn bench(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("fig2_paths_vs_db_size");
    for rows in [100usize, 10_000, 100_000] {
        let world = ServiceWorld::new(rows);
        let (dr, creds) = establish(&world);
        let ctx = EnvContext::new(0);
        group.bench_with_input(BenchmarkId::new("activate", rows), &rows, |b, _| {
            b.iter(|| {
                world
                    .service
                    .activate_role(
                        &dr,
                        &RoleName::new("treating_doctor"),
                        &[Value::id("dr-0"), Value::id("p0")],
                        &creds[..1],
                        &ctx,
                    )
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("invoke", rows), &rows, |b, _| {
            b.iter(|| {
                world
                    .service
                    .invoke(&dr, "read_record", &[Value::id("p0")], &creds, &ctx)
                    .unwrap()
            });
        });
        // The denial path must be as cheap as the grant path (no
        // slow-path information leak / DoS amplification).
        group.bench_with_input(BenchmarkId::new("invoke_denied", rows), &rows, |b, _| {
            b.iter(|| {
                world
                    .service
                    .invoke(
                        &dr,
                        "read_record",
                        &[Value::id("p-unregistered")],
                        &creds,
                        &ctx,
                    )
                    .unwrap_err()
            });
        });
    }
    group.finish();
}

criterion_group! {
    // Bounded measurement: several benchmarks accumulate issuer-side
    // state (credential records, audit entries) per iteration, so the
    // sampling windows are kept short to bound memory on full runs.
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
