//! The server side: an [`OasisService`] behind a TCP listener.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use oasis_core::{CertId, EnvContext, OasisService, RoleName};

use crate::error::WireError;
use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response};

/// Builds the evaluation context for a given client-supplied virtual
/// time. Servers install ambient values and custom predicates here.
pub type ContextFactory = Arc<dyn Fn(u64) -> EnvContext + Send + Sync>;

/// Hosts one OASIS service over TCP.
pub struct WireServer {
    service: Arc<OasisService>,
    listener: TcpListener,
    context: ContextFactory,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("service", self.service.id())
            .finish()
    }
}

impl WireServer {
    /// Binds to `addr` and prepares to serve `service` with a default
    /// context (no ambient values or predicates).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound.
    pub fn bind(service: Arc<OasisService>, addr: &str) -> Result<Self, WireError> {
        Self::bind_with_context(service, addr, Arc::new(EnvContext::new))
    }

    /// As [`WireServer::bind`], with a custom [`ContextFactory`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the address cannot be bound.
    pub fn bind_with_context(
        service: Arc<OasisService>,
        addr: &str,
        context: ContextFactory,
    ) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            service,
            listener,
            context,
        })
    }

    /// The actual bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket refuses to report it.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, WireError> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts and serves connections forever (run on a dedicated
    /// thread). Each connection gets its own thread; a protocol error
    /// terminates only that connection.
    pub fn serve(self) -> Result<(), WireError> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let service = Arc::clone(&self.service);
            let context = Arc::clone(&self.context);
            std::thread::spawn(move || {
                // Connection errors are expected (clients hang up); they
                // must not take the server down.
                let _ = handle_connection(stream, service, context);
            });
        }
    }

    /// Spawns [`serve`](Self::serve) on a background thread and returns
    /// the bound address — the common pattern for tests and examples.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket refuses to report its address.
    pub fn serve_in_background(self) -> Result<std::net::SocketAddr, WireError> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || {
            let _ = self.serve();
        });
        Ok(addr)
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: Arc<OasisService>,
    context: ContextFactory,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    loop {
        let Some(request) = read_frame::<_, Request>(&mut stream)? else {
            return Ok(()); // clean disconnect
        };
        let response = handle_request(&service, &context, request);
        write_frame(&mut stream, &response)?;
    }
}

fn handle_request(
    service: &Arc<OasisService>,
    context: &ContextFactory,
    request: Request,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Activate {
            principal,
            role,
            args,
            credentials,
            now,
        } => {
            let ctx = context(now);
            match service.activate_role(&principal, &RoleName::new(role), &args, &credentials, &ctx)
            {
                Ok(rmc) => Response::Activated { rmc: Box::new(rmc) },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Invoke {
            principal,
            method,
            args,
            credentials,
            now,
        } => {
            let ctx = context(now);
            match service.invoke(&principal, &method, &args, &credentials, &ctx) {
                Ok(invocation) => Response::Invoked {
                    used: invocation.used,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Validate {
            credential,
            presenter,
            now,
        } => match service.validate_own(&credential, &presenter, now) {
            Ok(()) => Response::Valid,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Revoke {
            cert_id,
            reason,
            now,
        } => Response::Revoked {
            was_active: service.revoke_certificate(CertId(cert_id), &reason, now),
        },
        Request::Resync {
            topic,
            after_topic_seq,
        } => {
            let (events, complete) = service.replay_retained(&topic, after_topic_seq);
            Response::Resynced {
                events: events.into_iter().map(Into::into).collect(),
                complete,
            }
        }
    }
}
