//! Environmental constraints: the context in which rules are evaluated.
//!
//! Activation rules "may include environmental constraints … the time of
//! day and the location or name of a computer … that the user is a member
//! of a group; this may be ascertained by database lookup at some service"
//! (Sect. 2). [`EnvContext`] carries the virtual clock, ambient named
//! values (host, location…), and registered custom predicates; fact-store
//! lookups go through the service's `oasis-facts` store.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// Comparison operators usable in rule conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the operator. Ordering comparisons require both operands to
    /// have the same type; values of different types are only ever `Ne`.
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                if left.value_type() != right.value_type() {
                    return false;
                }
                match self {
                    CmpOp::Lt => left < right,
                    CmpOp::Le => left <= right,
                    CmpOp::Gt => left > right,
                    CmpOp::Ge => left >= right,
                    _ => unreachable!(),
                }
            }
        }
    }

    /// The symbolic form (`==`, `!=`, `<`, `<=`, `>`, `>=`).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl std::str::FromStr for CmpOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "==" | "=" => Ok(CmpOp::Eq),
            "!=" => Ok(CmpOp::Ne),
            "<" => Ok(CmpOp::Lt),
            "<=" => Ok(CmpOp::Le),
            ">" => Ok(CmpOp::Gt),
            ">=" => Ok(CmpOp::Ge),
            other => Err(format!("unknown comparison operator `{other}`")),
        }
    }
}

/// A custom predicate: named boolean function over resolved values.
pub type PredicateFn = Arc<dyn Fn(&[Value], &EnvContext) -> bool + Send + Sync>;

/// The environment a rule is evaluated in.
///
/// # Example
///
/// ```
/// use oasis_core::{EnvContext, Value};
///
/// let ctx = EnvContext::new(1_000)
///     .with_ambient("host", Value::id("ward-3-terminal"))
///     .with_predicate("is_even", |args, _ctx| {
///         matches!(args, [Value::Int(i)] if i % 2 == 0)
///     });
/// assert_eq!(ctx.now(), 1_000);
/// assert_eq!(ctx.ambient("host"), Some(&Value::id("ward-3-terminal")));
/// ```
#[derive(Clone)]
pub struct EnvContext {
    now: u64,
    ambient: HashMap<String, Value>,
    predicates: HashMap<String, PredicateFn>,
    trace: Option<oasis_obs::TraceCtx>,
}

impl EnvContext {
    /// Creates a context at virtual time `now`.
    pub fn new(now: u64) -> Self {
        Self {
            now,
            ambient: HashMap::new(),
            predicates: HashMap::new(),
            trace: None,
        }
    }

    /// Attaches a causal trace context; the service parents the spans of
    /// the operation evaluated under this environment on it.
    #[must_use]
    pub fn with_trace(mut self, trace: oasis_obs::TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The causal trace context, if the request is traced.
    pub fn trace(&self) -> Option<oasis_obs::TraceCtx> {
        self.trace
    }

    /// Adds an ambient named value (host, location, …).
    #[must_use]
    pub fn with_ambient(mut self, name: impl Into<String>, value: Value) -> Self {
        self.ambient.insert(name.into(), value);
        self
    }

    /// Registers a custom predicate.
    #[must_use]
    pub fn with_predicate(
        mut self,
        name: impl Into<String>,
        predicate: impl Fn(&[Value], &EnvContext) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.predicates.insert(name.into(), Arc::new(predicate));
        self
    }

    /// The virtual time of evaluation.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Returns a copy of this context at a different time (membership
    /// re-checks reuse the ambient values and predicates).
    #[must_use]
    pub fn at(&self, now: u64) -> Self {
        let mut ctx = self.clone();
        ctx.now = now;
        ctx
    }

    /// Looks up an ambient value.
    pub fn ambient(&self, name: &str) -> Option<&Value> {
        self.ambient.get(name)
    }

    /// Iterates over all ambient `(name, value)` pairs in unspecified
    /// order.
    pub fn ambient_iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.ambient.iter()
    }

    /// Evaluates a registered predicate; unknown predicates are `false`
    /// (deny by default).
    pub fn eval_predicate(&self, name: &str, args: &[Value]) -> bool {
        match self.predicates.get(name) {
            Some(p) => p(args, self),
            None => false,
        }
    }

    /// Whether a predicate with this name is registered.
    pub fn has_predicate(&self, name: &str) -> bool {
        self.predicates.contains_key(name)
    }
}

impl fmt::Debug for EnvContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut preds: Vec<&String> = self.predicates.keys().collect();
        preds.sort();
        f.debug_struct("EnvContext")
            .field("now", &self.now)
            .field("ambient", &self.ambient)
            .field("predicates", &preds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_ne_work_across_types() {
        assert!(CmpOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(CmpOp::Ne.eval(&Value::Int(1), &Value::Time(1)));
        assert!(!CmpOp::Eq.eval(&Value::Int(1), &Value::Time(1)));
    }

    #[test]
    fn ordering_requires_same_type() {
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(!CmpOp::Lt.eval(&Value::Int(1), &Value::Time(2)));
        assert!(CmpOp::Ge.eval(&Value::Time(5), &Value::Time(5)));
        assert!(CmpOp::Le.eval(&Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn parse_round_trip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let parsed: CmpOp = op.symbol().parse().unwrap();
            assert_eq!(parsed, op);
        }
        assert!("~=".parse::<CmpOp>().is_err());
    }

    #[test]
    fn ambient_lookup() {
        let ctx = EnvContext::new(5).with_ambient("host", Value::id("h1"));
        assert_eq!(ctx.ambient("host"), Some(&Value::id("h1")));
        assert_eq!(ctx.ambient("missing"), None);
    }

    #[test]
    fn unknown_predicate_denies() {
        let ctx = EnvContext::new(0);
        assert!(!ctx.eval_predicate("ghost", &[]));
        assert!(!ctx.has_predicate("ghost"));
    }

    #[test]
    fn predicate_sees_context() {
        let ctx = EnvContext::new(42).with_predicate("after_dawn", |_args, ctx| ctx.now() >= 6);
        assert!(ctx.eval_predicate("after_dawn", &[]));
    }

    #[test]
    fn at_rebases_time_keeping_everything_else() {
        let ctx = EnvContext::new(1)
            .with_ambient("host", Value::id("h"))
            .with_predicate("yes", |_, _| true);
        let later = ctx.at(99);
        assert_eq!(later.now(), 99);
        assert_eq!(later.ambient("host"), Some(&Value::id("h")));
        assert!(later.eval_predicate("yes", &[]));
    }
}
