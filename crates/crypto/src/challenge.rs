//! ISO/9798-style challenge–response proving possession of a private key.
//!
//! Section 4.1 of the paper sketches the exchange: "The issuing service
//! produces a random challenge, encrypted with the public key presented by
//! the activator, and a nonce. The client must respond with the challenge
//! in plaintext encrypted with the nonce. Upon receiving this, the service
//! can conclude that the activator has access to the private key
//! corresponding to the public key presented."
//!
//! **Substitution (documented in DESIGN.md):** the paper phrases the
//! exchange in terms of public-key *encryption*; Ed25519 — the modern
//! choice for certificate binding — is a *signature* scheme, so we
//! implement the equivalent signature-based unilateral authentication of
//! ISO/IEC 9798-3: the verifier sends `(challenge, nonce)`, the claimant
//! returns `Sign_sk(challenge ‖ nonce ‖ context)`, and the verifier checks
//! the signature under the presented public key and consumes the nonce.
//! Both variants prove exactly the same proposition — the presenter holds
//! the private half of the presented key, freshly — which is the property
//! role activation depends on.
//!
//! The verifier state lives in [`ChallengeService`]; the prover side is
//! [`respond`]. The paper notes the challenge "might be made at random
//! during a session, and at selected times such as before sensitive data is
//! sent" — services re-issue challenges whenever they choose; every
//! challenge is single-use.

use std::collections::HashMap;

use parking_lot::Mutex;
use rand::RngCore;

use crate::error::CryptoError;
use crate::keys::{KeyPair, PublicKey, SignatureBytes};
use crate::nonce::{Nonce, NonceCache};

/// A challenge issued by a verifying service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Random challenge bytes.
    pub challenge: [u8; 32],
    /// Single-use nonce tying the response to this exchange.
    pub nonce: Nonce,
}

/// A prover's response to a [`Challenge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChallengeResponse {
    /// The nonce being answered.
    pub nonce: Nonce,
    /// `Sign_sk(challenge ‖ nonce ‖ context)`.
    pub signature: SignatureBytes,
}

fn response_message(challenge: &[u8; 32], nonce: &Nonce, context: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(32 + 16 + 8 + context.len());
    msg.extend_from_slice(challenge);
    msg.extend_from_slice(nonce.as_bytes());
    msg.extend_from_slice(&(context.len() as u64).to_le_bytes());
    msg.extend_from_slice(context);
    msg
}

/// Produces the prover's response: signs the challenge, nonce, and an
/// application `context` string (e.g. the service name, preventing a
/// response to one service being relayed to another).
pub fn respond(pair: &KeyPair, challenge: &Challenge, context: &[u8]) -> ChallengeResponse {
    let msg = response_message(&challenge.challenge, &challenge.nonce, context);
    ChallengeResponse {
        nonce: challenge.nonce,
        signature: pair.sign(&msg),
    }
}

/// Verifier-side state: outstanding challenges and the replay cache.
///
/// # Example
///
/// ```
/// use oasis_crypto::{challenge::ChallengeService, challenge::respond, KeyPair};
///
/// let service = ChallengeService::new(30);
/// let principal = KeyPair::generate();
///
/// let challenge = service.issue(principal.public_key(), 0);
/// let response = respond(&principal, &challenge, b"records-service");
/// assert!(service
///     .verify(&principal.public_key(), &response, b"records-service", 10)
///     .is_ok());
/// ```
#[derive(Debug)]
pub struct ChallengeService {
    nonces: NonceCache,
    /// nonce → (challenge bytes, key the challenge was issued for)
    pending: Mutex<HashMap<Nonce, ([u8; 32], PublicKey)>>,
    ttl: u64,
}

impl ChallengeService {
    /// Creates a verifier whose challenges expire after `ttl` ticks.
    pub fn new(ttl: u64) -> Self {
        Self {
            nonces: NonceCache::new(),
            pending: Mutex::new(HashMap::new()),
            ttl,
        }
    }

    /// Issues a fresh challenge at time `now` for the presented `key`.
    pub fn issue(&self, key: PublicKey, now: u64) -> Challenge {
        let mut challenge = [0u8; 32];
        rand::rng().fill_bytes(&mut challenge);
        let nonce = self.nonces.issue(now, self.ttl);
        self.pending.lock().insert(nonce, (challenge, key));
        Challenge { challenge, nonce }
    }

    /// Verifies a response at time `now`.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::BadNonce`] — unknown, expired, or replayed nonce.
    /// * [`CryptoError::ChallengeFailed`] — the signature does not verify
    ///   under `key`, the response answers a challenge issued for a
    ///   different key, or the context differs.
    pub fn verify(
        &self,
        key: &PublicKey,
        response: &ChallengeResponse,
        context: &[u8],
        now: u64,
    ) -> Result<(), CryptoError> {
        let entry = self.pending.lock().remove(&response.nonce);
        let fresh = self.nonces.consume(&response.nonce, now);
        let Some((challenge, issued_for)) = entry else {
            return Err(CryptoError::BadNonce);
        };
        if !fresh {
            return Err(CryptoError::BadNonce);
        }
        if issued_for != *key {
            return Err(CryptoError::ChallengeFailed);
        }
        let msg = response_message(&challenge, &response.nonce, context);
        if key.verify(&msg, &response.signature) {
            Ok(())
        } else {
            Err(CryptoError::ChallengeFailed)
        }
    }

    /// Drops expired challenges; returns how many were evicted.
    pub fn evict_expired(&self, now: u64) -> usize {
        self.nonces.evict_expired(now);
        let mut pending = self.pending.lock();
        let before = pending.len();
        pending.retain(|nonce, _| self.nonces.is_live(nonce, now));
        before - pending.len()
    }

    /// Number of challenges awaiting a response (including expired ones not
    /// yet swept).
    pub fn pending(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: &[u8] = b"records-service";

    #[test]
    fn honest_prover_succeeds() {
        let service = ChallengeService::new(10);
        let pair = KeyPair::generate();
        let ch = service.issue(pair.public_key(), 0);
        let resp = respond(&pair, &ch, CTX);
        assert!(service.verify(&pair.public_key(), &resp, CTX, 5).is_ok());
    }

    #[test]
    fn response_cannot_be_replayed() {
        let service = ChallengeService::new(10);
        let pair = KeyPair::generate();
        let ch = service.issue(pair.public_key(), 0);
        let resp = respond(&pair, &ch, CTX);
        service.verify(&pair.public_key(), &resp, CTX, 1).unwrap();
        assert_eq!(
            service.verify(&pair.public_key(), &resp, CTX, 2),
            Err(CryptoError::BadNonce)
        );
    }

    #[test]
    fn expired_challenge_rejected() {
        let service = ChallengeService::new(10);
        let pair = KeyPair::generate();
        let ch = service.issue(pair.public_key(), 0);
        let resp = respond(&pair, &ch, CTX);
        assert_eq!(
            service.verify(&pair.public_key(), &resp, CTX, 11),
            Err(CryptoError::BadNonce)
        );
    }

    #[test]
    fn thief_without_private_key_fails() {
        let service = ChallengeService::new(10);
        let victim = KeyPair::generate();
        let thief = KeyPair::generate();
        // Thief presents the victim's public key (stolen certificate)…
        let ch = service.issue(victim.public_key(), 0);
        // …but can only sign with their own private key.
        let resp = respond(&thief, &ch, CTX);
        assert_eq!(
            service.verify(&victim.public_key(), &resp, CTX, 1),
            Err(CryptoError::ChallengeFailed)
        );
    }

    #[test]
    fn response_bound_to_issued_key() {
        let service = ChallengeService::new(10);
        let a = KeyPair::generate();
        let b = KeyPair::generate();
        let ch = service.issue(a.public_key(), 0);
        let resp = respond(&b, &ch, CTX);
        // Verifying against b's key: challenge was issued for a.
        assert_eq!(
            service.verify(&b.public_key(), &resp, CTX, 1),
            Err(CryptoError::ChallengeFailed)
        );
    }

    #[test]
    fn context_mismatch_rejected() {
        let service = ChallengeService::new(10);
        let pair = KeyPair::generate();
        let ch = service.issue(pair.public_key(), 0);
        let resp = respond(&pair, &ch, b"other-service");
        assert_eq!(
            service.verify(&pair.public_key(), &resp, CTX, 1),
            Err(CryptoError::ChallengeFailed)
        );
    }

    #[test]
    fn unknown_nonce_rejected() {
        let service = ChallengeService::new(10);
        let pair = KeyPair::generate();
        let fake = Challenge {
            challenge: [0; 32],
            nonce: Nonce::random(),
        };
        let resp = respond(&pair, &fake, CTX);
        assert_eq!(
            service.verify(&pair.public_key(), &resp, CTX, 1),
            Err(CryptoError::BadNonce)
        );
    }

    #[test]
    fn challenges_are_single_use_even_with_fresh_signature() {
        let service = ChallengeService::new(10);
        let pair = KeyPair::generate();
        let ch = service.issue(pair.public_key(), 0);
        let resp1 = respond(&pair, &ch, CTX);
        service.verify(&pair.public_key(), &resp1, CTX, 1).unwrap();
        // Re-sign the same challenge: nonce already consumed.
        let resp2 = respond(&pair, &ch, CTX);
        assert_eq!(
            service.verify(&pair.public_key(), &resp2, CTX, 2),
            Err(CryptoError::BadNonce)
        );
    }
}
