//! An OASIS-secured service: role entry, service use, credential records,
//! appointment, revocation, and active membership monitoring.
//!
//! This module implements Fig 2 of the paper:
//!
//! 1. a client presents credentials to activate a role (`activate_role`);
//! 2. the service checks its policy, validates the credentials (by
//!    callback to their issuers), and issues an RMC;
//! 3. the client presents RMCs with invocation requests (`invoke`);
//! 4. the service validates, checks constraints, and the call proceeds.
//!
//! and Fig 5: every issued certificate gets a credential record (CR);
//! records depend on the credentials and environmental facts retained by
//! the rule's *membership rule*; revocation events and fact retractions
//! propagate through the event bus and collapse dependent certificates
//! immediately and transitively.
//!
//! # Concurrency
//!
//! The service's interior state is split along its access pattern:
//!
//! * **Policy** (roles, activation/invocation rules, appointers) is
//!   read-mostly — written during setup, read on every activation and
//!   invocation — and lives behind a single [`RwLock`]. Rule vectors are
//!   held in `Arc`s so the hot path clones a pointer, not the rules.
//! * **Certificate records** (the credential records, the
//!   supporting-credential dependency index, and the retained-fact index)
//!   are written on every issue/revoke and are striped across
//!   [`SHARD_COUNT`] mutex-guarded shards: a record lives in the shard of
//!   its [`CertId`], dependency and fact entries in the shard of their
//!   key's hash.
//!
//! Lock discipline, which keeps the service deadlock-free:
//!
//! * at most **one shard lock** is held at any time — multi-shard
//!   operations (session teardown, expiry sweeps, membership rechecks,
//!   statistics) visit shards one at a time in ascending index order;
//! * **no lock is held** across an event-bus publication or a validator
//!   callback, so revocation cascades re-entering on the publisher's
//!   thread start from a lock-free state;
//! * the policy lock is never held while a shard lock is taken.
//!
//! Foreign-credential validations (callbacks to other issuers) can be
//! memoised with a TTL through
//! [`ServiceConfig::with_validation_cache`]; cached entries are evicted
//! the moment a revocation event for the credential crosses the shared
//! bus, so the cache never outlives a revocation that this service can
//! observe.

use std::borrow::Cow;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use oasis_crypto::{IssuerSecret, PublicKey, SecretEpoch};
use oasis_events::{DeliveredEvent, EventBus, HeartbeatMonitor, SourceHealth, SourceId, Topic};
use oasis_facts::{FactChange, FactStore};
use oasis_store::JournalStats;

use crate::audit::{AuditKind, AuditLog};
use crate::cert::{
    revocation_topic, AppointmentCertificate, CertEvent, CertEventKind, CredRecord, CredStatus,
    Credential, CredentialKind, Crr, Rmc,
};
use crate::durable::{
    CatchUpReport, RecoveryReport, RetainedEntry, SecurityEvent, ServiceJournal, ServiceSnapshot,
    SnapshotRecord, Watermark,
};
use crate::env::EnvContext;
use crate::error::OasisError;
use crate::ids::{CertId, PrincipalId, RoleName, ServiceId};
use crate::overload::{AdmissionController, OverloadStats};
use crate::pattern::{Bindings, Term};
use crate::plan::{CheckPlan, CredIndex, PlanStats, RulePlan};
use crate::resilient::{classify_error, ErrorClass};
use crate::role::RoleDef;
use crate::rule::{solve, ActivationRule, Atom, InvocationRule, RuleId, Solution};
use crate::validate::CredentialValidator;
use crate::value::{Value, ValueType};

/// Number of lock stripes over the certificate-record state. A power of
/// two so shard routing is a mask; 16 stripes keep contention negligible
/// for tens of threads while costing only a few hundred bytes of mutexes.
pub const SHARD_COUNT: usize = 16;

fn shard_of_hash<K: Hash + ?Sized>(key: &K) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) & (SHARD_COUNT - 1)
}

fn shard_of_cert(cert_id: CertId) -> usize {
    (cert_id.0 as usize) & (SHARD_COUNT - 1)
}

/// What a service does with cached validations for a foreign issuer
/// whose heartbeats have stopped (Fig 5: "silence means missed
/// revocations").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Refuse to grant on authority that cannot be freshly confirmed: a
    /// suspect cache entry is never served, and once the issuer is dead
    /// for the configured grace period, dependent roles are deactivated
    /// through the revocation cascade. The default.
    #[default]
    FailSafe,
    /// Availability over safety: while the issuer is late, a cached
    /// validation up to `max_stale_ticks` old may still be served when a
    /// fresh callback fails. Dead issuers are still evicted — staleness
    /// beyond the late window is never tolerated.
    FailOpen {
        /// Maximum cache-entry age (virtual ticks) servable while the
        /// issuer is late and unreachable.
        max_stale_ticks: u64,
    },
}

/// Tuning for the failure-aware validation layer
/// ([`ServiceConfig::with_heartbeats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Missed intervals before an issuer is classified dead (≥ 1; the
    /// window between one interval and this many is the *late* state).
    pub dead_after: u64,
    /// Virtual ticks an issuer must remain dead before a fail-safe
    /// service deactivates the roles depending on its credentials.
    pub grace: u64,
    /// Default policy for issuers without a per-issuer override.
    pub policy: DegradationPolicy,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        Self {
            dead_after: 3,
            grace: 10,
            policy: DegradationPolicy::FailSafe,
        }
    }
}

/// Counters from the failure-aware validation layer (see
/// [`ServiceConfig::with_heartbeats`]), alongside
/// [`ValidationCacheStats`] and the decorator-side
/// [`ResilientStats`](crate::ResilientStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Validations forced to a fresh callback because the issuer was
    /// late (the cache hit was suspect).
    pub suspect_revalidations: u64,
    /// Suspect cache entries served anyway under
    /// [`DegradationPolicy::FailOpen`].
    pub stale_served: u64,
    /// Suspect cache entries *refused* (fail-safe, or older than the
    /// fail-open bound) when the fresh callback failed.
    pub stale_refused: u64,
    /// Cache entries evicted because their issuer turned dead.
    pub dead_evictions: u64,
    /// Issuers whose dependent certificates were deactivated after the
    /// grace period.
    pub degraded_issuers: u64,
    /// Certificates revoked by those degradations (directly; cascades
    /// may collapse more).
    pub degraded_certs: u64,
    /// Dead issuers that heartbeated again and returned to service.
    pub issuer_recoveries: u64,
}

impl DegradationStats {
    /// Compact single-line JSON for chaos/conformance traces, keys
    /// sorted (rendered by the shared `oasis-obs` canonical encoder).
    pub fn trace_json(&self) -> String {
        oasis_obs::kv_json(&[
            ("dead_evictions", self.dead_evictions.into()),
            ("degraded_certs", self.degraded_certs.into()),
            ("degraded_issuers", self.degraded_issuers.into()),
            ("issuer_recoveries", self.issuer_recoveries.into()),
            ("stale_refused", self.stale_refused.into()),
            ("stale_served", self.stale_served.into()),
            ("suspect_revalidations", self.suspect_revalidations.into()),
        ])
    }
}

#[derive(Default)]
struct DegradationCounters {
    suspect_revalidations: AtomicU64,
    stale_served: AtomicU64,
    stale_refused: AtomicU64,
    dead_evictions: AtomicU64,
    degraded_issuers: AtomicU64,
    degraded_certs: AtomicU64,
    issuer_recoveries: AtomicU64,
}

/// Per-dead-issuer bookkeeping: when death was first observed, and which
/// irreversible steps have already run.
#[derive(Debug, Clone, Copy)]
struct DeadIssuer {
    since: u64,
    evicted: bool,
    degraded: bool,
}

/// The failure-aware half of the service: issuer heartbeats, degradation
/// policies, and the dead-issuer ledger.
struct FailureAware {
    monitor: HeartbeatMonitor,
    grace: u64,
    default_policy: DegradationPolicy,
    overrides: RwLock<HashMap<ServiceId, DegradationPolicy>>,
    dead: Mutex<HashMap<ServiceId, DeadIssuer>>,
    counters: DegradationCounters,
}

impl FailureAware {
    fn policy_for(&self, issuer: &ServiceId) -> DegradationPolicy {
        self.overrides
            .read()
            .get(issuer)
            .copied()
            .unwrap_or(self.default_policy)
    }

    fn source(issuer: &ServiceId) -> SourceId {
        SourceId::new(issuer.as_str())
    }

    fn stats(&self) -> DegradationStats {
        DegradationStats {
            suspect_revalidations: self.counters.suspect_revalidations.load(Ordering::Relaxed),
            stale_served: self.counters.stale_served.load(Ordering::Relaxed),
            stale_refused: self.counters.stale_refused.load(Ordering::Relaxed),
            dead_evictions: self.counters.dead_evictions.load(Ordering::Relaxed),
            degraded_issuers: self.counters.degraded_issuers.load(Ordering::Relaxed),
            degraded_certs: self.counters.degraded_certs.load(Ordering::Relaxed),
            issuer_recoveries: self.counters.issuer_recoveries.load(Ordering::Relaxed),
        }
    }
}

/// The durability half of the service: the write-ahead journal of
/// [`SecurityEvent`]s, snapshot cadence, and crash-recovery bookkeeping
/// (see the `durable` module docs).
struct Durable {
    store: ServiceJournal,
    /// Auto-snapshot after this many journal appends (`None` = manual
    /// snapshots only).
    snapshot_every: Option<u64>,
    appends_since_snapshot: AtomicU64,
    /// Held (shared) across every journal-append → in-memory-apply
    /// window, and exclusively by [`OasisService::snapshot`], so a
    /// snapshot's `covered_seq` never claims an event whose effect is
    /// not yet applied.
    commit: RwLock<()>,
    /// True while [`OasisService::recover`] replays: suppresses
    /// journalling (replay must not re-journal itself) and bus
    /// publication.
    replaying: AtomicBool,
    /// True after recovery restored state, until
    /// [`OasisService::complete_catchup`]: the validation cache is
    /// treated as suspect because revocations may have been missed
    /// while the service was down.
    catchup: AtomicBool,
    /// Chaos hook: simulate a crash between the next journal append and
    /// its in-memory apply.
    crash_after_append: AtomicBool,
    /// topic → `(topic_seq, global_seq)` of the last bus event applied.
    watermarks: Mutex<HashMap<String, (u64, u64)>>,
    /// True when the service retains its own revocation topic: every
    /// own-topic publication is then journalled as
    /// [`SecurityEvent::RetainedPublished`], so a recovered (or
    /// replica-promoted) node rebuilds the retained ring with its
    /// original sequence numbers and keeps serving gap-free catch-ups.
    retain_publishes: bool,
}

/// Configuration for constructing an [`OasisService`].
pub struct ServiceConfig {
    id: ServiceId,
    bus: Option<EventBus<CertEvent>>,
    secret: Option<IssuerSecret>,
    validation_cache_ttl: Option<u64>,
    heartbeats: Option<HeartbeatConfig>,
    journal: Option<ServiceJournal>,
    snapshot_every: Option<u64>,
    revocation_retention: Option<usize>,
    interpreted_solver: bool,
}

impl fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("id", &self.id)
            .field("validation_cache_ttl", &self.validation_cache_ttl)
            .field("heartbeats", &self.heartbeats)
            .field("journal", &self.journal.is_some())
            .field("snapshot_every", &self.snapshot_every)
            .field("revocation_retention", &self.revocation_retention)
            .finish_non_exhaustive()
    }
}

impl ServiceConfig {
    /// Starts a configuration for the service named `id`.
    pub fn new(id: impl Into<ServiceId>) -> Self {
        Self {
            id: id.into(),
            bus: None,
            secret: None,
            validation_cache_ttl: None,
            heartbeats: None,
            journal: None,
            snapshot_every: None,
            revocation_retention: None,
            interpreted_solver: false,
        }
    }

    /// Uses a shared event bus (services that must see each other's
    /// revocation events — i.e. any services with credential
    /// dependencies between them — must share a bus).
    #[must_use]
    pub fn with_bus(mut self, bus: EventBus<CertEvent>) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Uses a specific issuer secret (deterministic tests, CIV replicas).
    #[must_use]
    pub fn with_secret(mut self, secret: IssuerSecret) -> Self {
        self.secret = Some(secret);
        self
    }

    /// Enables the foreign-credential validation cache: a successful
    /// issuer callback for `(credential, presenter)` is remembered for
    /// `ttl` units of virtual time, and repeat validations within the
    /// window skip the callback. Revocation events arriving on the
    /// service's bus evict matching entries immediately, so within a
    /// shared-bus federation the cache never returns success for a
    /// credential this service could know is revoked. Off by default:
    /// without a shared bus, a cached entry can outlive a revocation at
    /// the issuer for up to `ttl`.
    #[must_use]
    pub fn with_validation_cache(mut self, ttl: u64) -> Self {
        self.validation_cache_ttl = Some(ttl);
        self
    }

    /// Enables the failure-aware validation layer: foreign issuers
    /// registered with [`OasisService::watch_issuer`] are heartbeat
    /// sources, and cached validations degrade with the issuer's health
    /// (Fig 5's "heartbeats or change events" links):
    ///
    /// * **healthy** — cache hits behave as configured by
    ///   [`ServiceConfig::with_validation_cache`];
    /// * **late** — hits are *suspect*: a fresh callback is required, and
    ///   on callback failure the [`DegradationPolicy`] decides;
    /// * **dead** — the issuer's cache entries are evicted, and under
    ///   [`DegradationPolicy::FailSafe`] its dependent roles are
    ///   deactivated once [`HeartbeatConfig::grace`] ticks pass (driven
    ///   by [`OasisService::tick_heartbeats`]).
    #[must_use]
    pub fn with_heartbeats(mut self, config: HeartbeatConfig) -> Self {
        self.heartbeats = Some(config);
        self
    }

    /// Makes the service durable: every security-relevant state change
    /// (certificate issue, revocation, expiry, foreign-revocation
    /// delivery, validation grant, epoch change) is appended to
    /// `journal` *before* it is acknowledged, and
    /// [`OasisService::recover`] rebuilds the full record and cache
    /// state from it after a crash.
    #[must_use]
    pub fn with_journal(mut self, journal: ServiceJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// With a journal configured, writes a [`ServiceSnapshot`] (and
    /// truncates the journal) automatically after every `appends`
    /// journal appends, bounding replay time after a crash. Manual
    /// [`OasisService::snapshot`] calls remain available either way.
    #[must_use]
    pub fn with_snapshot_every(mut self, appends: u64) -> Self {
        self.snapshot_every = Some(appends.max(1));
        self
    }

    /// Retains the last `capacity` events on this service's own
    /// revocation topic in the bus's replay ring
    /// ([`EventBus::retain`]), so subscribers that crash can close
    /// their delivery gap with [`OasisService::catch_up`] /
    /// [`EventBus::replay_after`] instead of missing revocations
    /// silently.
    #[must_use]
    pub fn with_revocation_retention(mut self, capacity: usize) -> Self {
        self.revocation_retention = Some(capacity.max(1));
        self
    }

    /// Forces the interpreted backtracking solver
    /// ([`solve`](crate::rule::solve)) for every activation, invocation,
    /// and membership re-check, bypassing the compiled decision plans.
    /// The plans are still built (their compile-time diagnostics remain
    /// available) but never evaluated. Intended for differential testing
    /// and benchmarking; the two engines are equivalent by construction
    /// and by the parity suite.
    #[must_use]
    pub fn with_interpreted_solver(mut self) -> Self {
        self.interpreted_solver = true;
        self
    }
}

/// The result of a successful role activation.
#[derive(Debug, Clone)]
pub struct ActivationOutcome {
    /// The issued role membership certificate.
    pub rmc: Rmc,
    /// Which activation rule fired.
    pub rule: RuleId,
    /// The variable bindings of the satisfied rule.
    pub bindings: Bindings,
}

/// The result of an authorised invocation.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// The method invoked.
    pub method: String,
    /// Which invocation rule authorised it.
    pub rule: RuleId,
    /// The variable bindings of the satisfied rule.
    pub bindings: Bindings,
    /// The credentials that authorised the call (recorded for audit, as in
    /// the cross-domain EHR scenario of Fig 3).
    pub used: Vec<Crr>,
}

/// A certificate's issuer-side state, including what its continued
/// validity depends on.
#[derive(Debug, Clone)]
struct RecordState {
    record: CredRecord,
    /// Credentials (by CRR) retained by the membership rule.
    depends_on: Vec<Crr>,
    /// Ground environmental conditions retained by the membership rule,
    /// re-evaluated on [`OasisService::recheck_memberships`]; fact atoms
    /// are additionally indexed for push-based revocation. This is the
    /// durable representation (journal and snapshots).
    retained_checks: Vec<Atom>,
    /// The retained checks compiled once at install time; shared with
    /// re-check sweeps via `Arc` so a sweep clones a pointer, not the
    /// atom vector. `None` iff `retained_checks` is empty. Never
    /// serialised — recompiled from `retained_checks` on recovery.
    check: Option<Arc<CheckPlan>>,
}

impl RecordState {
    fn new(record: CredRecord, depends_on: Vec<Crr>, retained_checks: Vec<Atom>) -> Self {
        Self {
            record,
            depends_on,
            retained_checks,
            check: None,
        }
    }
}

/// `(relation, ground tuple)` → dependents and whether each expects the
/// fact present (`true`) or absent (`false`).
type FactIndex = HashMap<(String, Vec<Value>), Vec<(CertId, bool)>>;

/// The read-mostly half of the service state: written during policy
/// definition, read (briefly, under a shared lock) on every activation
/// and invocation.
#[derive(Default)]
struct PolicyTable {
    roles: HashMap<RoleName, RoleDef>,
    activation_rules: HashMap<RoleName, Arc<Vec<ActivationRule>>>,
    invocation_rules: HashMap<String, Arc<Vec<InvocationRule>>>,
    /// appointment name → roles privileged to issue it.
    appointers: HashMap<String, HashSet<RoleName>>,
    /// Compiled decision plans, index-aligned with `activation_rules`.
    /// Rebuilt incrementally under the same write lock that admits the
    /// rule, so plan `i` always corresponds to rule `i`.
    activation_plans: HashMap<RoleName, Arc<Vec<RulePlan>>>,
    /// Compiled decision plans, index-aligned with `invocation_rules`.
    invocation_plans: HashMap<String, Arc<Vec<RulePlan>>>,
    /// Local prerequisite-role DAG: role → roles whose activation rules
    /// name it as a prerequisite (edges for this service's own roles
    /// only). Lets revocation tooling and filtered re-check sweeps
    /// compute the affected set in O(affected).
    prereq_children: HashMap<RoleName, HashSet<RoleName>>,
}

/// One stripe of the write-hot certificate state. Records are routed by
/// [`CertId`], dependency and fact entries by the hash of their key, so
/// the three maps of one shard do not necessarily describe the same
/// certificates.
#[derive(Default)]
struct CertShard {
    records: HashMap<CertId, RecordState>,
    /// supporting credential → certificates that retain it.
    dep_index: HashMap<Crr, HashSet<CertId>>,
    fact_index: FactIndex,
}

/// Counters from the foreign-credential validation cache (see
/// [`ServiceConfig::with_validation_cache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationCacheStats {
    /// Validations answered from the cache, with no issuer callback.
    pub hits: u64,
    /// Validations that went through to the issuer (and were cached on
    /// success).
    pub misses: u64,
    /// Entries evicted by revocation events from the bus.
    pub invalidations: u64,
}

impl ValidationCacheStats {
    /// Compact single-line JSON, keys sorted (rendered by the shared
    /// `oasis-obs` canonical encoder).
    pub fn trace_json(&self) -> String {
        oasis_obs::kv_json(&[
            ("hits", self.hits.into()),
            ("invalidations", self.invalidations.into()),
            ("misses", self.misses.into()),
        ])
    }
}

/// Memo of successful foreign validations keyed `(credential, presenter)`,
/// TTL-bounded in virtual time and evicted eagerly on revocation events.
struct ValidationCache {
    ttl: u64,
    /// `(crr, presenter)` → virtual time the callback succeeded.
    entries: Mutex<HashMap<(Crr, PrincipalId), u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ValidationCache {
    fn new(ttl: u64) -> Self {
        Self {
            ttl,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Whether a cached success for `(crr, presenter)` is still fresh at
    /// `now`. Entries from the future (virtual clocks may be reset) are
    /// treated as stale.
    fn lookup(&self, crr: &Crr, presenter: &PrincipalId, now: u64) -> bool {
        let fresh = self
            .age(crr, presenter, now)
            .is_some_and(|age| age <= self.ttl);
        if fresh {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Age (ticks since the successful callback) of the entry for
    /// `(crr, presenter)`, regardless of TTL; `None` if absent or from
    /// the future. Does not touch the hit/miss counters — callers on the
    /// degraded path account explicitly.
    fn age(&self, crr: &Crr, presenter: &PrincipalId, now: u64) -> Option<u64> {
        self.entries
            .lock()
            .get(&(crr.clone(), presenter.clone()))
            .and_then(|&at| now.checked_sub(at))
    }

    fn store(&self, crr: Crr, presenter: PrincipalId, now: u64) {
        self.entries.lock().insert((crr, presenter), now);
    }

    /// Drops every entry whose credential was issued by `issuer`,
    /// returning how many were evicted. Used when an issuer turns dead:
    /// with its event channel silent, none of its cached validations can
    /// be trusted to reflect revocations any more.
    fn invalidate_issuer(&self, issuer: &ServiceId) -> u64 {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|(entry_crr, _), _| entry_crr.issuer != *issuer);
        let evicted = (before - entries.len()) as u64;
        drop(entries);
        if evicted > 0 {
            self.invalidations.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Drops every entry for `crr`, whoever presented it.
    fn invalidate(&self, crr: &Crr) {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|(entry_crr, _), _| entry_crr != crr);
        let evicted = (before - entries.len()) as u64;
        drop(entries);
        if evicted > 0 {
            self.invalidations.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> ValidationCacheStats {
        ValidationCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// A service secured by OASIS access control (Fig 2), owning its roles,
/// policy, credential records, and audit log.
///
/// Constructed with [`OasisService::new`], which returns an `Arc` because
/// the service subscribes itself to the event bus and the fact store for
/// active security. See the [crate-level example](crate).
///
/// Cached observability handles for the request hot path, refreshed by
/// [`OasisService::set_obs`]. Handles encode "off" internally, so the
/// default (a [`oasis_obs::NoopRecorder`]) costs one branch per counter
/// bump and no allocation.
struct ServiceObs {
    /// Whether a real recorder has been installed via `set_obs` (late
    /// surfaces — e.g. an admission controller installed afterwards —
    /// register their sources into it on arrival).
    installed: bool,
    recorder: Arc<dyn oasis_obs::Recorder>,
    activations_ok: oasis_obs::Counter,
    activations_denied: oasis_obs::Counter,
    invocations_ok: oasis_obs::Counter,
    invocations_denied: oasis_obs::Counter,
    revocations: oasis_obs::Counter,
    sink: oasis_obs::SpanSink,
}

impl ServiceObs {
    fn attach(recorder: Arc<dyn oasis_obs::Recorder>, id: &ServiceId) -> Self {
        let name = |suffix: &str| format!("{}.{suffix}", id.as_str());
        Self {
            activations_ok: recorder.counter(&name("activate.ok")),
            activations_denied: recorder.counter(&name("activate.denied")),
            invocations_ok: recorder.counter(&name("invoke.ok")),
            invocations_denied: recorder.counter(&name("invoke.denied")),
            revocations: recorder.counter(&name("revocations")),
            sink: recorder.spans(),
            recorder,
            installed: true,
        }
    }

    fn noop() -> Self {
        Self {
            installed: false,
            ..Self::attach(Arc::new(oasis_obs::NoopRecorder), &ServiceId::new("noop"))
        }
    }
}

/// A service secured by OASIS access control (Fig 2), owning its roles,
/// policy, credential records, and audit log.
///
/// Constructed with [`OasisService::new`], which returns an `Arc` because
/// the service subscribes itself to the event bus and the fact store for
/// active security. See the [crate-level example](crate).
///
/// All operations are safe to call from many threads at once; see the
/// [module docs](self) for the locking architecture.
pub struct OasisService {
    id: ServiceId,
    secret: IssuerSecret,
    bus: EventBus<CertEvent>,
    facts: Arc<FactStore<Value>>,
    audit: AuditLog,
    policy: RwLock<PolicyTable>,
    shards: [Mutex<CertShard>; SHARD_COUNT],
    vcache: Option<ValidationCache>,
    fa: Option<FailureAware>,
    durable: Option<Durable>,
    validator: RwLock<Option<Arc<dyn CredentialValidator>>>,
    overload: RwLock<Option<Arc<AdmissionController>>>,
    obs: RwLock<ServiceObs>,
    next_cert: AtomicU64,
    next_rule: AtomicU64,
    /// Virtual time of the most recent operation; used to timestamp
    /// event-driven revocations, which arrive without a context.
    last_now: AtomicU64,
    /// Whether the compiled-plan engine is in use (the default); `false`
    /// routes everything through the interpreted reference solver.
    use_plans: bool,
    /// Fact-store epoch at the *start* of the last full membership
    /// re-check sweep (`u64::MAX` = never swept). When the epoch has not
    /// moved since, fact-only retained checks cannot have changed and
    /// the sweep skips them.
    last_sweep_epoch: AtomicU64,
}

impl fmt::Debug for OasisService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let records: usize = self.shards.iter().map(|s| s.lock().records.len()).sum();
        f.debug_struct("OasisService")
            .field("id", &self.id)
            .field("roles", &self.policy.read().roles.len())
            .field("records", &records)
            .finish()
    }
}

impl OasisService {
    /// Creates a service and wires it to the event bus and fact store for
    /// active security (Fig 5).
    pub fn new(config: ServiceConfig, facts: Arc<FactStore<Value>>) -> Arc<Self> {
        let service = Arc::new(Self {
            id: config.id,
            secret: config.secret.unwrap_or_else(IssuerSecret::random),
            bus: config.bus.unwrap_or_default(),
            facts: Arc::clone(&facts),
            audit: AuditLog::new(),
            policy: RwLock::new(PolicyTable::default()),
            shards: std::array::from_fn(|_| Mutex::new(CertShard::default())),
            vcache: config.validation_cache_ttl.map(ValidationCache::new),
            fa: config.heartbeats.map(|hb| FailureAware {
                monitor: HeartbeatMonitor::new(hb.dead_after),
                grace: hb.grace,
                default_policy: hb.policy,
                overrides: RwLock::new(HashMap::new()),
                dead: Mutex::new(HashMap::new()),
                counters: DegradationCounters::default(),
            }),
            durable: config.journal.map(|store| Durable {
                store,
                snapshot_every: config.snapshot_every,
                appends_since_snapshot: AtomicU64::new(0),
                commit: RwLock::new(()),
                replaying: AtomicBool::new(false),
                catchup: AtomicBool::new(false),
                crash_after_append: AtomicBool::new(false),
                watermarks: Mutex::new(HashMap::new()),
                retain_publishes: config.revocation_retention.is_some(),
            }),
            validator: RwLock::new(None),
            overload: RwLock::new(None),
            obs: RwLock::new(ServiceObs::noop()),
            next_cert: AtomicU64::new(1),
            next_rule: AtomicU64::new(1),
            last_now: AtomicU64::new(0),
            use_plans: !config.interpreted_solver,
            last_sweep_epoch: AtomicU64::new(u64::MAX),
        });

        if let Some(capacity) = config.revocation_retention {
            service
                .bus
                .retain(revocation_topic(&service.id).as_str(), capacity)
                .expect("exact topic is a valid pattern and capacity >= 1");
        }

        // Revocation push: collapse certificates depending on a revoked
        // credential the moment the event is published (same thread), and
        // evict any cached validation of it. Durable services also
        // journal the delivery watermark per topic (gap detection after
        // a crash).
        let weak = Arc::downgrade(&service);
        service
            .bus
            .subscribe_fn("cred.revoked.#", move |event| {
                if let Some(svc) = Weak::upgrade(&weak) {
                    svc.handle_revocation_delivery(event);
                }
            })
            .expect("static pattern is valid");

        // Fact push: collapse certificates whose retained environmental
        // facts change.
        let weak = Arc::downgrade(&service);
        facts.watch(move |change| {
            if let Some(svc) = Weak::upgrade(&weak) {
                svc.handle_fact_change(change);
            }
        });

        service
    }

    /// The service's identity.
    pub fn id(&self) -> &ServiceId {
        &self.id
    }

    /// The event bus this service publishes revocations on.
    pub fn bus(&self) -> &EventBus<CertEvent> {
        &self.bus
    }

    /// The service's fact store.
    pub fn facts(&self) -> &Arc<FactStore<Value>> {
        &self.facts
    }

    /// The service's audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The issuer secret (exposed for secret-rotation scenarios).
    pub fn secret(&self) -> &IssuerSecret {
        &self.secret
    }

    /// Counters from the validation cache, or `None` when the cache is
    /// not enabled (see [`ServiceConfig::with_validation_cache`]).
    pub fn validation_cache_stats(&self) -> Option<ValidationCacheStats> {
        self.vcache.as_ref().map(ValidationCache::stats)
    }

    /// Installs the validator used for credentials issued by *other*
    /// services (a [`LocalRegistry`](crate::validate::LocalRegistry), a
    /// domain CIV client, or a network client).
    pub fn set_validator(&self, validator: Arc<dyn CredentialValidator>) {
        *self.validator.write() = Some(validator);
    }

    /// Installs the admission controller guarding this service's front
    /// door (normally done by `oasis-wire` when overload control is
    /// enabled), making its stats visible through the service.
    pub fn set_overload(&self, controller: Arc<AdmissionController>) {
        // Installed after `set_obs`? Register the controller's stats
        // into the recorder now (replacing any prior controller's
        // source under the same name).
        {
            let obs = self.obs.read();
            if obs.installed {
                controller.register_obs(
                    obs.recorder.as_ref(),
                    &format!("{}.overload", self.id.as_str()),
                );
            }
        }
        *self.overload.write() = Some(controller);
    }

    /// The installed admission controller, if any.
    pub fn overload(&self) -> Option<Arc<AdmissionController>> {
        self.overload.read().clone()
    }

    /// Installs an observability recorder: request counters and causal
    /// spans are recorded through it, and this service's stats surfaces
    /// (degradation, validation cache, compiled plans, event bus, and —
    /// when installed — the admission controller) are registered as
    /// snapshot sources, so one [`oasis_obs::Recorder::snapshot_json`]
    /// call returns the whole service.
    ///
    /// Source closures hold a [`Weak`] reference; a snapshot taken after
    /// the service is dropped renders the source as `null`.
    pub fn set_obs(self: &Arc<Self>, recorder: Arc<dyn oasis_obs::Recorder>) {
        let name = |suffix: &str| format!("{}.{suffix}", self.id.as_str());
        let weak = Arc::downgrade(self);
        recorder.register_source(
            &name("plan"),
            Box::new({
                let weak = Weak::clone(&weak);
                move || match Weak::upgrade(&weak) {
                    Some(svc) => svc.plan_stats().trace_json(),
                    None => "null".to_string(),
                }
            }),
        );
        if self.vcache.is_some() {
            recorder.register_source(
                &name("vcache"),
                Box::new({
                    let weak = Weak::clone(&weak);
                    move || match Weak::upgrade(&weak).and_then(|s| s.validation_cache_stats()) {
                        Some(stats) => stats.trace_json(),
                        None => "null".to_string(),
                    }
                }),
            );
        }
        if self.fa.is_some() {
            recorder.register_source(
                &name("degradation"),
                Box::new({
                    let weak = Weak::clone(&weak);
                    move || match Weak::upgrade(&weak).and_then(|s| s.degradation_stats()) {
                        Some(stats) => stats.trace_json(),
                        None => "null".to_string(),
                    }
                }),
            );
        }
        self.bus.register_obs(recorder.as_ref(), &name("bus"));
        if let Some(ctrl) = self.overload.read().as_ref() {
            ctrl.register_obs(recorder.as_ref(), &name("overload"));
        }
        *self.obs.write() = ServiceObs::attach(recorder, &self.id);
    }

    /// The installed observability recorder (a
    /// [`oasis_obs::NoopRecorder`] until [`OasisService::set_obs`]).
    pub fn obs_recorder(&self) -> Arc<dyn oasis_obs::Recorder> {
        Arc::clone(&self.obs.read().recorder)
    }

    /// Overload-control counters, or `None` when no admission controller
    /// is installed (see [`OasisService::set_overload`]).
    pub fn overload_stats(&self) -> Option<OverloadStats> {
        self.overload.read().as_ref().map(|c| c.stats())
    }

    /// Virtual time of the most recent operation this service handled.
    /// Event- and transport-driven code paths (which arrive without an
    /// [`EnvContext`]) use it to timestamp audit entries.
    pub fn last_seen_now(&self) -> u64 {
        self.last_now.load(Ordering::Relaxed)
    }

    fn record_shard(&self, cert_id: CertId) -> &Mutex<CertShard> {
        &self.shards[shard_of_cert(cert_id)]
    }

    // ------------------------------------------------------------------
    // Durability: write-ahead journal, snapshots, recovery, catch-up
    // ------------------------------------------------------------------

    /// Appends `event` to the journal (no-op without a journal, or
    /// while recovery is replaying).
    ///
    /// # Errors
    ///
    /// [`OasisError::Journal`] when the backing store rejects the
    /// append — the caller decides whether that aborts the operation
    /// (issuance: yes) or merely loses durability (revocation: no).
    fn journal(&self, event: &SecurityEvent) -> Result<(), OasisError> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        if d.replaying.load(Ordering::Relaxed) {
            return Ok(());
        }
        d.store
            .append(event)
            .map_err(|e| OasisError::Journal(e.to_string()))?;
        d.appends_since_snapshot.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// True exactly once after [`OasisService::chaos_arm_crash_after_journal`]:
    /// the caller must return *without* applying the journalled change,
    /// simulating a crash inside the append→apply window.
    fn chaos_crash_pending(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|d| d.crash_after_append.swap(false, Ordering::Relaxed))
    }

    /// Arms the kill-during-commit chaos hook: the next journalled
    /// operation appends its event and then "crashes" (returns a
    /// failure) without applying it in memory. Recovery replay must
    /// heal exactly this window. Returns `false` without a journal.
    #[doc(hidden)]
    pub fn chaos_arm_crash_after_journal(&self) -> bool {
        match &self.durable {
            Some(d) => {
                d.crash_after_append.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Takes an automatic snapshot when the configured append budget is
    /// spent. Called from mutating operations *after* their in-memory
    /// apply, with no lock held.
    fn maybe_autosnapshot(&self) {
        let Some(d) = &self.durable else {
            return;
        };
        let Some(every) = d.snapshot_every else {
            return;
        };
        if d.appends_since_snapshot.load(Ordering::Relaxed) >= every {
            let _ = self.snapshot();
        }
    }

    /// Memoises a successful foreign validation and journals it, so a
    /// recovered service restores its cache warmth instead of
    /// stampeding issuers with callbacks.
    fn remember_validation(&self, crr: &Crr, presenter: &PrincipalId, now: u64) {
        if let Some(cache) = &self.vcache {
            cache.store(crr.clone(), presenter.clone(), now);
            let _ = self.journal(&SecurityEvent::ValidationGranted {
                crr: crr.clone(),
                presenter: presenter.clone(),
                at: now,
            });
            self.maybe_autosnapshot();
        }
    }

    /// Rotates the issuer secret to a fresh epoch, journalling the
    /// policy-epoch change. Certificates issued under previous epochs
    /// keep verifying until those epochs are retired.
    pub fn rotate_secret(&self, now: u64) -> SecretEpoch {
        self.last_now.store(now, Ordering::Relaxed);
        let epoch = self.secret.rotate();
        let _ = self.journal(&SecurityEvent::EpochChanged {
            epoch: epoch.0,
            at: now,
        });
        self.maybe_autosnapshot();
        epoch
    }

    /// Journal append/byte/heal counters, or `None` without a journal.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.durable.as_ref().map(|d| d.store.journal_stats())
    }

    /// Writes a [`ServiceSnapshot`] of the full record, dependency, and
    /// watermark state and truncates the journal records it covers.
    /// Returns how many journal records were truncated (0 without a
    /// journal).
    ///
    /// # Errors
    ///
    /// [`OasisError::Journal`] when the snapshot store rejects the
    /// write; the journal is left untouched in that case.
    pub fn snapshot(&self) -> Result<u64, OasisError> {
        let Some(d) = &self.durable else {
            return Ok(0);
        };
        // Exclusive against every journal-append → apply window: no
        // event ≤ covered_seq can still be unapplied while we scan.
        let commit = d.commit.write();
        let covered = d.store.last_seq();
        let mut records: Vec<SnapshotRecord> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            records.extend(shard.records.values().map(|r| SnapshotRecord {
                record: r.record.clone(),
                depends_on: r.depends_on.clone(),
                retained_checks: r.retained_checks.clone(),
            }));
        }
        drop(commit);
        records.sort_by_key(|r| r.record.crr.cert_id.0);
        let watermarks = self.watermarks();
        // Capture the own-topic retained ring (empty when retention is
        // off): a replay from 0 returns exactly the ring contents.
        let retained = self
            .bus
            .replay_after(&revocation_topic(&self.id), 0)
            .0
            .iter()
            .map(RetainedEntry::from_delivered)
            .collect();
        let snap = ServiceSnapshot {
            next_cert: self.next_cert.load(Ordering::Relaxed),
            records,
            watermarks,
            retained,
        };
        let truncated = d
            .store
            .write_snapshot(covered, &snap)
            .map_err(|e| OasisError::Journal(e.to_string()))?;
        d.appends_since_snapshot.store(0, Ordering::Relaxed);
        Ok(truncated)
    }

    /// The per-topic revocation watermarks currently held, sorted by
    /// topic (empty without a journal).
    pub fn watermarks(&self) -> Vec<Watermark> {
        let Some(d) = &self.durable else {
            return Vec::new();
        };
        let wm = d.watermarks.lock();
        let mut out: Vec<Watermark> = wm
            .iter()
            .map(|(topic, &(topic_seq, global_seq))| Watermark {
                topic: topic.clone(),
                topic_seq,
                global_seq,
            })
            .collect();
        drop(wm);
        out.sort_by(|a, b| a.topic.cmp(&b.topic));
        out
    }

    /// Rebuilds the service's certificate, dependency, cache, and
    /// watermark state from the journal: loads the newest valid
    /// snapshot (a corrupt one is *ignored*, falling back to full
    /// replay) and replays the journal suffix idempotently. Policy
    /// (roles and rules) is configuration, not state — re-install it
    /// before or after calling this.
    ///
    /// When any state was restored, the report's `catchup_required` is
    /// set and [`OasisService::catchup_pending`] turns true: until
    /// [`OasisService::catch_up`] (or [`OasisService::complete_catchup`])
    /// runs, cached foreign validations are treated as suspect, because
    /// revocations may have been published while this service was down.
    ///
    /// Secret material is intentionally never journalled; a service
    /// whose secret rotated before the crash must be reconstructed with
    /// [`ServiceConfig::with_secret`].
    ///
    /// # Errors
    ///
    /// [`OasisError::Journal`] when the backing store cannot be read at
    /// all. Torn tails and corrupt snapshots are *not* errors — they
    /// are healed/skipped and reported in the [`RecoveryReport`].
    pub fn recover(&self, now: u64) -> Result<RecoveryReport, OasisError> {
        let Some(d) = &self.durable else {
            return Ok(RecoveryReport::default());
        };
        self.last_now.store(now, Ordering::Relaxed);
        let recovered = d
            .store
            .load()
            .map_err(|e| OasisError::Journal(e.to_string()))?;
        // A torn tail may have been healed when the journal was opened
        // (before this call) or surface now at load time; report both.
        let mut report = RecoveryReport {
            snapshot_corrupt: recovered.snapshot_corrupt,
            torn_tail_bytes: recovered.tail.torn_bytes + d.store.open_tail().torn_bytes,
            ..RecoveryReport::default()
        };
        d.replaying.store(true, Ordering::Relaxed);
        if let Some((covered, snapshot)) = recovered.snapshot {
            report.snapshot_covered_seq = covered;
            self.apply_snapshot(snapshot, &mut report);
        }
        for (_seq, event) in &recovered.events {
            self.apply_event(event, &mut report);
            report.events_replayed += 1;
        }
        d.replaying.store(false, Ordering::Relaxed);
        report.watermarks = self.watermarks();
        if report.records_restored > 0
            || report.events_replayed > 0
            || report.snapshot_covered_seq > 0
        {
            d.catchup.store(true, Ordering::Relaxed);
            report.catchup_required = true;
        }
        self.audit.record(
            now,
            AuditKind::Recovered {
                events_replayed: report.events_replayed,
                records_restored: report.records_restored,
            },
        );
        Ok(report)
    }

    /// Applies a loaded snapshot: records and their dependency edges,
    /// the next certificate id, and the delivery watermarks.
    fn apply_snapshot(&self, snapshot: ServiceSnapshot, report: &mut RecoveryReport) {
        for entry in snapshot.records {
            let cert_id = entry.record.crr.cert_id;
            if self
                .record_shard(cert_id)
                .lock()
                .records
                .contains_key(&cert_id)
            {
                continue;
            }
            self.install_record(RecordState::new(
                entry.record,
                entry.depends_on,
                entry.retained_checks,
            ));
            report.records_restored += 1;
        }
        self.next_cert
            .fetch_max(snapshot.next_cert, Ordering::Relaxed);
        if let Some(d) = &self.durable {
            let mut wm = d.watermarks.lock();
            for mark in snapshot.watermarks {
                let entry = wm.entry(mark.topic).or_insert((0, 0));
                entry.0 = entry.0.max(mark.topic_seq);
                entry.1 = entry.1.max(mark.global_seq);
            }
        }
        for entry in &snapshot.retained {
            self.bus.restore_retained(entry.to_delivered());
            report.retained_restored += 1;
        }
    }

    /// Replays one journalled event. Idempotent: replaying an event
    /// whose effect is already present (snapshot overlap, duplicate
    /// replay, crash-after-apply) changes nothing.
    fn apply_event(&self, event: &SecurityEvent, report: &mut RecoveryReport) {
        match event {
            SecurityEvent::CertIssued {
                record,
                depends_on,
                retained_checks,
            } => {
                let cert_id = record.crr.cert_id;
                if self
                    .record_shard(cert_id)
                    .lock()
                    .records
                    .contains_key(&cert_id)
                {
                    return;
                }
                self.install_record(RecordState::new(
                    record.clone(),
                    depends_on.clone(),
                    retained_checks.clone(),
                ));
                self.next_cert.fetch_max(cert_id.0 + 1, Ordering::Relaxed);
                report.records_restored += 1;
            }
            SecurityEvent::ValidationGranted { crr, presenter, at } => {
                if let Some(cache) = &self.vcache {
                    cache.store(crr.clone(), presenter.clone(), *at);
                    report.validations_restored += 1;
                }
            }
            SecurityEvent::CertRevoked {
                cert_id,
                reason,
                at,
            } => {
                if self.replay_status_change(
                    *cert_id,
                    CredStatus::Revoked {
                        reason: reason.clone(),
                        at: *at,
                    },
                ) {
                    report.revocations_replayed += 1;
                }
            }
            SecurityEvent::CertExpired { cert_id, at } => {
                if self.replay_status_change(*cert_id, CredStatus::Expired { at: *at }) {
                    report.revocations_replayed += 1;
                }
            }
            SecurityEvent::RevocationApplied {
                topic,
                topic_seq,
                global_seq,
                crr,
            } => {
                if let Some(cache) = &self.vcache {
                    cache.invalidate(crr);
                }
                // The live cascade consumed this dependency entry and
                // journalled each collapsed certificate as its own
                // CertRevoked event, so replay only mirrors the index
                // removal and the watermark.
                self.shards[shard_of_hash(crr)].lock().dep_index.remove(crr);
                if let Some(d) = &self.durable {
                    let mut wm = d.watermarks.lock();
                    let entry = wm.entry(topic.clone()).or_insert((0, 0));
                    entry.0 = entry.0.max(*topic_seq);
                    entry.1 = entry.1.max(*global_seq);
                }
            }
            // Secret material is never journalled; the epoch marker is
            // an audit fact, not replayable state.
            SecurityEvent::EpochChanged { .. } => {}
            SecurityEvent::RetainedPublished { entry } => {
                // Rebuild the own-topic retained ring with the original
                // bus numbering; restore is idempotent and order-free,
                // so snapshot/journal overlap is harmless.
                self.bus.restore_retained(entry.to_delivered());
                report.retained_restored += 1;
            }
        }
    }

    /// Marks a record's status during replay, mirroring the index
    /// cleanup the live revocation path performs. Returns whether the
    /// record was active (i.e. the replay changed anything).
    fn replay_status_change(&self, cert_id: CertId, status: CredStatus) -> bool {
        let crr = {
            let mut shard = self.record_shard(cert_id).lock();
            let Some(rec) = shard.records.get_mut(&cert_id) else {
                return false;
            };
            if !rec.record.status.is_active() {
                return false;
            }
            rec.record.status = status;
            rec.record.crr.clone()
        };
        // The live publish→subscribe cycle removed the revoked
        // certificate's own dependency entry (cascade bookkeeping).
        self.shards[shard_of_hash(&crr)]
            .lock()
            .dep_index
            .remove(&crr);
        true
    }

    /// Inserts a record and its dependency/fact edges — edges first,
    /// then the record, one shard lock at a time (same ordering as
    /// live issuance). Inactive records get no edges: nothing may
    /// cascade off a revoked certificate.
    ///
    /// Non-empty retained checks are compiled to a [`CheckPlan`] here —
    /// before any shard lock is taken — so every install path (live
    /// issuance, snapshot restore, journal replay) gets the compiled
    /// form.
    fn install_record(&self, mut state: RecordState) {
        if !state.retained_checks.is_empty() {
            state.check = Some(Arc::new(CheckPlan::compile(
                &self.id,
                state.retained_checks.clone(),
            )));
        }
        let cert_id = state.record.crr.cert_id;
        if state.record.status.is_active() {
            for dep in &state.depends_on {
                self.shards[shard_of_hash(dep)]
                    .lock()
                    .dep_index
                    .entry(dep.clone())
                    .or_default()
                    .insert(cert_id);
            }
            for atom in &state.retained_checks {
                if let Atom::EnvFact {
                    relation,
                    args,
                    negated,
                } = atom
                {
                    if let Some(tuple) = args.iter().map(term_as_const).collect::<Option<Vec<_>>>()
                    {
                        let key = (relation.clone(), tuple);
                        self.shards[shard_of_hash(&key)]
                            .lock()
                            .fact_index
                            .entry(key)
                            .or_default()
                            .push((cert_id, !negated));
                    }
                }
            }
        }
        self.record_shard(cert_id)
            .lock()
            .records
            .insert(cert_id, state);
    }

    /// Whether recovery restored state that has not yet been reconciled
    /// with the bus ([`OasisService::catch_up`]). While pending, cached
    /// foreign validations never grant on their own.
    pub fn catchup_pending(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|d| d.catchup.load(Ordering::Relaxed))
    }

    /// Clears the catch-up-pending flag. [`OasisService::catch_up`]
    /// does this implicitly only when its replay was gap-free; call it
    /// directly when the operator accepts the risk (or no issuers are
    /// involved).
    pub fn complete_catchup(&self) {
        if let Some(d) = &self.durable {
            d.catchup.store(false, Ordering::Relaxed);
        }
    }

    /// Closes the revocation-delivery gap for one topic after recovery:
    /// replays every event after our persisted watermark from the
    /// publisher's retained ring on `source`
    /// ([`EventBus::replay_after`]) and applies each one exactly once
    /// (already-seen sequence numbers are skipped).
    ///
    /// If the ring had already evicted part of the gap (`complete` is
    /// `false` in the report), every cached validation for that topic's
    /// issuer is dropped — missed revocations can then only be
    /// discovered by fresh issuer callbacks, which is the safe side.
    /// A gap-free replay clears [`OasisService::catchup_pending`].
    pub fn catch_up(&self, source: &EventBus<CertEvent>, topic: &str, now: u64) -> CatchUpReport {
        let after = self.watermark_for(topic);
        let (events, complete) = source.replay_after(&Topic::new(topic), after);
        self.catch_up_with(topic, &events, complete, now)
    }

    /// The persisted per-topic watermark: the highest `topic_seq` this
    /// service has applied from `topic` (0 when none). This is the
    /// `after` value to hand a remote publisher when requesting a
    /// resync over the wire.
    pub fn watermark_for(&self, topic: &str) -> u64 {
        self.durable
            .as_ref()
            .and_then(|d| d.watermarks.lock().get(topic).map(|&(ts, _)| ts))
            .unwrap_or(0)
    }

    /// Replays this service's own retained ring for `topic` — the
    /// publisher side of a catch-up resync. A server hosting this
    /// service answers a subscriber's resync request with exactly this.
    /// Requires [`ServiceConfig::with_revocation_retention`] (an
    /// unretained topic replays nothing, and `complete` is only `true`
    /// if nothing was ever published on it).
    pub fn replay_retained(
        &self,
        topic: &str,
        after_topic_seq: u64,
    ) -> (Vec<DeliveredEvent<CertEvent>>, bool) {
        self.bus.replay_after(&Topic::new(topic), after_topic_seq)
    }

    /// As [`OasisService::catch_up`], but applying an event batch
    /// fetched elsewhere — typically a wire-layer resync response from
    /// the publisher. `complete` must be the publisher's gap-free flag
    /// for the batch; passing `true` for an incomplete batch silently
    /// loses revocations.
    pub fn catch_up_with(
        &self,
        topic: &str,
        events: &[DeliveredEvent<CertEvent>],
        complete: bool,
        now: u64,
    ) -> CatchUpReport {
        self.last_now.store(now, Ordering::Relaxed);
        let mut report = CatchUpReport {
            replayed: events.len() as u64,
            applied: 0,
            complete,
        };
        for event in events {
            if self.apply_resynced(event) {
                report.applied += 1;
            }
        }
        if complete {
            self.complete_catchup();
        } else if let Some(cache) = &self.vcache {
            if let Some(issuer) = topic.strip_prefix("cred.revoked.") {
                cache.invalidate_issuer(&ServiceId::new(issuer));
            }
        }
        report
    }

    /// Applies one resynced revocation event unless its sequence number
    /// is at or below the topic watermark (already applied before the
    /// crash, or duplicated by overlapping catch-ups).
    fn apply_resynced(&self, event: &DeliveredEvent<CertEvent>) -> bool {
        if let Some(d) = &self.durable {
            let wm = d.watermarks.lock();
            if let Some(&(topic_seq, _)) = wm.get(event.topic.as_str()) {
                if event.topic_seq <= topic_seq {
                    return false;
                }
            }
        }
        self.handle_revocation_delivery(event);
        true
    }

    /// Every `cred.revoked.*` delivery lands here — live from the bus
    /// or resynced by [`OasisService::catch_up`]: evict the cache,
    /// journal the watermark (foreign topics only: our own revocations
    /// are already journalled as [`SecurityEvent::CertRevoked`]), and
    /// run the dependency cascade.
    fn handle_revocation_delivery(&self, event: &DeliveredEvent<CertEvent>) {
        // Cascade hop: parent this subscriber's work on the publication
        // that caused it, and pin the child context so transitive
        // collapses (which re-enter `revoke_certificate` on this thread)
        // chain onto this span.
        let sink = self.obs.read().sink.clone();
        let _scope = if sink.is_recording() {
            event.trace.map(|trace| {
                let child = sink.emit(
                    trace,
                    self.id.as_str(),
                    "svc.cascade",
                    event.timestamp,
                    event.timestamp,
                );
                oasis_obs::scope(child)
            })
        } else {
            None
        };
        if let Some(cache) = &self.vcache {
            cache.invalidate(&event.payload.crr);
        }
        if let Some(d) = self
            .durable
            .as_ref()
            .filter(|_| event.topic != revocation_topic(&self.id))
        {
            let _commit = d.commit.read();
            let _ = self.journal(&SecurityEvent::RevocationApplied {
                topic: event.topic.as_str().to_string(),
                topic_seq: event.topic_seq,
                global_seq: event.global_seq,
                crr: event.payload.crr.clone(),
            });
            let mut wm = d.watermarks.lock();
            let entry = wm.entry(event.topic.as_str().to_string()).or_insert((0, 0));
            entry.0 = entry.0.max(event.topic_seq);
            entry.1 = entry.1.max(event.global_seq);
            drop(wm);
        }
        self.handle_revocation_event(&event.payload);
        self.maybe_autosnapshot();
    }

    /// Publishes on this service's own revocation topic and — when the
    /// topic is retained and a journal is attached — journals the
    /// publication with its bus-assigned sequence numbers
    /// ([`SecurityEvent::RetainedPublished`]). The retained ring is the
    /// authoritative source subscribers catch up from, so it must
    /// survive a crash or replica failover with its numbering intact.
    fn publish_revocation_event(&self, event: CertEvent, now: u64) {
        let topic = revocation_topic(&self.id);
        let (topic_seq, global_seq, _delivered) =
            self.bus.publish_at_tracked(&topic, event.clone(), now);
        if let Some(d) = self
            .durable
            .as_ref()
            .filter(|d| d.retain_publishes && !d.replaying.load(Ordering::Relaxed))
        {
            let _commit = d.commit.read();
            // Best-effort, like the CertRevoked append itself: losing
            // the ring entry degrades catch-up completeness, never
            // blocks the revocation.
            let _ = self.journal(&SecurityEvent::RetainedPublished {
                entry: RetainedEntry {
                    topic: topic.as_str().to_string(),
                    topic_seq,
                    global_seq,
                    timestamp: now,
                    event,
                },
            });
        }
    }

    // ------------------------------------------------------------------
    // Failure awareness (issuer heartbeats and degradation)
    // ------------------------------------------------------------------

    /// Starts monitoring `issuer` as a heartbeat source expected to beat
    /// every `interval` ticks, with an implicit first beat at `now`.
    /// Re-watching a known issuer resets its beat clock and clears any
    /// dead-issuer state. Returns `false` when the failure-aware layer is
    /// off ([`ServiceConfig::with_heartbeats`] not configured).
    pub fn watch_issuer(&self, issuer: &ServiceId, interval: u64, now: u64) -> bool {
        match &self.fa {
            Some(fa) => {
                fa.monitor
                    .register(FailureAware::source(issuer), interval, now);
                fa.dead.lock().remove(issuer);
                true
            }
            None => false,
        }
    }

    /// Overrides the [`DegradationPolicy`] for one issuer (others keep the
    /// [`HeartbeatConfig::policy`] default). Returns `false` when the
    /// failure-aware layer is off.
    pub fn set_issuer_policy(&self, issuer: &ServiceId, policy: DegradationPolicy) -> bool {
        match &self.fa {
            Some(fa) => {
                fa.overrides.write().insert(issuer.clone(), policy);
                true
            }
            None => false,
        }
    }

    /// Records a heartbeat from `issuer` at `now`. A beat from an issuer
    /// previously observed dead clears its dead-issuer state (its evicted
    /// cache entries stay evicted, and any degraded roles stay revoked —
    /// clients re-activate against the live issuer). Returns `false` if
    /// the issuer is not watched or the layer is off.
    pub fn issuer_beat(&self, issuer: &ServiceId, now: u64) -> bool {
        let Some(fa) = &self.fa else {
            return false;
        };
        self.last_now.store(now, Ordering::Relaxed);
        if !fa.monitor.beat(&FailureAware::source(issuer), now) {
            return false;
        }
        if fa.dead.lock().remove(issuer).is_some() {
            fa.counters
                .issuer_recoveries
                .fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// The health of a watched issuer at `now`, or `None` when the issuer
    /// is unwatched or the failure-aware layer is off.
    pub fn issuer_health(&self, issuer: &ServiceId, now: u64) -> Option<SourceHealth> {
        self.fa
            .as_ref()?
            .monitor
            .health(&FailureAware::source(issuer), now)
    }

    /// Counters from the failure-aware layer, or `None` when it is off.
    pub fn degradation_stats(&self) -> Option<DegradationStats> {
        self.fa.as_ref().map(FailureAware::stats)
    }

    /// Advances the failure-aware layer to `now`: issuers newly observed
    /// dead get their cached validations evicted, and dead issuers past
    /// the [`HeartbeatConfig::grace`] period under
    /// [`DegradationPolicy::FailSafe`] have their dependent certificates
    /// deactivated through the ordinary revocation cascade. Call this
    /// periodically (each simulator tick, or on a maintenance timer).
    /// Returns the CRRs revoked directly by degradation.
    pub fn tick_heartbeats(&self, now: u64) -> Vec<Crr> {
        let Some(fa) = &self.fa else {
            return Vec::new();
        };
        self.last_now.store(now, Ordering::Relaxed);
        for (source, health) in fa.monitor.overdue(now) {
            if health == SourceHealth::Dead {
                self.note_issuer_dead(&ServiceId::new(source.0), now);
            }
        }
        // Collect grace-expired fail-safe issuers under the ledger lock,
        // then revoke with no lock held (cascades re-enter the shards).
        let mut expired: Vec<ServiceId> = Vec::new();
        {
            let mut dead = fa.dead.lock();
            for (issuer, entry) in dead.iter_mut() {
                if entry.degraded || now.saturating_sub(entry.since) < fa.grace {
                    continue;
                }
                if fa.policy_for(issuer) == DegradationPolicy::FailSafe {
                    entry.degraded = true;
                    expired.push(issuer.clone());
                }
            }
        }
        expired.sort();
        let mut revoked = Vec::new();
        for issuer in expired {
            fa.counters.degraded_issuers.fetch_add(1, Ordering::Relaxed);
            revoked.extend(self.deactivate_issuer_dependents(&issuer, now));
        }
        revoked
    }

    /// Enters `issuer` in the dead ledger (first observation stamps
    /// `since`) and evicts its cached validations, once.
    fn note_issuer_dead(&self, issuer: &ServiceId, now: u64) {
        let Some(fa) = &self.fa else {
            return;
        };
        let mut dead = fa.dead.lock();
        let entry = dead.entry(issuer.clone()).or_insert(DeadIssuer {
            since: now,
            evicted: false,
            degraded: false,
        });
        if entry.evicted {
            return;
        }
        entry.evicted = true;
        drop(dead);
        if let Some(cache) = &self.vcache {
            let evicted = cache.invalidate_issuer(issuer);
            fa.counters
                .dead_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Revokes every active certificate that retains a credential issued
    /// by `issuer` (the fail-safe degradation step). Cascades collapse
    /// transitive dependents as for any other revocation.
    fn deactivate_issuer_dependents(&self, issuer: &ServiceId, now: u64) -> Vec<Crr> {
        let mut victims: Vec<Crr> = Vec::new();
        // Ascending shard order, one lock at a time.
        for shard in &self.shards {
            let shard = shard.lock();
            victims.extend(
                shard
                    .records
                    .values()
                    .filter(|r| {
                        r.record.status.is_active()
                            && r.depends_on.iter().any(|dep| dep.issuer == *issuer)
                    })
                    .map(|r| r.record.crr.clone()),
            );
        }
        victims.sort_by_key(|crr| crr.cert_id.0);
        let fa = self.fa.as_ref().expect("degradation requires heartbeats");
        let reason = format!("issuer `{issuer}` dead: fail-safe degradation");
        let mut revoked = Vec::new();
        for crr in victims {
            // Cascades may have collapsed later victims already.
            if self.revoke_certificate(crr.cert_id, &reason, now) {
                fa.counters.degraded_certs.fetch_add(1, Ordering::Relaxed);
                revoked.push(crr);
            }
        }
        revoked
    }

    // ------------------------------------------------------------------
    // Policy definition
    // ------------------------------------------------------------------

    /// Defines a role with a typed parameter schema.
    ///
    /// # Errors
    ///
    /// [`OasisError::DuplicateRole`] /
    /// [`OasisError::DuplicateParam`].
    pub fn define_role(
        &self,
        name: impl Into<RoleName>,
        params: &[(&str, ValueType)],
        initial: bool,
    ) -> Result<(), OasisError> {
        let name = name.into();
        let schema = params.iter().map(|(n, t)| ((*n).to_string(), *t)).collect();
        let def = RoleDef::new(name.clone(), schema, initial)?;
        let mut policy = self.policy.write();
        if policy.roles.contains_key(&name) {
            return Err(OasisError::DuplicateRole(name));
        }
        policy.roles.insert(name, def);
        Ok(())
    }

    /// The definition of a role, if present.
    pub fn role(&self, name: &RoleName) -> Option<RoleDef> {
        self.policy.read().roles.get(name).cloned()
    }

    /// Adds an activation rule `role(head_args) ← conditions`, with
    /// `membership` naming the condition indices that must remain true
    /// while the role is active.
    ///
    /// # Errors
    ///
    /// [`OasisError::UnknownRole`] if the role is undefined;
    /// [`OasisError::BadMembershipIndex`] for a bad membership index.
    pub fn add_activation_rule(
        &self,
        role: impl Into<RoleName>,
        head_args: Vec<Term>,
        conditions: Vec<Atom>,
        membership: Vec<usize>,
    ) -> Result<RuleId, OasisError> {
        let role = role.into();
        let id = RuleId(self.next_rule.fetch_add(1, Ordering::Relaxed));
        let rule = ActivationRule {
            id,
            role: role.clone(),
            head_args,
            conditions,
            membership,
        };
        rule.validate()?;
        let plan = RulePlan::compile(&self.id, &rule.head_args, &rule.conditions);
        let mut policy = self.policy.write();
        if !policy.roles.contains_key(&role) {
            return Err(OasisError::UnknownRole(role));
        }
        // Prerequisite DAG: local prereq → this role. (Foreign prereqs
        // are tracked per-certificate by the dependency index, not here.)
        for cond in &rule.conditions {
            if let Atom::Prereq {
                service,
                role: prereq,
                ..
            } = cond
            {
                if service.as_ref().is_none_or(|s| *s == self.id) {
                    policy
                        .prereq_children
                        .entry(prereq.clone())
                        .or_default()
                        .insert(role.clone());
                }
            }
        }
        // Rules and plans stay index-aligned under this write lock.
        Arc::make_mut(policy.activation_rules.entry(role.clone()).or_default()).push(rule);
        Arc::make_mut(policy.activation_plans.entry(role).or_default()).push(plan);
        Ok(id)
    }

    /// Adds a service-use rule for `method(head_args)`.
    pub fn add_invocation_rule(
        &self,
        method: impl Into<String>,
        head_args: Vec<Term>,
        conditions: Vec<Atom>,
    ) -> RuleId {
        let method = method.into();
        let id = RuleId(self.next_rule.fetch_add(1, Ordering::Relaxed));
        let rule = InvocationRule {
            id,
            method: method.clone(),
            head_args,
            conditions,
        };
        let plan = RulePlan::compile(&self.id, &rule.head_args, &rule.conditions);
        let mut policy = self.policy.write();
        Arc::make_mut(policy.invocation_rules.entry(method.clone()).or_default()).push(rule);
        Arc::make_mut(policy.invocation_plans.entry(method).or_default()).push(plan);
        id
    }

    /// Grants `role` the privilege of issuing appointment certificates of
    /// kind `appointment`.
    ///
    /// # Errors
    ///
    /// [`OasisError::UnknownRole`] if the role is undefined.
    pub fn grant_appointer(
        &self,
        role: impl Into<RoleName>,
        appointment: impl Into<String>,
    ) -> Result<(), OasisError> {
        let role = role.into();
        let mut policy = self.policy.write();
        if !policy.roles.contains_key(&role) {
            return Err(OasisError::UnknownRole(role));
        }
        policy
            .appointers
            .entry(appointment.into())
            .or_default()
            .insert(role);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Credential validation
    // ------------------------------------------------------------------

    /// Validates a certificate *this service issued*: signature (against
    /// the presenting principal), issuer record, status, and expiry.
    /// This is the issuer side of the validation callback (Sect. 4).
    ///
    /// # Errors
    ///
    /// [`OasisError::InvalidCredential`] or
    /// [`OasisError::UnknownCertificate`].
    pub fn validate_own(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        let crr = credential.crr().clone();
        if crr.issuer != self.id {
            return Err(OasisError::InvalidCredential {
                crr,
                reason: format!("not issued by `{}`", self.id),
            });
        }
        let Some(key) = self.secret.key_for(credential.epoch()) else {
            return Err(OasisError::InvalidCredential {
                crr,
                reason: format!(
                    "secret {} retired; certificate must be re-issued",
                    credential.epoch()
                ),
            });
        };
        if !credential.verify(&key, presenter) {
            return Err(OasisError::InvalidCredential {
                crr,
                reason: "signature check failed (tampered, forged, or stolen)".into(),
            });
        }

        // Lazy expiry: an appointment certificate past its deadline is
        // marked expired and its dependents collapse.
        if let Credential::Appointment(appt) = credential {
            if appt.is_expired(now) {
                self.expire_certificate(crr.cert_id, now);
                return Err(OasisError::InvalidCredential {
                    crr,
                    reason: "expired".into(),
                });
            }
        }

        let shard = self.record_shard(crr.cert_id).lock();
        let Some(rec) = shard.records.get(&crr.cert_id) else {
            drop(shard);
            return Err(OasisError::UnknownCertificate(crr));
        };
        if rec.record.principal != *presenter {
            return Err(OasisError::InvalidCredential {
                crr,
                reason: "presented by a different principal".into(),
            });
        }
        match &rec.record.status {
            CredStatus::Active => Ok(()),
            status => Err(OasisError::InvalidCredential {
                crr,
                reason: status.to_string(),
            }),
        }
    }

    /// Validates any credential: own certificates directly, foreign ones
    /// through the configured validator (callback to the issuer), with
    /// successful foreign validations memoised when the validation cache
    /// is enabled.
    ///
    /// When the failure-aware layer is on
    /// ([`ServiceConfig::with_heartbeats`]) and the credential's issuer is
    /// a watched heartbeat source, the cache is only authoritative while
    /// the issuer is healthy: a *late* issuer forces a fresh callback
    /// (with the [`DegradationPolicy`] deciding what a callback failure
    /// means), and a *dead* issuer's entries are evicted outright.
    ///
    /// # Errors
    ///
    /// As [`OasisService::validate_own`], plus [`OasisError::NoValidator`]
    /// when a foreign issuer is unreachable, or whatever transient error
    /// ([`OasisError::IssuerTimeout`], [`OasisError::CircuitOpen`]) the
    /// configured validator reports for an unreachable issuer.
    pub fn validate_credential(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        if credential.issuer() == &self.id {
            return self.validate_own(credential, presenter, now);
        }
        let issuer = credential.issuer().clone();
        // After a recovery, until catch-up confirms no revocation was
        // missed while the service was down, a cache hit alone never
        // grants: the entry may predate a revocation we did not see.
        if self.catchup_pending() {
            if self.fa.is_some() {
                return self.validate_suspect(credential, presenter, now, &issuer);
            }
            let result = self.issuer_callback(credential, presenter, now);
            if result.is_ok() {
                self.remember_validation(credential.crr(), presenter, now);
            }
            return result;
        }
        let health = self
            .fa
            .as_ref()
            .and_then(|fa| fa.monitor.health(&FailureAware::source(&issuer), now));
        match health {
            // Unwatched issuer, or failure-awareness off: the cache is
            // trusted within its TTL, exactly as before.
            None | Some(SourceHealth::Healthy) => {
                if let Some(cache) = &self.vcache {
                    if cache.lookup(credential.crr(), presenter, now) {
                        return Ok(());
                    }
                }
                let result = self.issuer_callback(credential, presenter, now);
                if result.is_ok() {
                    self.remember_validation(credential.crr(), presenter, now);
                }
                result
            }
            // Late: cached authority is suspect; require a fresh answer.
            Some(SourceHealth::Late) => self.validate_suspect(credential, presenter, now, &issuer),
            // Dead: cached authority is void; only a live answer grants.
            Some(SourceHealth::Dead) => {
                self.note_issuer_dead(&issuer, now);
                let result = self.issuer_callback(credential, presenter, now);
                if result.is_ok() {
                    // The issuer answered, so only its heartbeat path is
                    // broken; fresh authority is safe to memoise.
                    self.remember_validation(credential.crr(), presenter, now);
                }
                result
            }
        }
    }

    /// The late-issuer validation path: a cache hit alone no longer
    /// grants. A fresh callback is attempted; if it fails *transiently*,
    /// the degradation policy decides whether the suspect cache entry may
    /// still be served. A fatal answer (revoked, bad signature) always
    /// wins — stale cache never overrides an authoritative rejection.
    fn validate_suspect(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
        issuer: &ServiceId,
    ) -> Result<(), OasisError> {
        let fa = self.fa.as_ref().expect("suspect path requires heartbeats");
        fa.counters
            .suspect_revalidations
            .fetch_add(1, Ordering::Relaxed);
        let result = self.issuer_callback(credential, presenter, now);
        match result {
            Ok(()) => {
                self.remember_validation(credential.crr(), presenter, now);
                Ok(())
            }
            Err(error) if classify_error(&error) == ErrorClass::Transient => {
                let age = self
                    .vcache
                    .as_ref()
                    .and_then(|cache| cache.age(credential.crr(), presenter, now));
                match (fa.policy_for(issuer), age) {
                    (DegradationPolicy::FailOpen { max_stale_ticks }, Some(age))
                        if age <= max_stale_ticks =>
                    {
                        fa.counters.stale_served.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                    (_, Some(_)) => {
                        fa.counters.stale_refused.fetch_add(1, Ordering::Relaxed);
                        Err(error)
                    }
                    (_, None) => Err(error),
                }
            }
            Err(error) => Err(error),
        }
    }

    /// Performs the callback to a foreign issuer through the configured
    /// validator.
    fn issuer_callback(
        &self,
        credential: &Credential,
        presenter: &PrincipalId,
        now: u64,
    ) -> Result<(), OasisError> {
        let validator = self.validator.read().clone();
        match validator {
            Some(v) => v.validate(credential, presenter, now),
            None => Err(OasisError::NoValidator(credential.issuer().clone())),
        }
    }

    /// Filters the presented credentials down to those that validate,
    /// auditing each rejection. Returns the input slice unchanged — no
    /// clones — in the common case where every credential validates.
    fn validated<'c>(
        &self,
        presented: &'c [Credential],
        presenter: &PrincipalId,
        now: u64,
    ) -> Cow<'c, [Credential]> {
        let mut surviving: Option<Vec<Credential>> = None;
        for (idx, cred) in presented.iter().enumerate() {
            match self.validate_credential(cred, presenter, now) {
                Ok(()) => {
                    if let Some(valid) = surviving.as_mut() {
                        valid.push(cred.clone());
                    }
                }
                Err(err) => {
                    if surviving.is_none() {
                        surviving = Some(presented[..idx].to_vec());
                    }
                    self.audit.record(
                        now,
                        AuditKind::CredentialRejected {
                            principal: presenter.clone(),
                            crr: cred.crr().clone(),
                            reason: err.to_string(),
                        },
                    );
                }
            }
        }
        match surviving {
            Some(valid) => Cow::Owned(valid),
            None => Cow::Borrowed(presented),
        }
    }

    // ------------------------------------------------------------------
    // Role activation (paths 1–2 of Fig 2)
    // ------------------------------------------------------------------

    /// Activates `role(args)` for `principal`, returning the RMC.
    ///
    /// See [`OasisService::activate_role_detailed`] for the full outcome,
    /// and `activate_role_with_key` to bind a session public key into the
    /// certificate.
    ///
    /// # Errors
    ///
    /// [`OasisError::UnknownRole`], [`OasisError::ArityMismatch`],
    /// [`OasisError::TypeMismatch`], or [`OasisError::ActivationDenied`]
    /// when no rule is satisfied.
    pub fn activate_role(
        &self,
        principal: &PrincipalId,
        role: &RoleName,
        args: &[Value],
        presented: &[Credential],
        ctx: &EnvContext,
    ) -> Result<Rmc, OasisError> {
        self.activate_role_detailed(principal, role, args, presented, None, ctx)
            .map(|outcome| outcome.rmc)
    }

    /// As [`OasisService::activate_role`], additionally binding a session
    /// public key into the issued RMC (Sect. 4.1).
    pub fn activate_role_with_key(
        &self,
        principal: &PrincipalId,
        role: &RoleName,
        args: &[Value],
        presented: &[Credential],
        holder_key: PublicKey,
        ctx: &EnvContext,
    ) -> Result<Rmc, OasisError> {
        self.activate_role_detailed(principal, role, args, presented, Some(holder_key), ctx)
            .map(|outcome| outcome.rmc)
    }

    /// The full-fat activation entry point: returns the fired rule and its
    /// bindings alongside the certificate.
    ///
    /// # Errors
    ///
    /// As [`OasisService::activate_role`].
    pub fn activate_role_detailed(
        &self,
        principal: &PrincipalId,
        role: &RoleName,
        args: &[Value],
        presented: &[Credential],
        holder_key: Option<PublicKey>,
        ctx: &EnvContext,
    ) -> Result<ActivationOutcome, OasisError> {
        let result = self.activate_role_inner(principal, role, args, presented, holder_key, ctx);
        let obs = self.obs.read();
        match &result {
            Ok(_) => obs.activations_ok.inc(),
            Err(_) => obs.activations_denied.inc(),
        }
        if obs.sink.is_recording() {
            if let Some(trace) = ctx.trace().or_else(oasis_obs::current) {
                obs.sink.emit(
                    trace,
                    self.id.as_str(),
                    "svc.activate",
                    ctx.now(),
                    ctx.now(),
                );
            }
        }
        result
    }

    fn activate_role_inner(
        &self,
        principal: &PrincipalId,
        role: &RoleName,
        args: &[Value],
        presented: &[Credential],
        holder_key: Option<PublicKey>,
        ctx: &EnvContext,
    ) -> Result<ActivationOutcome, OasisError> {
        self.last_now.store(ctx.now(), Ordering::Relaxed);
        // Argument checking happens under the read lock — no RoleDef
        // clone per activation.
        let (rules, plans) = {
            let policy = self.policy.read();
            policy
                .roles
                .get(role)
                .ok_or_else(|| OasisError::UnknownRole(role.clone()))?
                .check_args(args)?;
            (
                policy
                    .activation_rules
                    .get(role)
                    .cloned()
                    .unwrap_or_default(),
                policy
                    .activation_plans
                    .get(role)
                    .cloned()
                    .unwrap_or_default(),
            )
        };

        let creds = self.validated(presented, principal, ctx.now());

        // Compiled fast path: one credential index for the whole request,
        // indexed candidate fetches per rule. Falls back to the
        // interpreted reference solver when disabled or when the plan
        // table is out of step with the rule table.
        if self.use_plans && plans.len() == rules.len() {
            let index = CredIndex::build(&creds);
            for (rule, plan) in rules.iter().zip(plans.iter()) {
                if let Some(solution) = plan.eval(args, &index, &self.facts, ctx) {
                    return self.issue_rmc(
                        principal, role, args, rule, solution, &creds, holder_key, ctx,
                    );
                }
            }
        } else {
            for rule in rules.iter() {
                let mut seed = Bindings::new();
                if !seed.unify_all(&rule.head_args, args) {
                    continue;
                }
                if let Some(solution) =
                    solve(&self.id, &rule.conditions, seed, &creds, &self.facts, ctx)
                {
                    return self.issue_rmc(
                        principal, role, args, rule, solution, &creds, holder_key, ctx,
                    );
                }
            }
        }

        self.audit.record(
            ctx.now(),
            AuditKind::ActivationDenied {
                principal: principal.clone(),
                role: role.clone(),
                reason: format!("none of {} rule(s) satisfied", rules.len()),
            },
        );
        Err(OasisError::ActivationDenied {
            role: role.clone(),
            principal: principal.clone(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_rmc(
        &self,
        principal: &PrincipalId,
        role: &RoleName,
        args: &[Value],
        rule: &ActivationRule,
        solution: Solution,
        creds: &[Credential],
        holder_key: Option<PublicKey>,
        ctx: &EnvContext,
    ) -> Result<ActivationOutcome, OasisError> {
        let cert_id = CertId(self.next_cert.fetch_add(1, Ordering::Relaxed));
        let crr = Crr::new(self.id.clone(), cert_id);
        let rmc = Rmc::issue(
            &self.secret.current(),
            self.secret.current_epoch(),
            principal,
            crr.clone(),
            role.clone(),
            args.to_vec(),
            ctx.now(),
            holder_key,
        );

        // Membership rule: collect what must *remain* true.
        let mut depends_on: Vec<Crr> = Vec::new();
        let mut retained_checks: Vec<Atom> = Vec::new();
        for &idx in &rule.membership {
            let atom = &rule.conditions[idx];
            if atom.is_credential() {
                if let Some((_, used_crr)) = solution.used.iter().find(|(cond, _)| *cond == idx) {
                    if !depends_on.contains(used_crr) {
                        depends_on.push(used_crr.clone());
                    }
                }
            } else {
                retained_checks.push(substitute_atom(atom, &solution.bindings));
            }
        }

        let record = CredRecord {
            crr: crr.clone(),
            principal: principal.clone(),
            kind: CredentialKind::Rmc,
            name: role.as_str().to_string(),
            args: args.to_vec(),
            issued_at: ctx.now(),
            expires_at: None,
            status: CredStatus::Active,
        };

        // Journal before acknowledging: a journal failure aborts the
        // issuance (the certificate must never outlive a crash its
        // issuer cannot remember). The commit guard keeps a concurrent
        // snapshot from covering this append before the record lands.
        let retained_creds = depends_on.clone();
        {
            let _commit = self.durable.as_ref().map(|d| d.commit.read());
            self.journal(&SecurityEvent::CertIssued {
                record: record.clone(),
                depends_on: depends_on.clone(),
                retained_checks: retained_checks.clone(),
            })?;
            if self.chaos_crash_pending() {
                return Err(OasisError::Journal(
                    "chaos: crashed between journal append and apply".into(),
                ));
            }
            // Dependency and fact edges go in first (one shard lock at a
            // time), then the record itself. A revocation racing this
            // window may find an edge pointing at a record that does not
            // exist yet and drop the cascade — the re-validation below
            // closes exactly that hole.
            self.install_record(RecordState::new(record, depends_on, retained_checks));
        }

        // Close the race with concurrent revocation: the supporting
        // credentials were validated *before* the dependency edges above
        // existed, so a revocation landing in between would have found no
        // dependents. Re-validate now that the edges are in place; any
        // revocation from here on cascades normally.
        for dep in &retained_creds {
            let Some(cred) = creds.iter().find(|c| c.crr() == dep) else {
                continue;
            };
            if self
                .validate_credential(cred, principal, ctx.now())
                .is_err()
            {
                self.revoke_certificate(
                    cert_id,
                    &format!("supporting credential {dep} was revoked during activation"),
                    ctx.now(),
                );
                self.audit.record(
                    ctx.now(),
                    AuditKind::ActivationDenied {
                        principal: principal.clone(),
                        role: role.clone(),
                        reason: format!("supporting credential {dep} revoked concurrently"),
                    },
                );
                return Err(OasisError::ActivationDenied {
                    role: role.clone(),
                    principal: principal.clone(),
                });
            }
        }

        self.audit.record(
            ctx.now(),
            AuditKind::RoleActivated {
                principal: principal.clone(),
                role: role.clone(),
                args: args.to_vec(),
                crr,
            },
        );
        self.maybe_autosnapshot();

        Ok(ActivationOutcome {
            rmc,
            rule: rule.id,
            bindings: solution.bindings,
        })
    }

    // ------------------------------------------------------------------
    // Service use (paths 3–4 of Fig 2)
    // ------------------------------------------------------------------

    /// Authorises an invocation of `method(args)` under the service-use
    /// policy.
    ///
    /// # Errors
    ///
    /// [`OasisError::InvocationDenied`] when no invocation rule is
    /// satisfied (including when the method has no rules at all — deny by
    /// default).
    pub fn invoke(
        &self,
        principal: &PrincipalId,
        method: &str,
        args: &[Value],
        presented: &[Credential],
        ctx: &EnvContext,
    ) -> Result<Invocation, OasisError> {
        let result = self.invoke_inner(principal, method, args, presented, ctx);
        let obs = self.obs.read();
        match &result {
            Ok(_) => obs.invocations_ok.inc(),
            Err(_) => obs.invocations_denied.inc(),
        }
        if obs.sink.is_recording() {
            if let Some(trace) = ctx.trace().or_else(oasis_obs::current) {
                obs.sink
                    .emit(trace, self.id.as_str(), "svc.invoke", ctx.now(), ctx.now());
            }
        }
        result
    }

    fn invoke_inner(
        &self,
        principal: &PrincipalId,
        method: &str,
        args: &[Value],
        presented: &[Credential],
        ctx: &EnvContext,
    ) -> Result<Invocation, OasisError> {
        self.last_now.store(ctx.now(), Ordering::Relaxed);
        let (rules, plans) = {
            let policy = self.policy.read();
            (
                policy
                    .invocation_rules
                    .get(method)
                    .cloned()
                    .unwrap_or_default(),
                policy
                    .invocation_plans
                    .get(method)
                    .cloned()
                    .unwrap_or_default(),
            )
        };
        let creds = self.validated(presented, principal, ctx.now());

        let use_plans = self.use_plans && plans.len() == rules.len();
        let index = use_plans.then(|| CredIndex::build(&creds));
        for (i, rule) in rules.iter().enumerate() {
            let solution = match &index {
                Some(index) => plans[i].eval(args, index, &self.facts, ctx),
                None => {
                    let mut seed = Bindings::new();
                    if !seed.unify_all(&rule.head_args, args) {
                        continue;
                    }
                    solve(&self.id, &rule.conditions, seed, &creds, &self.facts, ctx)
                }
            };
            if let Some(solution) = solution {
                let used: Vec<Crr> = solution.used.into_iter().map(|(_, c)| c).collect();
                self.audit.record(
                    ctx.now(),
                    AuditKind::Invoked {
                        principal: principal.clone(),
                        method: method.to_string(),
                        args: args.to_vec(),
                        credentials: used.clone(),
                    },
                );
                return Ok(Invocation {
                    method: method.to_string(),
                    rule: rule.id,
                    bindings: solution.bindings,
                    used,
                });
            }
        }

        self.audit.record(
            ctx.now(),
            AuditKind::InvocationDenied {
                principal: principal.clone(),
                method: method.to_string(),
                reason: format!("none of {} rule(s) satisfied", rules.len()),
            },
        );
        Err(OasisError::InvocationDenied {
            method: method.to_string(),
            principal: principal.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Appointment (Sect. 2)
    // ------------------------------------------------------------------

    /// Issues an appointment certificate of kind `name` to `appointee`.
    ///
    /// The `appointer` must present a *valid RMC of this service* for a
    /// role that has been granted the appointer privilege for `name`
    /// (via [`OasisService::grant_appointer`]). The certificate's lifetime
    /// is independent of the appointer's session: revoking the appointer's
    /// RMC later does **not** cascade to the appointment.
    ///
    /// # Errors
    ///
    /// [`OasisError::NotAppointer`] when no presented credential carries
    /// the privilege.
    #[allow(clippy::too_many_arguments)]
    pub fn issue_appointment(
        &self,
        appointer: &PrincipalId,
        appointer_creds: &[Credential],
        name: &str,
        args: Vec<Value>,
        appointee: &PrincipalId,
        expires_at: Option<u64>,
        holder_key: Option<PublicKey>,
        ctx: &EnvContext,
    ) -> Result<AppointmentCertificate, OasisError> {
        self.last_now.store(ctx.now(), Ordering::Relaxed);
        let allowed_roles = self
            .policy
            .read()
            .appointers
            .get(name)
            .cloned()
            .unwrap_or_default();

        let creds = self.validated(appointer_creds, appointer, ctx.now());
        let entitled = creds.iter().any(|c| match c {
            Credential::Rmc(rmc) => rmc.crr.issuer == self.id && allowed_roles.contains(&rmc.role),
            Credential::Appointment(_) => false,
        });
        if !entitled {
            return Err(OasisError::NotAppointer {
                principal: appointer.clone(),
                appointment: name.to_string(),
            });
        }

        let cert_id = CertId(self.next_cert.fetch_add(1, Ordering::Relaxed));
        let crr = Crr::new(self.id.clone(), cert_id);
        let cert = AppointmentCertificate::issue(
            &self.secret.current(),
            self.secret.current_epoch(),
            appointee,
            crr.clone(),
            name.to_string(),
            args.clone(),
            ctx.now(),
            expires_at,
            holder_key,
        );

        let record = CredRecord {
            crr: crr.clone(),
            principal: appointee.clone(),
            kind: CredentialKind::Appointment,
            name: name.to_string(),
            args,
            issued_at: ctx.now(),
            expires_at,
            status: CredStatus::Active,
        };
        {
            let _commit = self.durable.as_ref().map(|d| d.commit.read());
            self.journal(&SecurityEvent::CertIssued {
                record: record.clone(),
                depends_on: Vec::new(),
                retained_checks: Vec::new(),
            })?;
            if self.chaos_crash_pending() {
                return Err(OasisError::Journal(
                    "chaos: crashed between journal append and apply".into(),
                ));
            }
            self.record_shard(cert_id)
                .lock()
                .records
                .insert(cert_id, RecordState::new(record, Vec::new(), Vec::new()));
        }

        self.audit.record(
            ctx.now(),
            AuditKind::AppointmentIssued {
                appointer: appointer.clone(),
                appointee: appointee.clone(),
                name: name.to_string(),
                crr,
            },
        );
        self.maybe_autosnapshot();
        Ok(cert)
    }

    // ------------------------------------------------------------------
    // Revocation and active security (Fig 5)
    // ------------------------------------------------------------------

    /// Revokes a certificate this service issued. Dependent certificates
    /// — at this service and at any service sharing the event bus —
    /// collapse transitively before this call returns.
    ///
    /// Returns `true` if the certificate was active.
    pub fn revoke_certificate(&self, cert_id: CertId, reason: &str, now: u64) -> bool {
        let (sink, revocations) = {
            let obs = self.obs.read();
            (obs.sink.clone(), obs.revocations.clone())
        };
        // When the caller is traced (ambient context set by the wire
        // server or a bench driver), emit the revocation span and pin
        // its child as the ambient context for the journal append (the
        // replicated CIV's spans) and the bus publication (cascade
        // fan-out spans) that run inside the inner call.
        let _scope = if sink.is_recording() {
            oasis_obs::current().map(|trace| {
                let child = sink.emit(trace, self.id.as_str(), "svc.revoke", now, now);
                oasis_obs::scope(child)
            })
        } else {
            None
        };
        let revoked = self.revoke_certificate_inner(cert_id, reason, now);
        if revoked {
            revocations.inc();
        }
        revoked
    }

    fn revoke_certificate_inner(&self, cert_id: CertId, reason: &str, now: u64) -> bool {
        self.last_now.store(now, Ordering::Relaxed);
        // Check without mutating first: the journal entry must precede
        // the in-memory change, and must only be written for a
        // revocation that will actually happen.
        {
            let shard = self.record_shard(cert_id).lock();
            match shard.records.get(&cert_id) {
                Some(rec) if rec.record.status.is_active() => {}
                _ => return false,
            }
        }
        let crr = {
            let _commit = self.durable.as_ref().map(|d| d.commit.read());
            // A journal failure does NOT abort a revocation: losing the
            // entry risks resurrecting the certificate on recovery, but
            // refusing to revoke would keep live authority standing —
            // strictly worse. The append error is deliberately dropped.
            let _ = self.journal(&SecurityEvent::CertRevoked {
                cert_id,
                reason: reason.to_string(),
                at: now,
            });
            if self.chaos_crash_pending() {
                return false;
            }
            let mut shard = self.record_shard(cert_id).lock();
            let Some(rec) = shard.records.get_mut(&cert_id) else {
                return false;
            };
            if !rec.record.status.is_active() {
                // Lost a race with a concurrent revocation; the extra
                // journal entry replays as a no-op.
                return false;
            }
            rec.record.status = CredStatus::Revoked {
                reason: reason.to_string(),
                at: now,
            };
            rec.record.crr.clone()
        };
        self.audit.record(
            now,
            AuditKind::CertRevoked {
                crr: crr.clone(),
                reason: reason.to_string(),
            },
        );
        // Publishing triggers dependent collapse synchronously (subscribed
        // callbacks run on this thread, with no shard lock held) — the
        // "active security" property.
        self.publish_revocation_event(
            CertEvent {
                crr,
                kind: CertEventKind::Revoked {
                    reason: reason.to_string(),
                },
            },
            now,
        );
        self.maybe_autosnapshot();
        true
    }

    /// Ends a principal's session at this service: revokes every active
    /// RMC issued to them ("if a single initial role is deactivated, for
    /// example the user logs out, all the active roles dependent on it
    /// collapse and that session terminates", Sect. 4). Dependents at
    /// other services on the shared bus collapse too. Appointment
    /// certificates are *not* touched — their lifetime is independent of
    /// sessions. Returns how many certificates were revoked directly.
    pub fn end_session(&self, principal: &PrincipalId, reason: &str, now: u64) -> usize {
        let mut to_revoke: Vec<CertId> = Vec::new();
        // Ascending shard order, one lock at a time.
        for shard in &self.shards {
            let shard = shard.lock();
            to_revoke.extend(
                shard
                    .records
                    .values()
                    .filter(|r| {
                        r.record.status.is_active()
                            && r.record.kind == CredentialKind::Rmc
                            && r.record.principal == *principal
                    })
                    .map(|r| r.record.crr.cert_id),
            );
        }
        let mut revoked = 0;
        for cert_id in to_revoke {
            // Cascades may have revoked later entries already.
            if self.revoke_certificate(cert_id, reason, now) {
                revoked += 1;
            }
        }
        revoked
    }

    /// Marks a certificate expired and collapses its dependents, exactly
    /// like a revocation but recorded as expiry.
    fn expire_certificate(&self, cert_id: CertId, now: u64) {
        {
            let shard = self.record_shard(cert_id).lock();
            match shard.records.get(&cert_id) {
                Some(rec) if rec.record.status.is_active() => {}
                _ => return,
            }
        }
        let crr = {
            let _commit = self.durable.as_ref().map(|d| d.commit.read());
            // As with revocation, a journal failure loses durability
            // but never blocks the expiry itself.
            let _ = self.journal(&SecurityEvent::CertExpired { cert_id, at: now });
            if self.chaos_crash_pending() {
                return;
            }
            let mut shard = self.record_shard(cert_id).lock();
            let Some(rec) = shard.records.get_mut(&cert_id) else {
                return;
            };
            if !rec.record.status.is_active() {
                return;
            }
            rec.record.status = CredStatus::Expired { at: now };
            rec.record.crr.clone()
        };
        self.audit
            .record(now, AuditKind::CertExpired { crr: crr.clone() });
        self.publish_revocation_event(
            CertEvent {
                crr,
                kind: CertEventKind::Revoked {
                    reason: "expired".into(),
                },
            },
            now,
        );
        self.maybe_autosnapshot();
    }

    /// Proactively expires every appointment certificate past its deadline
    /// at `now`; returns how many lapsed. (Expiry is otherwise noticed
    /// lazily at validation time.)
    pub fn expire_certificates(&self, now: u64) -> usize {
        let mut due: Vec<CertId> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            due.extend(
                shard
                    .records
                    .iter()
                    .filter(|(_, r)| {
                        r.record.status.is_active() && r.record.expires_at.is_some_and(|d| now > d)
                    })
                    .map(|(id, _)| *id),
            );
        }
        for cert_id in &due {
            self.expire_certificate(*cert_id, now);
        }
        due.len()
    }

    /// Handles a revocation event from the bus: any certificate that
    /// *retains* the revoked credential is revoked in turn.
    fn handle_revocation_event(&self, event: &CertEvent) {
        let CertEventKind::Revoked { reason } = &event.kind;
        let dependents: Vec<CertId> = {
            let mut shard = self.shards[shard_of_hash(&event.crr)].lock();
            shard
                .dep_index
                .remove(&event.crr)
                .map(|set| {
                    let mut v: Vec<CertId> = set.into_iter().collect();
                    v.sort_unstable();
                    v
                })
                .unwrap_or_default()
        };
        let now = self.last_now.load(Ordering::Relaxed);
        for cert_id in dependents {
            self.revoke_certificate(
                cert_id,
                &format!(
                    "cascade: supporting credential {} revoked ({reason})",
                    event.crr
                ),
                now,
            );
        }
    }

    /// Handles a fact-store change: certificates whose membership rule
    /// retained the fact (positively or negatively) are revoked when the
    /// fact flips.
    fn handle_fact_change(&self, change: &FactChange<Value>) {
        let expected_present = match change {
            FactChange::Retracted { .. } => true,
            FactChange::Inserted { .. } => false,
        };
        let key = (change.relation().to_string(), change.tuple().to_vec());
        let hit: Vec<CertId> = {
            let mut shard = self.shards[shard_of_hash(&key)].lock();
            match shard.fact_index.get_mut(&key) {
                Some(entries) => {
                    let (fire, keep): (Vec<_>, Vec<_>) = entries
                        .drain(..)
                        .partition(|(_, expect)| *expect == expected_present);
                    *entries = keep;
                    fire.into_iter().map(|(id, _)| id).collect()
                }
                None => Vec::new(),
            }
        };
        let now = self.last_now.load(Ordering::Relaxed);
        let verb = if expected_present {
            "retracted"
        } else {
            "asserted"
        };
        for cert_id in hit {
            self.revoke_certificate(
                cert_id,
                &format!(
                    "membership condition broken: fact {}({}) {verb}",
                    key.0,
                    key.1
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                now,
            );
        }
    }

    /// Re-evaluates every active certificate's retained environmental
    /// conditions at the current context (time-window constraints and
    /// custom predicates cannot be push-notified, so services sweep them —
    /// typically on a heartbeat). Returns the revoked certificates.
    ///
    /// With the compiled engine, the sweep evaluates each record's
    /// [`CheckPlan`] (compiled once at issuance), memoises identical
    /// check bodies within the sweep, and — when the fact store's
    /// mutation epoch has not moved since the last full sweep — skips
    /// fact-only checks entirely: an unchanged epoch proves no fact
    /// changed, and every fact-only check either passed the previous
    /// sweep or held at issuance, so it still holds.
    pub fn recheck_memberships(&self, ctx: &EnvContext) -> Vec<Crr> {
        self.recheck(ctx, None)
    }

    /// As [`OasisService::recheck_memberships`], but sweeps only RMCs
    /// whose role is in `roles` or depends on one transitively through
    /// the local prerequisite-role DAG — O(affected records) instead of
    /// a full scan. Use after a targeted policy or environment change
    /// known to affect specific roles.
    pub fn recheck_role_memberships(&self, roles: &[RoleName], ctx: &EnvContext) -> Vec<Crr> {
        let mut affected: HashSet<RoleName> = HashSet::new();
        {
            let policy = self.policy.read();
            let mut queue: Vec<RoleName> = roles.to_vec();
            while let Some(role) = queue.pop() {
                if affected.insert(role.clone()) {
                    if let Some(children) = policy.prereq_children.get(&role) {
                        queue.extend(children.iter().cloned());
                    }
                }
            }
        }
        self.recheck(ctx, Some(&affected))
    }

    fn recheck(&self, ctx: &EnvContext, roles: Option<&HashSet<RoleName>>) -> Vec<Crr> {
        self.last_now.store(ctx.now(), Ordering::Relaxed);
        // Epoch read *before* collecting: a fact change racing the sweep
        // lands at a higher epoch than the watermark we store, forcing
        // the next sweep to look at everything.
        let sweep_epoch = self.facts.epoch();
        let skip_fact_only =
            self.use_plans && self.last_sweep_epoch.load(Ordering::Acquire) == sweep_epoch;

        enum Check {
            Plan(Arc<CheckPlan>),
            Atoms(Vec<Atom>),
        }
        let mut to_check: Vec<(CertId, Check)> = Vec::new();
        // Ascending shard order, one lock at a time; checks are evaluated
        // after the locks are released (evaluation may be arbitrarily
        // slow). Cloning an `Arc<CheckPlan>` is a pointer copy — the old
        // per-record `Vec<Atom>` clone survives only as the interpreted
        // fallback.
        for shard in &self.shards {
            let shard = shard.lock();
            for (id, r) in &shard.records {
                if !r.record.status.is_active() || r.retained_checks.is_empty() {
                    continue;
                }
                if let Some(filter) = roles {
                    let covered = r.record.kind == CredentialKind::Rmc
                        && filter.contains(&RoleName::new(r.record.name.clone()));
                    if !covered {
                        continue;
                    }
                }
                match &r.check {
                    Some(plan) if self.use_plans => {
                        if skip_fact_only && !plan.is_time_sensitive() {
                            continue;
                        }
                        to_check.push((*id, Check::Plan(Arc::clone(plan))));
                    }
                    _ => to_check.push((*id, Check::Atoms(r.retained_checks.clone()))),
                }
            }
        }

        let no_creds: [Credential; 0] = [];
        let empty_index = CredIndex::build(&no_creds);
        // Identical retained bodies (common under templated policies)
        // evaluate once per sweep.
        let mut memo: HashMap<&[Atom], bool> = HashMap::new();
        let mut revoked = Vec::new();
        for (cert_id, check) in &to_check {
            let key: &[Atom] = match check {
                Check::Plan(plan) => plan.atoms(),
                Check::Atoms(atoms) => atoms,
            };
            let ok = match memo.get(key) {
                Some(&ok) => ok,
                None => {
                    let ok = match check {
                        Check::Plan(plan) => plan.eval(&empty_index, &self.facts, ctx),
                        Check::Atoms(atoms) => {
                            solve(&self.id, atoms, Bindings::new(), &[], &self.facts, ctx).is_some()
                        }
                    };
                    memo.insert(key, ok);
                    ok
                }
            };
            if !ok
                && self.revoke_certificate(
                    *cert_id,
                    "membership condition no longer holds",
                    ctx.now(),
                )
            {
                revoked.push(Crr::new(self.id.clone(), *cert_id));
            }
        }
        // Only a full sweep proves all fact-only checks held at
        // `sweep_epoch`; a filtered sweep says nothing about the rest.
        if roles.is_none() {
            self.last_sweep_epoch.store(sweep_epoch, Ordering::Release);
        }
        revoked
    }

    /// Roles that transitively depend on `role` through this service's
    /// prerequisite-role DAG (excluding `role` itself unless it appears
    /// in a cycle), sorted by name. These are the roles whose activation
    /// rules can be affected when `role`'s memberships collapse.
    pub fn role_dependents(&self, role: &RoleName) -> Vec<RoleName> {
        let policy = self.policy.read();
        let mut seen: HashSet<RoleName> = HashSet::new();
        let mut queue: Vec<&RoleName> = policy
            .prereq_children
            .get(role)
            .map(|c| c.iter().collect())
            .unwrap_or_default();
        while let Some(next) = queue.pop() {
            if seen.insert(next.clone()) {
                if let Some(children) = policy.prereq_children.get(next) {
                    queue.extend(children.iter());
                }
            }
        }
        let mut out: Vec<RoleName> = seen.into_iter().collect();
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The credential record for a certificate, if this service issued it.
    pub fn record(&self, cert_id: CertId) -> Option<CredRecord> {
        self.record_shard(cert_id)
            .lock()
            .records
            .get(&cert_id)
            .map(|r| r.record.clone())
    }

    /// The credentials a certificate's membership rule retains — i.e. the
    /// supporting credentials whose revocation will collapse it (Fig 5's
    /// event-channel edges, viewed from the dependent side).
    pub fn dependencies(&self, cert_id: CertId) -> Option<Vec<Crr>> {
        self.record_shard(cert_id)
            .lock()
            .records
            .get(&cert_id)
            .map(|r| r.depends_on.clone())
    }

    /// Number of records in each status: `(active, revoked, expired)`.
    pub fn record_stats(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for shard in &self.shards {
            let shard = shard.lock();
            for r in shard.records.values() {
                match r.record.status {
                    CredStatus::Active => counts.0 += 1,
                    CredStatus::Revoked { .. } => counts.1 += 1,
                    CredStatus::Expired { .. } => counts.2 += 1,
                }
            }
        }
        counts
    }

    /// All roles defined at this service, sorted by name.
    pub fn roles(&self) -> Vec<RoleDef> {
        let policy = self.policy.read();
        let mut roles: Vec<RoleDef> = policy.roles.values().cloned().collect();
        roles.sort_by(|a, b| a.name().cmp(b.name()));
        roles
    }

    /// The activation rules installed for a role, in trial order.
    pub fn activation_rules(&self, role: &RoleName) -> Vec<ActivationRule> {
        self.policy
            .read()
            .activation_rules
            .get(role)
            .map(|rules| rules.as_ref().clone())
            .unwrap_or_default()
    }

    /// The invocation rules installed for a method, in trial order.
    pub fn invocation_rules(&self, method: &str) -> Vec<InvocationRule> {
        self.policy
            .read()
            .invocation_rules
            .get(method)
            .map(|rules| rules.as_ref().clone())
            .unwrap_or_default()
    }

    /// Counters over the compiled decision plans (activation and
    /// invocation), for diagnostics: a nonzero `always_fail` usually
    /// indicates a rule with a typo'd variable that can never bind.
    pub fn plan_stats(&self) -> PlanStats {
        let policy = self.policy.read();
        let mut stats = PlanStats::default();
        for plans in policy
            .activation_plans
            .values()
            .chain(policy.invocation_plans.values())
        {
            for plan in plans.iter() {
                stats.absorb(plan);
            }
        }
        stats
    }

    /// Consistency warnings between role flags and installed rules.
    ///
    /// The paper defines an *initial role* as one whose activation rule
    /// includes no prerequisite roles (Sect. 2) — activating it starts a
    /// session. This check reports descriptive mismatches:
    ///
    /// * a role not flagged `initial` but having a rule with no
    ///   prerequisite atoms (it can in fact start a session);
    /// * a role flagged `initial` all of whose rules require
    ///   prerequisites (it can never start one);
    /// * a defined role with no activation rules at all (unactivatable).
    ///
    /// These are warnings, not errors: the flag is descriptive metadata
    /// and services may stage policy installation.
    pub fn policy_warnings(&self) -> Vec<String> {
        let policy = self.policy.read();
        let mut warnings = Vec::new();
        let mut names: Vec<&RoleName> = policy.roles.keys().collect();
        names.sort();
        for name in names {
            let def = &policy.roles[name];
            let rules = policy.activation_rules.get(name);
            match rules {
                None => warnings.push(format!(
                    "role `{name}` has no activation rules and can never be activated"
                )),
                Some(rules) => {
                    let has_prereq_free_rule = rules
                        .iter()
                        .any(|r| !r.conditions.iter().any(Atom::is_credential_prereq));
                    if has_prereq_free_rule && !def.is_initial() {
                        warnings.push(format!(
                            "role `{name}` is not flagged initial but has a rule without \
                             prerequisite roles; activating it starts a session"
                        ));
                    }
                    if !has_prereq_free_rule && def.is_initial() {
                        warnings.push(format!(
                            "role `{name}` is flagged initial but every rule requires a \
                             prerequisite role; it cannot start a session"
                        ));
                    }
                }
            }
        }
        warnings
    }

    /// All active credential records (for operator tooling).
    pub fn active_records(&self) -> Vec<CredRecord> {
        let mut records: Vec<CredRecord> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            records.extend(
                shard
                    .records
                    .values()
                    .filter(|r| r.record.status.is_active())
                    .map(|r| r.record.clone()),
            );
        }
        records.sort_by_key(|r| r.crr.cert_id);
        records
    }
}

/// Substitutes bound variables with their values, leaving `$`-reserved
/// variables (re-bound at evaluation time) and unbound variables alone.
fn substitute_atom(atom: &Atom, bindings: &Bindings) -> Atom {
    let sub_term = |t: &Term| -> Term {
        if let Term::Var(name) = t {
            if name.0.starts_with('$') {
                return t.clone();
            }
            if let Some(v) = bindings.get(name) {
                return Term::Const(v.clone());
            }
        }
        t.clone()
    };
    let sub_terms = |ts: &[Term]| ts.iter().map(sub_term).collect();
    match atom {
        Atom::Prereq {
            service,
            role,
            args,
        } => Atom::Prereq {
            service: service.clone(),
            role: role.clone(),
            args: sub_terms(args),
        },
        Atom::Appointment { issuer, name, args } => Atom::Appointment {
            issuer: issuer.clone(),
            name: name.clone(),
            args: sub_terms(args),
        },
        Atom::EnvFact {
            relation,
            args,
            negated,
        } => Atom::EnvFact {
            relation: relation.clone(),
            args: sub_terms(args),
            negated: *negated,
        },
        Atom::EnvCompare { left, op, right } => Atom::EnvCompare {
            left: sub_term(left),
            op: *op,
            right: sub_term(right),
        },
        Atom::EnvPredicate { name, args } => Atom::EnvPredicate {
            name: name.clone(),
            args: sub_terms(args),
        },
    }
}

fn term_as_const(t: &Term) -> Option<Value> {
    match t {
        Term::Const(v) => Some(v.clone()),
        _ => None,
    }
}
