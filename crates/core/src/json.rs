//! JSON conversions for the core types that cross the wire protocol.
//!
//! Enums use a single-key externally-tagged object (`{"Rmc": {...}}`);
//! structs are plain objects. These impls live here (not in `oasis-wire`)
//! because Rust's orphan rule requires either the trait or the type to be
//! local.

use oasis_json::{FromJson, Json, JsonError, ToJson};

use crate::cert::{AppointmentCertificate, Credential, Crr, Rmc};
use crate::ids::{CertId, PrincipalId, RoleName, ServiceId, SessionId};
use crate::value::Value;

macro_rules! string_id_json {
    ($($t:ident),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Str(self.as_str().to_string())
            }
        }

        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                json.as_str()
                    .map($t::new)
                    .ok_or_else(|| JsonError::expected(stringify!($t)))
            }
        }
    )*};
}

string_id_json!(PrincipalId, ServiceId, RoleName);

macro_rules! u64_id_json {
    ($($t:ident),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                self.0.to_json()
            }
        }

        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                u64::from_json(json).map($t)
            }
        }
    )*};
}

u64_id_json!(CertId, SessionId);

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Id(s) => Json::obj(vec![("Id", Json::str(s.clone()))]),
            Value::Str(s) => Json::obj(vec![("Str", Json::str(s.clone()))]),
            Value::Int(i) => Json::obj(vec![("Int", Json::I64(*i))]),
            Value::Bool(b) => Json::obj(vec![("Bool", Json::Bool(*b))]),
            Value::Time(t) => Json::obj(vec![("Time", t.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let pairs = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("Value object"))?;
        let [(tag, payload)] = pairs else {
            return Err(JsonError::expected("single-variant Value object"));
        };
        match tag.as_str() {
            "Id" => String::from_json(payload).map(Value::Id),
            "Str" => String::from_json(payload).map(Value::Str),
            "Int" => i64::from_json(payload).map(Value::Int),
            "Bool" => bool::from_json(payload).map(Value::Bool),
            "Time" => u64::from_json(payload).map(Value::Time),
            other => Err(JsonError::new(format!("unknown Value variant `{other}`"))),
        }
    }
}

impl ToJson for Crr {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("issuer", self.issuer.to_json()),
            ("cert_id", self.cert_id.to_json()),
        ])
    }
}

impl FromJson for Crr {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Crr {
            issuer: ServiceId::from_json(json.field("issuer")?)?,
            cert_id: CertId::from_json(json.field("cert_id")?)?,
        })
    }
}

impl ToJson for Rmc {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("crr", self.crr.to_json()),
            ("role", self.role.to_json()),
            ("args", self.args.to_json()),
            ("issued_at", self.issued_at.to_json()),
            ("holder_key", self.holder_key.to_json()),
            ("epoch", self.epoch.to_json()),
            ("signature", self.signature.to_json()),
        ])
    }
}

impl FromJson for Rmc {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Rmc {
            crr: FromJson::from_json(json.field("crr")?)?,
            role: FromJson::from_json(json.field("role")?)?,
            args: FromJson::from_json(json.field("args")?)?,
            issued_at: FromJson::from_json(json.field("issued_at")?)?,
            holder_key: FromJson::from_json(json.field("holder_key")?)?,
            epoch: FromJson::from_json(json.field("epoch")?)?,
            signature: FromJson::from_json(json.field("signature")?)?,
        })
    }
}

impl ToJson for AppointmentCertificate {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("crr", self.crr.to_json()),
            ("name", self.name.to_json()),
            ("args", self.args.to_json()),
            ("issued_at", self.issued_at.to_json()),
            ("expires_at", self.expires_at.to_json()),
            ("holder_key", self.holder_key.to_json()),
            ("epoch", self.epoch.to_json()),
            ("signature", self.signature.to_json()),
        ])
    }
}

impl FromJson for AppointmentCertificate {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(AppointmentCertificate {
            crr: FromJson::from_json(json.field("crr")?)?,
            name: FromJson::from_json(json.field("name")?)?,
            args: FromJson::from_json(json.field("args")?)?,
            issued_at: FromJson::from_json(json.field("issued_at")?)?,
            expires_at: FromJson::from_json(json.field("expires_at")?)?,
            holder_key: FromJson::from_json(json.field("holder_key")?)?,
            epoch: FromJson::from_json(json.field("epoch")?)?,
            signature: FromJson::from_json(json.field("signature")?)?,
        })
    }
}

impl ToJson for Credential {
    fn to_json(&self) -> Json {
        match self {
            Credential::Rmc(c) => Json::obj(vec![("Rmc", c.to_json())]),
            Credential::Appointment(c) => Json::obj(vec![("Appointment", c.to_json())]),
        }
    }
}

impl FromJson for Credential {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let pairs = json
            .as_obj()
            .ok_or_else(|| JsonError::expected("Credential object"))?;
        let [(tag, payload)] = pairs else {
            return Err(JsonError::expected("single-variant Credential object"));
        };
        match tag.as_str() {
            "Rmc" => Rmc::from_json(payload).map(Credential::Rmc),
            "Appointment" => {
                AppointmentCertificate::from_json(payload).map(Credential::Appointment)
            }
            other => Err(JsonError::new(format!(
                "unknown Credential variant `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_crypto::{IssuerSecret, SecretEpoch, SecretKey};

    fn sample_rmc() -> Rmc {
        let secret = IssuerSecret::from_key(SecretKey::from_bytes([9; 32]));
        let pair = oasis_crypto::KeyPair::from_seed([3; 32]);
        Rmc::issue(
            &secret.current(),
            SecretEpoch(0),
            &PrincipalId::new("alice"),
            Crr::new(ServiceId::new("svc"), CertId(1)),
            RoleName::new("doctor"),
            vec![Value::id("dr-1"), Value::Int(-3), Value::Time(u64::MAX)],
            100,
            Some(pair.public_key()),
        )
    }

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: &T) {
        let text = value.to_json().to_string();
        let back = T::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, value, "{text}");
    }

    #[test]
    fn values_round_trip() {
        for v in [
            Value::id("x"),
            Value::str("free \"text\""),
            Value::Int(i64::MIN),
            Value::Bool(true),
            Value::Time(u64::MAX),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn rmc_round_trips_and_still_verifies() {
        let rmc = sample_rmc();
        let text = rmc.to_json().to_string();
        let back = Rmc::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rmc);
        let secret = IssuerSecret::from_key(SecretKey::from_bytes([9; 32]));
        assert!(back.verify(&secret.current(), &PrincipalId::new("alice")));
    }

    #[test]
    fn credential_variants_round_trip() {
        round_trip(&Credential::Rmc(sample_rmc()));
        let secret = IssuerSecret::from_key(SecretKey::from_bytes([9; 32]));
        let appt = AppointmentCertificate::issue(
            &secret.current(),
            SecretEpoch(0),
            &PrincipalId::new("bob"),
            Crr::new(ServiceId::new("svc"), CertId(2)),
            "employed".into(),
            vec![],
            5,
            Some(90),
            None,
        );
        round_trip(&Credential::Appointment(appt));
    }

    #[test]
    fn missing_fields_are_descriptive_errors() {
        let err = Crr::from_json(&Json::parse("{\"issuer\":\"svc\"}").unwrap()).unwrap_err();
        assert!(err.to_string().contains("cert_id"));
        assert!(Value::from_json(&Json::parse("{\"Nope\":1}").unwrap()).is_err());
    }
}
