//! Wire-layer errors.

/// Errors raised by the TCP transport.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),

    /// A frame exceeded the protocol's size limit.
    FrameTooLarge {
        /// Declared frame size.
        got: usize,
        /// The protocol limit.
        limit: usize,
    },

    /// A frame's payload was not valid JSON for the expected type.
    Malformed(oasis_json::JsonError),

    /// The peer closed the connection mid-exchange.
    Closed,

    /// The server answered with an application error.
    Remote(String),

    /// The server answered with the wrong response variant.
    UnexpectedResponse(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::FrameTooLarge { got, limit } => {
                write!(f, "frame of {got} bytes exceeds limit of {limit}")
            }
            Self::Malformed(e) => write!(f, "malformed frame: {e}"),
            Self::Closed => write!(f, "connection closed by peer"),
            Self::Remote(message) => write!(f, "remote error: {message}"),
            Self::UnexpectedResponse(got) => {
                write!(f, "protocol violation: unexpected response {got}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<oasis_json::JsonError> for WireError {
    fn from(e: oasis_json::JsonError) -> Self {
        Self::Malformed(e)
    }
}
