//! A single relation: a set of fixed-arity tuples with per-column indexes.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Internal tuple identifier within a relation's arena.
type TupleId = usize;

/// A set of tuples of fixed arity with a hash index on every column.
///
/// Queries supply a pattern of `Option<V>` per column; bound columns are
/// intersected through the indexes, so a query bound on any column touches
/// only the tuples matching that column rather than scanning the relation.
#[derive(Debug, Clone)]
pub(crate) struct Relation<V> {
    arity: usize,
    /// Tuple arena; `None` marks retracted slots.
    tuples: Vec<Option<Vec<V>>>,
    /// Exact-tuple index for O(1) contains/retract.
    exact: HashMap<Vec<V>, TupleId>,
    /// `indexes[col][value]` = ids of live tuples with `value` in `col`.
    indexes: Vec<HashMap<V, HashSet<TupleId>>>,
    live: usize,
}

impl<V: Clone + Eq + Hash> Relation<V> {
    pub(crate) fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: Vec::new(),
            exact: HashMap::new(),
            indexes: (0..arity).map(|_| HashMap::new()).collect(),
            live: 0,
        }
    }

    pub(crate) fn arity(&self) -> usize {
        self.arity
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Inserts a tuple; returns `false` if it was already present.
    pub(crate) fn insert(&mut self, tuple: Vec<V>) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        if self.exact.contains_key(&tuple) {
            return false;
        }
        let id = self.tuples.len();
        for (col, value) in tuple.iter().enumerate() {
            self.indexes[col]
                .entry(value.clone())
                .or_default()
                .insert(id);
        }
        self.exact.insert(tuple.clone(), id);
        self.tuples.push(Some(tuple));
        self.live += 1;
        true
    }

    /// Retracts a tuple; returns `false` if it was not present.
    pub(crate) fn retract(&mut self, tuple: &[V]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        let Some(id) = self.exact.remove(tuple) else {
            return false;
        };
        for (col, value) in tuple.iter().enumerate() {
            if let Some(ids) = self.indexes[col].get_mut(value) {
                ids.remove(&id);
                if ids.is_empty() {
                    self.indexes[col].remove(value);
                }
            }
        }
        self.tuples[id] = None;
        self.live -= 1;
        true
    }

    pub(crate) fn contains(&self, tuple: &[V]) -> bool {
        self.exact.contains_key(tuple)
    }

    /// Returns all tuples matching `pattern` (`None` = wildcard column).
    pub(crate) fn query(&self, pattern: &[Option<V>]) -> Vec<Vec<V>> {
        debug_assert_eq!(pattern.len(), self.arity);

        // Fully bound: direct hash lookup.
        if pattern.iter().all(Option::is_some) {
            let tuple: Vec<V> = pattern.iter().map(|v| v.clone().expect("bound")).collect();
            return if self.exact.contains_key(&tuple) {
                vec![tuple]
            } else {
                vec![]
            };
        }

        // Find the most selective bound column to seed the candidate set.
        let mut seed: Option<&HashSet<TupleId>> = None;
        for (col, value) in pattern.iter().enumerate() {
            if let Some(v) = value {
                match self.indexes[col].get(v) {
                    Some(ids) => {
                        if seed.is_none_or(|s| ids.len() < s.len()) {
                            seed = Some(ids);
                        }
                    }
                    // A bound value absent from its index ⇒ no matches.
                    None => return vec![],
                }
            }
        }

        let candidates: Vec<TupleId> = match seed {
            Some(ids) => ids.iter().copied().collect(),
            // No bound columns at all: every live tuple matches.
            None => {
                return self.tuples.iter().filter_map(|slot| slot.clone()).collect();
            }
        };

        let mut out = Vec::new();
        for id in candidates {
            let Some(tuple) = &self.tuples[id] else {
                continue;
            };
            let matches = pattern
                .iter()
                .zip(tuple.iter())
                .all(|(p, v)| p.as_ref().is_none_or(|bound| bound == v));
            if matches {
                out.push(tuple.clone());
            }
        }
        out
    }

    /// Whether any tuple matches `pattern`, without materialising rows.
    /// Short-circuits on the first hit; the fully-bound and no-bound
    /// cases are O(1).
    pub(crate) fn exists(&self, pattern: &[Option<V>]) -> bool {
        debug_assert_eq!(pattern.len(), self.arity);

        if pattern.iter().all(Option::is_some) {
            let tuple: Vec<V> = pattern.iter().map(|v| v.clone().expect("bound")).collect();
            return self.exact.contains_key(&tuple);
        }

        let mut seed: Option<&HashSet<TupleId>> = None;
        for (col, value) in pattern.iter().enumerate() {
            if let Some(v) = value {
                match self.indexes[col].get(v) {
                    Some(ids) => {
                        if seed.is_none_or(|s| ids.len() < s.len()) {
                            seed = Some(ids);
                        }
                    }
                    None => return false,
                }
            }
        }
        let Some(ids) = seed else {
            return self.live > 0;
        };
        ids.iter().any(|&id| {
            self.tuples[id].as_ref().is_some_and(|tuple| {
                pattern
                    .iter()
                    .zip(tuple.iter())
                    .all(|(p, v)| p.as_ref().is_none_or(|bound| bound == v))
            })
        })
    }

    /// Snapshot of every live tuple.
    pub(crate) fn all(&self) -> Vec<Vec<V>> {
        self.tuples.iter().filter_map(|slot| slot.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation<u32> {
        let mut r = Relation::new(3);
        r.insert(vec![1, 2, 3]);
        r.insert(vec![1, 5, 3]);
        r.insert(vec![2, 2, 4]);
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert!(!r.insert(vec![1, 2, 3]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn retract_removes_from_queries() {
        let mut r = rel();
        assert!(r.retract(&[1, 2, 3]));
        assert!(!r.retract(&[1, 2, 3]));
        assert_eq!(r.len(), 2);
        assert!(r.query(&[Some(1), Some(2), Some(3)]).is_empty());
        assert_eq!(r.query(&[Some(1), None, None]).len(), 1);
    }

    #[test]
    fn fully_bound_query_hits_exact_index() {
        let r = rel();
        assert_eq!(r.query(&[Some(1), Some(2), Some(3)]), vec![vec![1, 2, 3]]);
        assert!(r.query(&[Some(9), Some(9), Some(9)]).is_empty());
    }

    #[test]
    fn single_column_query_uses_index() {
        let r = rel();
        let mut rows = r.query(&[Some(1), None, None]);
        rows.sort();
        assert_eq!(rows, vec![vec![1, 2, 3], vec![1, 5, 3]]);
    }

    #[test]
    fn multi_column_query_intersects() {
        let r = rel();
        assert_eq!(r.query(&[Some(1), None, Some(3)]).len(), 2);
        assert_eq!(r.query(&[None, Some(2), Some(3)]), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn unbound_query_returns_everything() {
        let r = rel();
        assert_eq!(r.query(&[None, None, None]).len(), 3);
    }

    #[test]
    fn bound_value_missing_from_index_short_circuits() {
        let r = rel();
        assert!(r.query(&[Some(42), None, None]).is_empty());
    }

    #[test]
    fn reinsert_after_retract_works() {
        let mut r = rel();
        r.retract(&[1, 2, 3]);
        assert!(r.insert(vec![1, 2, 3]));
        assert!(r.contains(&[1, 2, 3]));
        assert_eq!(r.query(&[Some(1), Some(2), None]), vec![vec![1, 2, 3]]);
    }
}
