//! Single-use nonces with expiry, protecting challenge–response exchanges
//! from replay.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;
use rand::RngCore;

use crate::hex;

/// A 16-byte random nonce.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nonce(pub [u8; 16]);

impl Nonce {
    /// Generates a random nonce from the OS RNG.
    pub fn random() -> Self {
        let mut bytes = [0u8; 16];
        rand::rng().fill_bytes(&mut bytes);
        Self(bytes)
    }

    /// The nonce bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce({})", hex::encode(&self.0))
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(&self.0))
    }
}

/// Tracks outstanding nonces; each may be consumed at most once and only
/// before its deadline. Time is virtual (`u64` ticks).
///
/// # Example
///
/// ```
/// use oasis_crypto::nonce::NonceCache;
///
/// let cache = NonceCache::new();
/// let n = cache.issue(100, 10); // issued at t=100, valid 10 ticks
/// assert!(cache.consume(&n, 105));
/// assert!(!cache.consume(&n, 106), "second use is replay");
/// ```
#[derive(Debug, Default)]
pub struct NonceCache {
    outstanding: Mutex<HashMap<Nonce, u64>>,
}

impl NonceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a fresh nonce at time `now`, valid for `ttl` ticks
    /// (deadline inclusive).
    pub fn issue(&self, now: u64, ttl: u64) -> Nonce {
        let nonce = Nonce::random();
        self.outstanding
            .lock()
            .insert(nonce, now.saturating_add(ttl));
        nonce
    }

    /// Consumes a nonce at time `now`. Returns `true` only if the nonce was
    /// outstanding and unexpired; the nonce is removed either way, so a
    /// replay after expiry also fails.
    pub fn consume(&self, nonce: &Nonce, now: u64) -> bool {
        match self.outstanding.lock().remove(nonce) {
            Some(deadline) => now <= deadline,
            None => false,
        }
    }

    /// Whether `nonce` is outstanding and unexpired at `now`, without
    /// consuming it.
    pub fn is_live(&self, nonce: &Nonce, now: u64) -> bool {
        self.outstanding
            .lock()
            .get(nonce)
            .is_some_and(|deadline| now <= *deadline)
    }

    /// Drops every nonce whose deadline has passed; returns how many were
    /// evicted. Call periodically to bound memory.
    pub fn evict_expired(&self, now: u64) -> usize {
        let mut outstanding = self.outstanding.lock();
        let before = outstanding.len();
        outstanding.retain(|_, deadline| *deadline >= now);
        before - outstanding.len()
    }

    /// Number of outstanding (unconsumed, possibly expired) nonces.
    pub fn outstanding(&self) -> usize {
        self.outstanding.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_within_ttl_succeeds_once() {
        let cache = NonceCache::new();
        let n = cache.issue(0, 5);
        assert!(cache.consume(&n, 5));
        assert!(!cache.consume(&n, 5));
    }

    #[test]
    fn consume_after_deadline_fails() {
        let cache = NonceCache::new();
        let n = cache.issue(0, 5);
        assert!(!cache.consume(&n, 6));
        assert!(
            !cache.consume(&n, 3),
            "expired consume still burns the nonce"
        );
    }

    #[test]
    fn unknown_nonce_fails() {
        let cache = NonceCache::new();
        assert!(!cache.consume(&Nonce::random(), 0));
    }

    #[test]
    fn eviction_removes_only_expired() {
        let cache = NonceCache::new();
        let _a = cache.issue(0, 5);
        let b = cache.issue(0, 50);
        assert_eq!(cache.evict_expired(10), 1);
        assert_eq!(cache.outstanding(), 1);
        assert!(cache.consume(&b, 20));
    }

    #[test]
    fn nonces_are_distinct() {
        let cache = NonceCache::new();
        let a = cache.issue(0, 5);
        let b = cache.issue(0, 5);
        assert_ne!(a, b);
        assert_eq!(cache.outstanding(), 2);
    }
}
