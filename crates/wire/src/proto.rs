//! The request/response protocol.
//!
//! One request, one response, in order, per connection (pipelining is
//! permitted by the framing but the bundled client is call/return). The
//! four operations mirror Fig 2 plus the issuer-side revocation entry
//! point of Fig 5.

use oasis_core::cert::Rmc;
use oasis_core::{Credential, Crr, PrincipalId, Value};
use oasis_json::{FromJson, Json, JsonError, ToJson};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Activate `role(args)` (paths 1–2 of Fig 2).
    Activate {
        /// The requesting principal.
        principal: PrincipalId,
        /// Role name at the serving service.
        role: String,
        /// Role parameters.
        args: Vec<Value>,
        /// Presented credentials.
        credentials: Vec<Credential>,
        /// Client's virtual time.
        now: u64,
    },
    /// Invoke `method(args)` (paths 3–4 of Fig 2).
    Invoke {
        /// The requesting principal.
        principal: PrincipalId,
        /// Method name.
        method: String,
        /// Invocation arguments.
        args: Vec<Value>,
        /// Presented credentials.
        credentials: Vec<Credential>,
        /// Client's virtual time.
        now: u64,
    },
    /// Validation callback: is this credential (still) good for this
    /// presenter? Used by remote OASIS-aware services (Sect. 4).
    Validate {
        /// The credential in question.
        credential: Box<Credential>,
        /// Who presented it.
        presenter: PrincipalId,
        /// Verifier's virtual time.
        now: u64,
    },
    /// Revoke a certificate this service issued.
    Revoke {
        /// Issuer-local certificate id.
        cert_id: u64,
        /// Reason, recorded for audit.
        reason: String,
        /// Virtual time.
        now: u64,
    },
    /// Liveness check.
    Ping,
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Activation succeeded; here is the RMC.
    Activated {
        /// The issued role membership certificate.
        rmc: Box<Rmc>,
    },
    /// Invocation authorised and performed.
    Invoked {
        /// Credentials that authorised it (for client-side audit).
        used: Vec<Crr>,
    },
    /// The credential validated.
    Valid,
    /// Revocation processed.
    Revoked {
        /// Whether the certificate had been active.
        was_active: bool,
    },
    /// Liveness answer.
    Pong,
    /// The operation failed.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Activate {
                principal,
                role,
                args,
                credentials,
                now,
            } => tagged(
                "Activate",
                vec![
                    ("principal", principal.to_json()),
                    ("role", role.to_json()),
                    ("args", args.to_json()),
                    ("credentials", credentials.to_json()),
                    ("now", now.to_json()),
                ],
            ),
            Request::Invoke {
                principal,
                method,
                args,
                credentials,
                now,
            } => tagged(
                "Invoke",
                vec![
                    ("principal", principal.to_json()),
                    ("method", method.to_json()),
                    ("args", args.to_json()),
                    ("credentials", credentials.to_json()),
                    ("now", now.to_json()),
                ],
            ),
            Request::Validate {
                credential,
                presenter,
                now,
            } => tagged(
                "Validate",
                vec![
                    ("credential", credential.to_json()),
                    ("presenter", presenter.to_json()),
                    ("now", now.to_json()),
                ],
            ),
            Request::Revoke {
                cert_id,
                reason,
                now,
            } => tagged(
                "Revoke",
                vec![
                    ("cert_id", cert_id.to_json()),
                    ("reason", reason.to_json()),
                    ("now", now.to_json()),
                ],
            ),
            Request::Ping => Json::Str("Ping".into()),
        }
    }
}

impl FromJson for Request {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if json.as_str() == Some("Ping") {
            return Ok(Request::Ping);
        }
        let (tag, body) = untag(json, "Request")?;
        match tag {
            "Activate" => Ok(Request::Activate {
                principal: FromJson::from_json(body.field("principal")?)?,
                role: FromJson::from_json(body.field("role")?)?,
                args: FromJson::from_json(body.field("args")?)?,
                credentials: FromJson::from_json(body.field("credentials")?)?,
                now: FromJson::from_json(body.field("now")?)?,
            }),
            "Invoke" => Ok(Request::Invoke {
                principal: FromJson::from_json(body.field("principal")?)?,
                method: FromJson::from_json(body.field("method")?)?,
                args: FromJson::from_json(body.field("args")?)?,
                credentials: FromJson::from_json(body.field("credentials")?)?,
                now: FromJson::from_json(body.field("now")?)?,
            }),
            "Validate" => Ok(Request::Validate {
                credential: FromJson::from_json(body.field("credential")?)?,
                presenter: FromJson::from_json(body.field("presenter")?)?,
                now: FromJson::from_json(body.field("now")?)?,
            }),
            "Revoke" => Ok(Request::Revoke {
                cert_id: FromJson::from_json(body.field("cert_id")?)?,
                reason: FromJson::from_json(body.field("reason")?)?,
                now: FromJson::from_json(body.field("now")?)?,
            }),
            other => Err(JsonError::new(format!("unknown Request variant `{other}`"))),
        }
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Activated { rmc } => tagged("Activated", vec![("rmc", rmc.to_json())]),
            Response::Invoked { used } => tagged("Invoked", vec![("used", used.to_json())]),
            Response::Valid => Json::Str("Valid".into()),
            Response::Revoked { was_active } => {
                tagged("Revoked", vec![("was_active", was_active.to_json())])
            }
            Response::Pong => Json::Str("Pong".into()),
            Response::Error { message } => tagged("Error", vec![("message", message.to_json())]),
        }
    }
}

impl FromJson for Response {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str() {
            Some("Valid") => return Ok(Response::Valid),
            Some("Pong") => return Ok(Response::Pong),
            _ => {}
        }
        let (tag, body) = untag(json, "Response")?;
        match tag {
            "Activated" => Ok(Response::Activated {
                rmc: FromJson::from_json(body.field("rmc")?)?,
            }),
            "Invoked" => Ok(Response::Invoked {
                used: FromJson::from_json(body.field("used")?)?,
            }),
            "Revoked" => Ok(Response::Revoked {
                was_active: FromJson::from_json(body.field("was_active")?)?,
            }),
            "Error" => Ok(Response::Error {
                message: FromJson::from_json(body.field("message")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown Response variant `{other}`"
            ))),
        }
    }
}

/// Builds the externally-tagged form `{"Tag": {fields...}}`.
fn tagged(tag: &str, fields: Vec<(&str, Json)>) -> Json {
    Json::obj(vec![(tag, Json::obj(fields))])
}

/// Splits `{"Tag": body}` into `(tag, body)`.
fn untag<'j>(json: &'j Json, what: &str) -> Result<(&'j str, &'j Json), JsonError> {
    let pairs = json
        .as_obj()
        .ok_or_else(|| JsonError::new(format!("expected {what} object")))?;
    match pairs {
        [(tag, body)] => Ok((tag.as_str(), body)),
        _ => Err(JsonError::new(format!(
            "expected single-variant {what} object"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::Ping,
            Request::Activate {
                principal: PrincipalId::new("alice"),
                role: "doctor".into(),
                args: vec![Value::id("alice"), Value::Int(3)],
                credentials: vec![],
                now: 7,
            },
            Request::Revoke {
                cert_id: 9,
                reason: "logout".into(),
                now: 8,
            },
        ];
        for req in requests {
            let json = oasis_json::to_string(&req);
            let back: Request = oasis_json::from_str(&json).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let responses = vec![
            Response::Pong,
            Response::Valid,
            Response::Revoked { was_active: true },
            Response::Error {
                message: "no".into(),
            },
            Response::Invoked {
                used: vec![Crr::new(
                    oasis_core::ServiceId::new("svc"),
                    oasis_core::CertId(4),
                )],
            },
        ];
        for resp in responses {
            let json = oasis_json::to_string(&resp);
            let back: Response = oasis_json::from_str(&json).unwrap();
            assert_eq!(resp, back);
        }
    }
}
