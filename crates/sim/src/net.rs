//! Network modelling: per-link latency, loss, and partitions.

use std::collections::{HashMap, HashSet};

use crate::latency::Latency;
use crate::sim::Simulation;

/// A network node name (a domain or service in OASIS scenarios).
pub type NodeId = String;

/// Per-link behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Delivery latency distribution.
    pub latency: Latency,
    /// Probability a message is silently dropped, in `[0, 1]`.
    pub loss: f64,
    /// Probability a delivered message arrives *twice* (with independent
    /// delays), in `[0, 1]` — retransmission ghosts.
    pub duplicate: f64,
    /// Extra uniformly-sampled delay in `[0, jitter]` ticks added to each
    /// delivery on top of the latency distribution.
    pub jitter: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            latency: Latency::Constant(1),
            loss: 0.0,
            duplicate: 0.0,
            jitter: 0,
        }
    }
}

impl LinkConfig {
    /// A clean link with the given latency model: no loss, no
    /// duplication, no jitter.
    pub fn clean(latency: Latency) -> Self {
        Self {
            latency,
            ..Self::default()
        }
    }

    /// The sampled delivery delay: latency plus jitter.
    fn delay(&self, rng: &mut impl rand::RngCore) -> u64 {
        let base = self.latency.sample(rng);
        if self.jitter == 0 {
            base
        } else {
            base.saturating_add(rand::Rng::random_range(rng, 0..=self.jitter))
        }
    }
}

/// A directed network between named nodes.
///
/// `SimNet` computes *when* (and whether) a message arrives; the message
/// itself is a closure run at delivery time, so any application state can
/// be touched. Partitioned pairs drop everything until healed.
///
/// # Example
///
/// ```
/// use oasis_sim::{Latency, LinkConfig, SimNet, Simulation};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(1);
/// let mut net = SimNet::new(LinkConfig::clean(Latency::Constant(7)));
/// let arrived = Rc::new(Cell::new(0));
/// let a = Rc::clone(&arrived);
/// net.send(&mut sim, "client", "server", move |sim| a.set(sim.now()));
/// sim.run();
/// assert_eq!(arrived.get(), 7);
/// ```
#[derive(Debug)]
pub struct SimNet {
    default: LinkConfig,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    partitioned: HashSet<(NodeId, NodeId)>,
    crashed: HashSet<NodeId>,
    sent: u64,
    dropped: u64,
    duplicated: u64,
}

impl SimNet {
    /// Creates a network where every link uses `default` unless
    /// overridden.
    pub fn new(default: LinkConfig) -> Self {
        Self {
            default,
            links: HashMap::new(),
            partitioned: HashSet::new(),
            crashed: HashSet::new(),
            sent: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Overrides the directed link `from → to`.
    pub fn set_link(&mut self, from: impl Into<NodeId>, to: impl Into<NodeId>, config: LinkConfig) {
        self.links.insert((from.into(), to.into()), config);
    }

    /// Cuts both directions between `a` and `b`.
    pub fn partition(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        let (a, b) = (a.into(), b.into());
        self.partitioned.insert((a.clone(), b.clone()));
        self.partitioned.insert((b, a));
    }

    /// Restores both directions between `a` and `b`.
    pub fn heal(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        let (a, b) = (a.into(), b.into());
        self.partitioned.remove(&(a.clone(), b.clone()));
        self.partitioned.remove(&(b, a));
    }

    /// Whether `from → to` is currently cut.
    pub fn is_partitioned(&self, from: &str, to: &str) -> bool {
        self.partitioned
            .contains(&(from.to_string(), to.to_string()))
    }

    /// Crashes a node: until [`SimNet::recover`], every message from or
    /// to it is dropped.
    pub fn crash(&mut self, node: impl Into<NodeId>) {
        self.crashed.insert(node.into());
    }

    /// Brings a crashed node back; messages flow again. (Messages dropped
    /// while down stay dropped — a rebooted process has an empty socket.)
    pub fn recover(&mut self, node: impl Into<NodeId>) {
        self.crashed.remove(&node.into());
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: &str) -> bool {
        self.crashed.contains(node)
    }

    /// Sends a message: schedules `deliver` on `sim` after the link's
    /// sampled latency (plus jitter). Returns `false` if the message was
    /// lost, the link is partitioned, or either endpoint is crashed (in
    /// which case `deliver` never runs). A duplicating link may schedule
    /// `deliver` twice, with independently sampled delays — which is why
    /// the closure must be `Clone`.
    pub fn send(
        &mut self,
        sim: &mut Simulation,
        from: &str,
        to: &str,
        deliver: impl FnOnce(&mut Simulation) + Clone + 'static,
    ) -> bool {
        self.sent += 1;
        if self.is_partitioned(from, to) || self.is_crashed(from) || self.is_crashed(to) {
            self.dropped += 1;
            return false;
        }
        let config = self
            .links
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(self.default);
        if config.loss > 0.0 && sim.rng().next_u64() as f64 / u64::MAX as f64 <= config.loss {
            self.dropped += 1;
            return false;
        }
        let delay = config.delay(sim.rng());
        if config.duplicate > 0.0
            && (sim.rng().next_u64() as f64 / u64::MAX as f64) <= config.duplicate
        {
            self.duplicated += 1;
            let ghost_delay = config.delay(sim.rng());
            sim.schedule_in(ghost_delay, deliver.clone());
        }
        sim.schedule_in(delay, deliver);
        true
    }

    /// `(messages sent, messages dropped)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.dropped)
    }

    /// Messages delivered twice by duplicating links so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

// RngCore is needed for next_u64 in `send`.
use rand::RngCore as _;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    fn lossless(latency: Latency) -> SimNet {
        SimNet::new(LinkConfig::clean(latency))
    }

    #[test]
    fn default_link_applies() {
        let mut sim = Simulation::new(0);
        let mut net = lossless(Latency::Constant(4));
        let at = Rc::new(Cell::new(0));
        let a = Rc::clone(&at);
        assert!(net.send(&mut sim, "x", "y", move |s| a.set(s.now())));
        sim.run();
        assert_eq!(at.get(), 4);
    }

    #[test]
    fn link_override_beats_default() {
        let mut sim = Simulation::new(0);
        let mut net = lossless(Latency::Constant(4));
        net.set_link("x", "y", LinkConfig::clean(Latency::Constant(40)));
        let at = Rc::new(Cell::new(0));
        let a = Rc::clone(&at);
        net.send(&mut sim, "x", "y", move |s| a.set(s.now()));
        // Reverse direction still uses the default.
        let back = Rc::new(Cell::new(0));
        let b = Rc::clone(&back);
        net.send(&mut sim, "y", "x", move |s| b.set(s.now()));
        sim.run();
        assert_eq!(at.get(), 40);
        assert_eq!(back.get(), 4);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut sim = Simulation::new(0);
        let mut net = lossless(Latency::Constant(1));
        net.partition("a", "b");
        assert!(net.is_partitioned("a", "b"));
        assert!(net.is_partitioned("b", "a"));
        assert!(!net.send(&mut sim, "a", "b", |_| panic!("must not deliver")));
        sim.run();

        net.heal("a", "b");
        let ok = Rc::new(Cell::new(false));
        let o = Rc::clone(&ok);
        assert!(net.send(&mut sim, "a", "b", move |_| o.set(true)));
        sim.run();
        assert!(ok.get());
        assert_eq!(net.stats(), (2, 1));
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut sim = Simulation::new(0);
        let mut net = SimNet::new(LinkConfig {
            latency: Latency::Constant(1),
            loss: 1.0,
            ..LinkConfig::default()
        });
        for _ in 0..10 {
            assert!(!net.send(&mut sim, "a", "b", |_| panic!("dropped")));
        }
        sim.run();
        assert_eq!(net.stats(), (10, 10));
    }

    #[test]
    fn crashed_node_drops_both_directions_until_recovery() {
        let mut sim = Simulation::new(0);
        let mut net = lossless(Latency::Constant(1));
        net.crash("b");
        assert!(net.is_crashed("b"));
        assert!(!net.send(&mut sim, "a", "b", |_| panic!("to crashed")));
        assert!(!net.send(&mut sim, "b", "a", |_| panic!("from crashed")));
        // Traffic not involving the crashed node is unaffected.
        let ok = Rc::new(Cell::new(false));
        let o = Rc::clone(&ok);
        assert!(net.send(&mut sim, "a", "c", move |_| o.set(true)));
        net.recover("b");
        let back = Rc::new(Cell::new(false));
        let b = Rc::clone(&back);
        assert!(net.send(&mut sim, "a", "b", move |_| b.set(true)));
        sim.run();
        assert!(ok.get() && back.get());
        assert_eq!(net.stats(), (4, 2));
    }

    #[test]
    fn duplicating_link_delivers_twice() {
        let mut sim = Simulation::new(9);
        let mut net = SimNet::new(LinkConfig {
            latency: Latency::Constant(1),
            duplicate: 1.0,
            ..LinkConfig::default()
        });
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let c = Rc::clone(&count);
            assert!(net.send(&mut sim, "a", "b", move |_| c.set(c.get() + 1)));
        }
        sim.run();
        assert_eq!(count.get(), 10, "every message arrives twice");
        assert_eq!(net.duplicated(), 5);
        assert_eq!(net.stats(), (5, 0), "duplicates are not counted as sent");
    }

    #[test]
    fn jitter_spreads_delivery_times_deterministically() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let mut net = SimNet::new(LinkConfig {
                latency: Latency::Constant(5),
                jitter: 10,
                ..LinkConfig::default()
            });
            let times = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..50 {
                let t = Rc::clone(&times);
                net.send(&mut sim, "a", "b", move |s| t.borrow_mut().push(s.now()));
            }
            sim.run();
            let arrivals = times.borrow().clone();
            arrivals
        };
        let a = run(4);
        assert_eq!(a, run(4), "same seed, same arrival times");
        assert!(a.iter().all(|&t| (5..=15).contains(&t)));
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert!(distinct.len() > 1, "jitter actually varies delays");
    }

    #[test]
    fn partial_loss_is_probabilistic_but_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let mut net = SimNet::new(LinkConfig {
                latency: Latency::Constant(1),
                loss: 0.5,
                ..LinkConfig::default()
            });
            let delivered = Rc::new(Cell::new(0u32));
            for _ in 0..200 {
                let d = Rc::clone(&delivered);
                net.send(&mut sim, "a", "b", move |_| d.set(d.get() + 1));
            }
            sim.run();
            delivered.get()
        };
        let a = run(3);
        assert_eq!(a, run(3), "same seed, same outcome");
        assert!((50..150).contains(&a), "roughly half delivered: {a}");
    }
}
